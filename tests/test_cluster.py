"""The cluster control plane: lifecycle, dispatch, autoscaling, reports.

Covers :class:`~repro.runtime.cluster.Cluster` — runtime
``admit``/``evict`` with defragmenting re-placement, sharded-tenant
placement, the priority/deadline dispatcher
(:class:`~repro.runtime.serving.PriorityIntake`), queue-depth
autoscaling and epoch-aware accounting
(:func:`~repro.simulator.metrics.combine_epoch_reports`) — plus the
:class:`~repro.runtime.backend.ExecutionBackend` protocol surface the
refactor put under every execution mode.
"""

import time
from concurrent.futures import CancelledError
from dataclasses import replace

import numpy as np
import pytest

from repro.arch import ArchSpec, dse_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime import Cluster, ClusterShutdown
from repro.runtime import serving as serving_mod
from repro.runtime.backend import SessionError
from repro.runtime.costmodel import TrafficHint
from repro.runtime.placement import PlacementError
from repro.runtime.serving import PriorityIntake

#: A tiny machine: one bank of 64 rows at 32 features, so modest stores
#: exercise multi-machine placement and sharding cheaply.
TINY = ArchSpec(rows=16, cols=32, subarrays_per_array=2, arrays_per_mat=2,
                mats_per_bank=1, banks=1)


def compile_dot(dot_kernel, stored, k=1, spec=None, **kw):
    spec = spec or replace(dse_spec(16), banks=2)
    return C4CAMCompiler(spec).compile(
        dot_kernel(stored, k=k), [placeholder((1, stored.shape[1]))], **kw
    )


@pytest.fixture()
def stores(rng):
    """Three distinct bipolar stores (distinct rows -> exact top-1)."""
    return [
        rng.choice([-1.0, 1.0], (rows, 64)).astype(np.float32)
        for rows in (8, 12, 10)
    ]


# --------------------------------------------------------------------------
# Admission and placement
# --------------------------------------------------------------------------
class TestAdmission:
    def test_admit_places_and_serves(self, dot_kernel, stores, rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        solo = {}
        for index, stored in enumerate(stores):
            kernel = compile_dot(dot_kernel, stored, k=2, spec=spec)
            queries = rng.standard_normal((3, 64)).astype(np.float32)
            solo[f"t{index}"] = (queries, kernel.run_batch(queries))
            assert cluster.admit(kernel, tenant_id=f"t{index}") == f"t{index}"
        assert cluster.tenant_ids == ["t0", "t1", "t2"]
        for tid, (queries, expected) in solo.items():
            values, indices = cluster.run_batch(queries, tenant=tid)
            np.testing.assert_array_equal(values, expected[0])
            np.testing.assert_array_equal(indices, expected[1])
        cluster.shutdown()

    def test_auto_ids_and_duplicates(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        tid = cluster.admit(compile_dot(dot_kernel, stores[0], spec=spec))
        assert tid == "tenant0"
        with pytest.raises(SessionError, match="duplicate"):
            cluster.admit(
                compile_dot(dot_kernel, stores[1], spec=spec),
                tenant_id="tenant0",
            )

    def test_bank_spans_never_overlap(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        for index, stored in enumerate(stores):
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=spec),
                tenant_id=f"t{index}",
            )
        _assert_no_overlap(cluster)

    def test_spec_mismatch_rejected(self, dot_kernel, stores):
        kernel = compile_dot(dot_kernel, stores[0],
                             spec=replace(dse_spec(16), banks=2))
        cluster = Cluster(replace(dse_spec(32), banks=2))
        with pytest.raises(SessionError, match="ArchSpec"):
            cluster.admit(kernel)

    def test_oversized_unsharded_tenant_names_fix(self, dot_kernel, rng):
        """A raw TenantProgram too big for one machine is refused with
        the sharded-compile advice (a compiled kernel auto-shards)."""
        big = rng.choice([-1.0, 1.0], (100, 32)).astype(np.float32)
        kernel = compile_dot(dot_kernel, big, spec=TINY)
        assert kernel.num_shards > 1  # compile() auto-sharded it
        cluster = Cluster(TINY)
        cluster.admit(kernel, tenant_id="big")
        assert cluster.tenant_lanes("big") == 1
        # The sharded tenant spans its own private machines.
        assert cluster.num_machines == kernel.num_shards

    def test_machine_cap_enforced(self, dot_kernel, rng):
        spec = TINY
        cluster = Cluster(spec, max_machines=1)
        a = rng.choice([-1.0, 1.0], (40, 32)).astype(np.float32)
        b = rng.choice([-1.0, 1.0], (40, 32)).astype(np.float32)
        cluster.admit(compile_dot(dot_kernel, a, spec=spec), tenant_id="a")
        with pytest.raises(PlacementError) as err:
            cluster.admit(
                compile_dot(dot_kernel, b, spec=spec), tenant_id="b"
            )
        assert err.value.tenant_id == "b"

    def test_admit_defragments_fragmented_fleet(self, dot_kernel, rng):
        """First-fit fails on a fragmented fleet but a re-pack holds
        everyone: admit defragments instead of refusing."""
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec, max_machines=2)
        stores = {
            tid: rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
            for tid in ("a", "b", "c", "d")
        }
        for tid in ("a", "b", "c"):
            cluster.admit(
                compile_dot(dot_kernel, stores[tid], spec=spec),
                tenant_id=tid,
            )
        # Fleet: machine0 [a,b], machine1 [c].  Evict 'b' WITHOUT
        # defragmenting: machine0 keeps a dead bank.
        cluster.evict("b", defragment=False)
        # 'd' does not first-fit (m0 full with a+dead bank? m0 has 2
        # banks: a + dead -> 0 free; m1: c -> 1 free) — actually d fits
        # m1.  Fill m1 too, then admit one more to force the defrag.
        cluster.admit(
            compile_dot(dot_kernel, stores["d"], spec=spec), tenant_id="d"
        )
        # Now m0=[a, dead], m1=[c, d]: no free bank anywhere, but a
        # re-pack (a, c, d) needs only 3 banks of the 4.
        extra = rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)
        queries = rng.standard_normal((2, 64)).astype(np.float32)
        before = cluster.run_batch(queries, tenant="a")
        cluster.admit(
            compile_dot(dot_kernel, extra, spec=spec), tenant_id="e"
        )
        assert cluster.defrag_count >= 1
        _assert_no_overlap(cluster)
        after = cluster.run_batch(queries, tenant="a")
        for x, y in zip(before, after):
            np.testing.assert_array_equal(x, y)


def _assert_no_overlap(cluster):
    """Placed tenants must occupy disjoint bank spans, machine by
    machine, and conserve the machines' allocated bank totals."""
    spans = cluster.bank_spans()
    by_machine = {}
    for tid, (machine, offset, banks) in spans.items():
        assert banks >= 1, f"tenant {tid} occupies no banks"
        by_machine.setdefault(machine, []).append((offset, offset + banks))
    for machine, intervals in by_machine.items():
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert end <= start, f"bank overlap on machine {machine}"
    # Conservation: the per-tenant spans sum to the machines' fill.
    totals = {}
    for machine, intervals in by_machine.items():
        totals[machine] = sum(end - start for start, end in intervals)
    for machine, total in totals.items():
        assert cluster._shared_machines[machine].banks_used == total


# --------------------------------------------------------------------------
# Eviction and defragmentation
# --------------------------------------------------------------------------
class TestEviction:
    def test_evict_unknown_raises(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        cluster.admit(compile_dot(dot_kernel, stores[0], spec=spec))
        with pytest.raises(SessionError, match="no tenant"):
            cluster.evict("nobody")

    def test_evict_reclaims_banks(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        for index, stored in enumerate(stores):
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=spec),
                tenant_id=f"t{index}",
            )
        banks_before = sum(
            m.banks_used for m in cluster._shared_machines
        )
        evicted_banks = cluster.bank_spans()["t0"][2]
        cluster.evict("t0")
        assert "t0" not in cluster.tenant_ids
        banks_after = sum(m.banks_used for m in cluster._shared_machines)
        assert banks_after == banks_before - evicted_banks
        _assert_no_overlap(cluster)
        with pytest.raises(SessionError, match="no tenant"):
            cluster.run_batch(np.zeros(64), tenant="t0")

    def test_pending_futures_fail_with_cluster_shutdown(
            self, dot_kernel, stores, rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec, max_batch=1, max_wait=0.0, time_scale=2e-6)
        for index, stored in enumerate(stores[:2]):
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=spec),
                tenant_id=f"t{index}",
            )
        queries = rng.standard_normal((30, 64)).astype(np.float32)
        futures = [cluster.submit(q, tenant="t0") for q in queries]
        cluster.evict("t0")
        outcomes = set()
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.add("served")
            except ClusterShutdown as exc:
                assert "t0" in str(exc) and "evicted" in str(exc)
                outcomes.add("evicted")
        assert "evicted" in outcomes  # the paced queue could not drain
        # The surviving tenant is unaffected.
        v, i = cluster.run_batch(queries[:2], tenant="t1")
        assert v.shape[0] == 2
        with pytest.raises(SessionError):
            cluster.submit(queries[0], tenant="t0")
        cluster.shutdown()

    def test_lifetime_report_keeps_evicted_traffic(self, dot_kernel,
                                                   stores, rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        for index, stored in enumerate(stores[:2]):
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=spec),
                tenant_id=f"t{index}",
            )
        q0 = rng.standard_normal((4, 64)).astype(np.float32)
        q1 = rng.standard_normal((3, 64)).astype(np.float32)
        cluster.run_batch(q0, tenant="t0")
        cluster.run_batch(q1, tenant="t1")
        cluster.evict("t0")
        cluster.run_batch(q1, tenant="t1")
        report = cluster.report()
        assert report.queries == 4 + 3 + 3  # evicted traffic still counted
        # The defrag re-programmed t1: two epochs of setup in the sum,
        # each charged exactly once.
        t1 = cluster.tenant_report("t1")
        assert t1.queries == 6
        assert t1.energy.write > 0

    def test_zero_query_tenant_through_lifecycle(self, dot_kernel, stores):
        """A tenant admitted and evicted without ever serving a query
        flows through every combiner without dividing by zero."""
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        for index, stored in enumerate(stores[:2]):
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=spec),
                tenant_id=f"t{index}",
            )
        idle = cluster.tenant_report("t0")
        assert idle.queries == 0
        assert idle.throughput_qps == 0.0
        assert idle.per_query_latency_ns == 0.0
        assert idle.per_query_energy_pj == 0.0
        cluster.evict("t0")
        report = cluster.report()
        assert report.queries == 0
        assert report.throughput_qps == 0.0
        assert report.energy.write > 0  # programming cost still real


# --------------------------------------------------------------------------
# Priority / deadline dispatch
# --------------------------------------------------------------------------
class TestPriorityDispatch:
    def test_intake_orders_priority_then_deadline_then_fifo(self):
        intake = PriorityIntake()
        low = serving_mod._Request(np.zeros((1, 4)), tenant="t", priority=0)
        urgent = serving_mod._Request(np.zeros((1, 4)), tenant="t", priority=2)
        soon = serving_mod._Request(np.zeros((1, 4)), tenant="t", priority=1,
                        deadline=0.001)
        later = serving_mod._Request(np.zeros((1, 4)), tenant="t", priority=1,
                         deadline=10.0)
        for request in (low, later, soon, urgent):
            intake.put(request)
        order = []
        while intake.pending_rows() > 0:
            batch, _rows = intake.next_batch(max_batch=1, max_wait=0.0)
            order.extend(batch)
        assert order == [urgent, soon, later, low]

    def test_intake_coalesces_same_tenant_only(self):
        intake = PriorityIntake()
        a1 = serving_mod._Request(np.zeros((2, 4)), tenant="a", priority=1)
        b1 = serving_mod._Request(np.zeros((2, 4)), tenant="b", priority=1)
        a2 = serving_mod._Request(np.zeros((2, 4)), tenant="a", priority=0)
        for request in (a1, b1, a2):
            intake.put(request)
        batch, rows = intake.next_batch(max_batch=8, max_wait=0.0)
        assert batch == [a1, a2] and rows == 4  # b1 never mixes in
        batch, rows = intake.next_batch(max_batch=8, max_wait=0.0)
        assert batch == [b1] and rows == 2

    def test_intake_skips_oversized_keeps_queued(self):
        intake = PriorityIntake()
        first = serving_mod._Request(np.zeros((3, 4)), tenant="t", priority=1)
        huge = serving_mod._Request(np.zeros((6, 4)), tenant="t", priority=1)
        small = serving_mod._Request(np.zeros((1, 4)), tenant="t", priority=0)
        for request in (first, huge, small):
            intake.put(request)
        batch, rows = intake.next_batch(max_batch=4, max_wait=0.0)
        assert batch == [first, small] and rows == 4
        batch, rows = intake.next_batch(max_batch=8, max_wait=0.0)
        assert batch == [huge]

    def test_high_priority_overtakes_queued_low(self, dot_kernel, stores,
                                                rng):
        """Under a paced, saturated lane, a late high-priority request
        finishes before queued earlier low-priority ones."""
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec, max_batch=1, max_wait=0.0, time_scale=1e-6)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="t"
        )
        queries = rng.standard_normal((12, 64)).astype(np.float32)
        done = []
        low = [cluster.submit(q, tenant="t", priority=0) for q in queries]
        for index, future in enumerate(low):
            future.add_done_callback(
                lambda _f, i=index: done.append(("low", i))
            )
        urgent = cluster.submit(
            queries[0], tenant="t", priority=5, deadline=0.001
        )
        urgent.add_done_callback(lambda _f: done.append(("high", 0)))
        urgent.result(timeout=30)
        for future in low:
            future.result(timeout=30)
        cluster.shutdown()
        position = done.index(("high", 0))
        assert position < len(done) - 1, (
            "the high-priority request finished last despite the queue"
        )

    def test_deadline_validation(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="t"
        )
        with pytest.raises(ValueError, match="deadline"):
            cluster.submit(np.zeros(64), tenant="t", deadline=-1.0)
        cluster.shutdown()


# --------------------------------------------------------------------------
# Autoscaling
# --------------------------------------------------------------------------
class TestAutoscaler:
    def test_scale_up_then_down_on_queue_depth(self, dot_kernel, stores,
                                               rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(
            spec, max_batch=4, max_wait=0.0, time_scale=2e-7,
            autoscale_max_lanes=3, autoscale_backlog_rows=8,
        )
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="t"
        )
        assert cluster.tenant_lanes("t") == 1
        queries = rng.standard_normal((120, 64)).astype(np.float32)
        futures = [cluster.submit(q, tenant="t") for q in queries]
        for future in futures:
            future.result(timeout=60)
        # The scaled lane attaches from a worker thread (it programs a
        # fresh machine), so the event can land after the queue drains.
        deadline = time.monotonic() + 10
        events = []
        while "scale-up" not in events and time.monotonic() < deadline:
            events = [e["action"] for e in cluster.autoscale_events]
            time.sleep(0.01)
        assert "scale-up" in events, "queue pressure never scaled up"
        # Drain: completions with an empty queue shrink back to 1 lane.
        deadline = time.monotonic() + 10
        while cluster.tenant_lanes("t") > 1 and time.monotonic() < deadline:
            cluster.submit(queries[0], tenant="t").result(timeout=30)
        assert cluster.tenant_lanes("t") == 1
        # Scaled lanes' traffic stays in the tenant's accounting.
        assert cluster.tenant_report("t").queries >= len(queries)
        cluster.shutdown()

    def test_autoscale_results_stay_bitwise(self, dot_kernel, stores, rng):
        spec = replace(dse_spec(16), banks=2)
        kernel = compile_dot(dot_kernel, stores[1], k=2, spec=spec)
        queries = rng.standard_normal((60, 64)).astype(np.float32)
        expected = kernel.run_batch(queries)
        cluster = Cluster(
            spec, max_batch=2, max_wait=0.0, time_scale=2e-7,
            autoscale_max_lanes=4, autoscale_backlog_rows=4,
        )
        cluster.admit(
            compile_dot(dot_kernel, stores[1], k=2, spec=spec),
            tenant_id="t",
        )
        futures = [cluster.submit(q, tenant="t") for q in queries]
        values = np.vstack([f.result(timeout=60)[0] for f in futures])
        indices = np.vstack([f.result(timeout=60)[1] for f in futures])
        np.testing.assert_array_equal(values, expected[0])
        np.testing.assert_array_equal(indices, expected[1])
        cluster.shutdown()

    def test_admit_with_initial_lanes(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec, autoscale_max_lanes=4)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec),
            tenant_id="t", lanes=2,
        )
        assert cluster.tenant_lanes("t") == 2

    def test_cost_policy_scales_most_burdened_tenant(self, dot_kernel,
                                                     stores, rng):
        """Under ``placement_policy="cost"`` the autoscaler picks its
        target by cost burden (backlog x calibrated latency), and says
        so in the event log."""
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(
            spec, max_batch=4, max_wait=0.0, time_scale=2e-7,
            autoscale_max_lanes=3, autoscale_backlog_rows=8,
            placement_policy="cost",
            traffic_hints=[TrafficHint("t", rate_qps=50_000.0)],
        )
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="t"
        )
        # Calibrate: a measured batch gives the tenant a real profile.
        cluster.run_batch(
            rng.standard_normal((4, 64)).astype(np.float32), tenant="t"
        )
        queries = rng.standard_normal((120, 64)).astype(np.float32)
        futures = [cluster.submit(q, tenant="t") for q in queries]
        for future in futures:
            future.result(timeout=60)
        # The scaled lane attaches from a worker thread (it programs a
        # fresh machine), so the event can land after the queue drains.
        deadline = time.monotonic() + 10
        ups = []
        while not ups and time.monotonic() < deadline:
            ups = [
                e for e in cluster.autoscale_events
                if e["action"] == "scale-up"
            ]
            time.sleep(0.01)
        assert ups, "queue pressure never scaled up"
        assert all(e["reason"] == "cost-burden" for e in ups)
        cluster.shutdown()


# --------------------------------------------------------------------------
# Cost-model placement and the serializable cluster plan
# --------------------------------------------------------------------------
class TestCostPlacementAndPlans:
    SPEC = replace(dse_spec(16), banks=2)

    HINTS = [
        TrafficHint("t0", rate_qps=40_000.0, batch_rows=4),
        TrafficHint("t1", rate_qps=40_000.0, batch_rows=4),
        TrafficHint("t2", rate_qps=10.0),
        TrafficHint("t3", rate_qps=10.0),
    ]

    def _stores(self, rng):
        return {
            f"t{i}": rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
            for i in range(4)
        }

    def _admit_all(self, cluster, dot_kernel, stores):
        for tid, stored in stores.items():
            cluster.admit(
                compile_dot(dot_kernel, stored, spec=self.SPEC),
                tenant_id=tid,
            )

    def test_cost_admission_separates_hot_tenants(self, dot_kernel, rng):
        """Four 1-bank tenants on 2-bank machines: FFD co-packs the hot
        pair (submission order); the cost policy pays the same two
        machines but never leaves both hot tenants on one."""
        stores = self._stores(rng)
        layouts = {}
        for policy in ("ffd", "cost"):
            cluster = Cluster(
                self.SPEC, placement_policy=policy,
                traffic_hints=self.HINTS,
            )
            # Admit the first three, serve measured traffic so the
            # model is calibrated, then let t3's admission re-pack.
            for tid in ("t0", "t1", "t2"):
                cluster.admit(
                    compile_dot(dot_kernel, stores[tid], spec=self.SPEC),
                    tenant_id=tid,
                )
            for tid in ("t0", "t1", "t2"):
                cluster.run_batch(
                    rng.standard_normal((4, 64)).astype(np.float32),
                    tenant=tid,
                )
            cluster.admit(
                compile_dot(dot_kernel, stores["t3"], spec=self.SPEC),
                tenant_id="t3",
            )
            layouts[policy] = cluster.bank_spans()
            assert cluster.stats()["placement_policy"] == policy
            cluster.shutdown()
        machines_used = {
            policy: len({span[0] for span in layout.values()})
            for policy, layout in layouts.items()
        }
        assert machines_used["cost"] == machines_used["ffd"] == 2
        assert layouts["ffd"]["t0"][0] == layouts["ffd"]["t1"][0]
        assert layouts["cost"]["t0"][0] != layouts["cost"]["t1"][0]

    def test_results_bitwise_under_cost_policy(self, dot_kernel, rng):
        stores = self._stores(rng)
        solo = {}
        queries = {
            tid: rng.standard_normal((3, 64)).astype(np.float32)
            for tid in stores
        }
        for tid, stored in stores.items():
            kernel = compile_dot(dot_kernel, stored, spec=self.SPEC)
            solo[tid] = kernel.run_batch(queries[tid])
        with Cluster(
            self.SPEC, placement_policy="cost", traffic_hints=self.HINTS,
        ) as cluster:
            self._admit_all(cluster, dot_kernel, stores)
            for tid in stores:
                values, indices = cluster.run_batch(
                    queries[tid], tenant=tid
                )
                np.testing.assert_array_equal(values, solo[tid][0])
                np.testing.assert_array_equal(indices, solo[tid][1])

    def test_set_traffic_hints_feeds_cost_model(self, dot_kernel, rng):
        stores = self._stores(rng)
        with Cluster(self.SPEC) as cluster:
            self._admit_all(cluster, dot_kernel, stores)
            for tid in stores:
                cluster.run_batch(
                    rng.standard_normal((2, 64)).astype(np.float32),
                    tenant=tid,
                )
            cluster.set_traffic_hints([TrafficHint("t0", rate_qps=123.0)])
            model = cluster.traffic_cost_model()
            assert model is not None
            assert model.hint("t0").rate_qps == 123.0
            # Unhinted tenants default to their observed volume.
            assert model.hint("t1").rate_qps > 0
            assert model.calibration_error(
                "t0", cluster.tenant_report("t0")
            ) < 0.5

    def test_plan_round_trips_bitwise(self, dot_kernel, rng):
        stores = self._stores(rng)
        queries = {
            tid: rng.standard_normal((3, 64)).astype(np.float32)
            for tid in stores
        }
        kernels = {
            tid: compile_dot(dot_kernel, stored, spec=self.SPEC)
            for tid, stored in stores.items()
        }
        cluster = Cluster(
            self.SPEC, placement_policy="cost", traffic_hints=self.HINTS,
        )
        for tid, kernel in kernels.items():
            cluster.admit(kernel, tenant_id=tid)
        plan = cluster.plan()
        spans = cluster.bank_spans()
        expected = {
            tid: cluster.run_batch(queries[tid], tenant=tid)
            for tid in stores
        }
        cluster.shutdown()

        import json
        json.dumps(plan)  # the plan is a wire format, not live objects

        with Cluster.from_plan(plan, kernels) as rebuilt:
            assert rebuilt.bank_spans() == spans
            assert rebuilt.plan() == plan
            assert rebuilt.placement_policy == "cost"
            for tid in stores:
                values, indices = rebuilt.run_batch(
                    queries[tid], tenant=tid
                )
                np.testing.assert_array_equal(values, expected[tid][0])
                np.testing.assert_array_equal(indices, expected[tid][1])

    def test_from_plan_validates(self, dot_kernel, rng):
        stores = self._stores(rng)
        kernels = {
            tid: compile_dot(dot_kernel, stored, spec=self.SPEC)
            for tid, stored in stores.items()
        }
        cluster = Cluster(self.SPEC)
        for tid, kernel in kernels.items():
            cluster.admit(kernel, tenant_id=tid)
        plan = cluster.plan()
        cluster.shutdown()
        with pytest.raises(ValueError, match="version"):
            Cluster.from_plan({**plan, "version": 99}, kernels)
        with pytest.raises((KeyError, ValueError, SessionError)):
            Cluster.from_plan(plan, {"t0": kernels["t0"]})

    def test_apply_placement_swaps_layout(self, dot_kernel, rng):
        stores = self._stores(rng)
        queries = rng.standard_normal((3, 64)).astype(np.float32)
        with Cluster(self.SPEC) as cluster:
            self._admit_all(cluster, dot_kernel, stores)
            before = cluster.bank_spans()
            expected = {
                tid: cluster.run_batch(queries, tenant=tid)
                for tid in stores
            }
            # Mirror the layout across machines.
            n_machines = 1 + max(span[0] for span in before.values())
            target = [
                {
                    "tenant_id": tid,
                    "machine_index": n_machines - 1 - span[0],
                    "bank_offset": span[1],
                    "banks": span[2],
                }
                for tid, span in before.items()
            ]
            cluster.apply_placement(target)
            after = cluster.bank_spans()
            assert after != before
            for entry in target:
                assert after[entry["tenant_id"]] == (
                    entry["machine_index"],
                    entry["bank_offset"],
                    entry["banks"],
                )
            # Re-programming elsewhere must not change a single bit.
            for tid in stores:
                values, indices = cluster.run_batch(queries, tenant=tid)
                np.testing.assert_array_equal(values, expected[tid][0])
                np.testing.assert_array_equal(indices, expected[tid][1])
            # Idempotent: re-applying the current layout is a no-op.
            cluster.apply_placement(target)
            assert cluster.bank_spans() == after

    def test_apply_placement_rejects_wrong_tenants(self, dot_kernel, rng):
        stores = self._stores(rng)
        with Cluster(self.SPEC) as cluster:
            self._admit_all(cluster, dot_kernel, stores)
            with pytest.raises(SessionError, match="tenant"):
                cluster.apply_placement([{
                    "tenant_id": "ghost", "machine_index": 0,
                    "bank_offset": 0, "banks": 1,
                }])

    def test_trace_summary_delegates_to_engine(self, dot_kernel, rng):
        stores = self._stores(rng)
        with Cluster(self.SPEC, max_batch=4, max_wait=0.001) as cluster:
            self._admit_all(cluster, dot_kernel, stores)
            queries = rng.standard_normal((6, 64)).astype(np.float32)
            futures = [cluster.submit(q, tenant="t0") for q in queries]
            for future in futures:
                future.result(timeout=30)
            summary = cluster.trace_summary()
            assert summary["requests"] >= 6
            assert "total" in summary["phases"]
            mine = cluster.trace_summary(tenant="t0")
            assert mine["requests"] >= 6
            assert cluster.trace_summary(tenant="ghost")["requests"] == 0


# --------------------------------------------------------------------------
# Lifecycle: shutdown, reset, clone, context manager
# --------------------------------------------------------------------------
class TestLifecycle:
    def test_shutdown_abort_delivers_cluster_shutdown(self, dot_kernel,
                                                      stores, rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec, max_batch=1, max_wait=0.0, time_scale=2e-6)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="t"
        )
        queries = rng.standard_normal((30, 64)).astype(np.float32)
        futures = [cluster.submit(q, tenant="t") for q in queries]
        cluster.shutdown(abort=True)
        outcomes = set()
        for future in futures:
            try:
                future.result(timeout=30)
                outcomes.add("served")
            except ClusterShutdown:
                outcomes.add("aborted")
            except CancelledError:
                outcomes.add("cancelled")
        assert "aborted" in outcomes
        assert "cancelled" not in outcomes  # the typed error, not cancel
        with pytest.raises(SessionError, match="shut down"):
            cluster.submit(queries[0], tenant="t")
        with pytest.raises(SessionError, match="shut down"):
            cluster.admit(
                compile_dot(dot_kernel, stores[1], spec=spec)
            )

    def test_reset_reprograms_and_clears_accounting(self, dot_kernel,
                                                    stores, rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], k=2, spec=spec),
            tenant_id="t",
        )
        queries = rng.standard_normal((3, 64)).astype(np.float32)
        before = cluster.run_batch(queries, tenant="t")
        cluster.reset()
        assert cluster.report().queries == 0
        after = cluster.run_batch(queries, tenant="t")
        for x, y in zip(before, after):
            np.testing.assert_array_equal(x, y)

    def test_clone_is_independent_and_identical(self, dot_kernel, stores,
                                                rng):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], k=2, spec=spec),
            tenant_id="t",
        )
        queries = rng.standard_normal((3, 64)).astype(np.float32)
        expected = cluster.run_batch(queries, tenant="t")
        other = cluster.clone()
        assert other.tenant_ids == ["t"]
        got = other.run_batch(queries, tenant="t")
        for x, y in zip(expected, got):
            np.testing.assert_array_equal(x, y)
        assert other.report().queries == 1 * len(queries)
        assert cluster.report().queries == len(queries)

    def test_context_manager_drains(self, dot_kernel, stores, rng):
        spec = replace(dse_spec(16), banks=2)
        queries = rng.standard_normal((5, 64)).astype(np.float32)
        with Cluster(spec) as cluster:
            cluster.admit(
                compile_dot(dot_kernel, stores[0], spec=spec),
                tenant_id="t",
            )
            futures = [cluster.submit(q, tenant="t") for q in queries]
        for future in futures:
            assert future.done() and not future.cancelled()

    def test_protocol_surface(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        cluster = Cluster(spec)
        cluster.admit(
            compile_dot(dot_kernel, stores[0], spec=spec), tenant_id="a"
        )
        cluster.admit(
            compile_dot(dot_kernel, stores[1], spec=spec), tenant_id="b"
        )
        assert cluster.tenant_widths() == {"a": 64, "b": 64}
        assert cluster.query_width("a") == 64
        assert cluster.is_multi_tenant
        with pytest.raises(SessionError, match="several tenants"):
            cluster.query_width()
        hints = cluster.capacity_hints()
        assert hints["banks_used"] == 2
        assert hints["machines"] == 1
        setup = cluster.setup_report()
        assert setup.queries == 0 and setup.energy.write > 0


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------
class TestEntryPoints:
    def test_from_kernels(self, dot_kernel, stores):
        spec = replace(dse_spec(16), banks=2)
        kernels = [
            compile_dot(dot_kernel, stored, spec=spec) for stored in stores
        ]
        cluster = Cluster.from_kernels(kernels, tenant_ids=["x", "y", "z"])
        assert cluster.tenant_ids == ["x", "y", "z"]
        assert cluster.spec == spec
        with pytest.raises(ValueError, match="tenant ids"):
            Cluster.from_kernels(kernels, tenant_ids=["only-one"])

    def test_compile_cluster(self, dot_kernel, stores, rng):
        spec = replace(dse_spec(16), banks=2)
        compiler = C4CAMCompiler(spec)
        cluster = compiler.compile_cluster(
            [dot_kernel(stored, k=1) for stored in stores[:2]],
            [[placeholder((1, 64))] for _ in stores[:2]],
            tenant_ids=["a", "b"],
            max_machines=2,
        )
        assert cluster.tenant_ids == ["a", "b"]
        queries = rng.standard_normal((2, 64)).astype(np.float32)
        values, indices = cluster.run_batch(queries, tenant="b")
        solo = compile_dot(dot_kernel, stores[1], spec=spec)
        np.testing.assert_array_equal(indices, solo.run_batch(queries)[1])
        cluster.shutdown()

    def test_tenant_pool_cluster(self, stores, rng):
        from repro.apps import TenantPool

        spec = replace(dse_spec(16), banks=2)
        pool = TenantPool(spec)
        pool.add("faces", stores[0], k=1)
        pool.add("spam", stores[1], k=2)
        with pool.cluster() as cluster:
            assert cluster.tenant_ids == ["faces", "spam"]
            future = cluster.submit(
                rng.standard_normal(64), tenant="spam", priority=1
            )
            values, indices = future.result(timeout=30)
            assert indices.shape == (1, 2)
            cluster.evict("faces")
            assert cluster.tenant_ids == ["spam"]
        assert not pool.is_open  # the pool itself stayed closed
