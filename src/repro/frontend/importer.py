"""Importer: traced :class:`~repro.frontend.torch_api.Graph` → torch dialect.

Plays the role of the PyTorch MLIR converter in the paper's flow (Fig. 3):
the traced TorchScript program enters C4CAM as ``torch`` dialect IR.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.dialects import func as func_d
from repro.dialects import torch as torch_d
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType, TensorType, f32, i64
from repro.ir.value import Value

from .torch_api import Graph, Node, Tensor


def _tensor_type(t: Tensor) -> TensorType:
    elem = i64 if t.dtype == "i64" else f32
    return TensorType(t.shape, elem)


class ImportedFunction:
    """The import result: a module plus parameter binding order."""

    def __init__(self, module: ModuleOp, func: func_d.FuncOp,
                 parameters: List[Tensor]):
        self.module = module
        self.func = func
        self.parameters = parameters

    @property
    def parameter_arrays(self) -> List[np.ndarray]:
        """Concrete arrays for the captured parameters, in argument order."""
        return [p.data for p in self.parameters]


def import_graph(graph: Graph, name: str = "forward") -> ImportedFunction:
    """Convert a traced graph into a ``torch``-dialect function.

    Function arguments are the trace placeholders followed by captured
    parameters (TorchScript lifts module attributes the same way).
    """
    arg_tensors = list(graph.placeholders) + list(graph.parameters)
    in_types = [_tensor_type(t) for t in arg_tensors]
    out_types = [_tensor_type(t) for t in graph.outputs]

    module = ModuleOp()
    fn = func_d.FuncOp(name, FunctionType(in_types, out_types))
    module.append(fn)
    builder = OpBuilder.at_end(fn.body)

    values: Dict[object, Value] = {}
    for t, arg in zip(arg_tensors, fn.arguments):
        values[id(t)] = arg

    def resolve(t: Tensor) -> Value:
        """IR value for a traced tensor (node output, placeholder or param)."""
        if t.node is not None:
            return values[(t.node.id, t.output_index)]
        try:
            return values[id(t)]
        except KeyError:
            raise ValueError(
                f"tensor {t!r} is not reachable from the trace inputs"
            ) from None

    for node in graph.nodes:
        results = _import_node(builder, node, resolve)
        for i, res in enumerate(results):
            values[(node.id, i)] = res

    builder.create(func_d.ReturnOp, [resolve(t) for t in graph.outputs])
    return ImportedFunction(module, fn, list(graph.parameters))


def _import_node(builder: OpBuilder, node: Node, resolve) -> List[Value]:
    """Emit the torch-dialect op(s) for one traced node."""

    def operand(i: int) -> Value:
        return resolve(node.inputs[i])

    if node.op == "transpose":
        op = builder.create(
            torch_d.TransposeIntOp,
            operand(0),
            node.attrs["dim0"],
            node.attrs["dim1"],
        )
        return [op.result]
    if node.op == "matmul":
        lhs, rhs = operand(0), operand(1)
        cls = torch_d.MmOp if len(lhs.type.shape) == 2 else torch_d.MatmulOp
        return [builder.create(cls, lhs, rhs).result]
    if node.op == "sub":
        return [builder.create(torch_d.SubOp, operand(0), operand(1)).result]
    if node.op == "div":
        extra = operand(2) if len(node.inputs) > 2 else None
        return [
            builder.create(torch_d.DivOp, operand(0), operand(1), extra).result
        ]
    if node.op == "norm":
        op = builder.create(
            torch_d.NormOp,
            operand(0),
            p=node.attrs["p"],
            dim=node.attrs["dim"],
            keepdim=node.attrs["keepdim"],
        )
        return [op.result]
    if node.op == "topk":
        k_const = builder.create(torch_d.ConstantIntOp, node.attrs["k"])
        op = builder.create(
            torch_d.TopkOp,
            operand(0),
            k_const.result,
            node.attrs["k"],
            dim=node.attrs["dim"],
            largest=node.attrs["largest"],
            sorted=node.attrs["sorted"],
        )
        return list(op.results)
    raise ValueError(f"unsupported traced op: {node.op!r}")
