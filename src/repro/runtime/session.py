"""Batched query sessions: program the CAM once, stream many queries.

The paper's CAMs are program-once / query-many devices: pattern
programming is orders of magnitude slower than a search, so a serving
deployment writes the stored set once and answers queries from then on.
:class:`QuerySession` realises that usage mode for compiled kernels:

* **setup walk** — the lowered module is interpreted once, which
  allocates the hierarchy, programs every stored-pattern tile (charged to
  the setup clock) and measures the structural per-query latency from
  the IR's loop nest;
* **batched streaming** — :meth:`QuerySession.run_batch` answers a whole
  ``B×D`` query matrix against the *live* machine: match-line scores for
  the entire batch are computed in one vectorized step per subarray
  (2-D :func:`repro.simulator.cells.compute_scores`), partials are merged
  into a ``B×P`` score matrix and the per-query top-k is selected in one
  pass.

Timing follows the paper's model: a batch occupies the machine for
``B ×`` the structural per-query latency (queries stream through the
match lines serially), while the setup cost is charged once per session —
the amortization that related batching designs (AMU, batched far-memory
data planes) exploit.  Functionally the batched path is bitwise identical
to ``B`` sequential interpreter walks with noise disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.machine import CamMachine
from repro.simulator.metrics import EnergyBreakdown, ExecutionReport
from repro.transforms.partitioning import PartitionPlan

from .backend import ExecutionBackend, SessionError
from .executor import Interpreter

__all__ = ["QueryProgram", "QuerySession", "SessionError"]


@dataclass(frozen=True)
class QueryProgram:
    """The query-phase structure of one lowered similarity kernel.

    Captured by the ``cim-to-cam`` pass when it emits the query nest;
    :class:`QuerySession` replays this structure directly against the
    machine for whole query batches instead of re-walking the IR per
    query.
    """

    plan: PartitionPlan
    metric: str        # cam-level metric (after CAM-type legalisation)
    k: int
    largest: bool      # post-legalisation sort direction
    #: The SSA values (values tensor, indices tensor) the lowering
    #: substituted for the similarity op's results.
    results: tuple = ()

    def matches_function(self, func) -> bool:
        """True when ``func`` returns exactly this program's (values,
        indices) — i.e. replaying the program reproduces the function.

        A model that reorders, post-processes or drops the similarity
        outputs must take the full interpreter walk instead.
        """
        if len(self.results) != 2:
            return False
        terminator = next(
            (op for op in func.body.operations if op.name == "func.return"),
            None,
        )
        if terminator is None:
            return False
        return list(terminator.operands) == list(self.results)

    def tiles(self) -> List[Tuple[int, int, Tuple[int, int]]]:
        """All placed tiles as ``(linear subarray, batch, (rp, cp))``."""
        out = []
        for lin in range(self.plan.subarrays):
            for batch in range(self.plan.batches):
                tile = self.plan.tile_of(lin, batch)
                if tile is not None:
                    out.append((lin, batch, tile))
        return out


class QuerySession(ExecutionBackend):
    """A live, programmed machine answering query batches.

    Owns a :class:`CamMachine` that is programmed exactly once (during
    construction) and kept alive across :meth:`run_batch` calls.  Device
    noise, when enabled, is decorrelated across batches by spawning a
    fresh child seed per call from one :class:`numpy.random.SeedSequence`
    — reproducible for an explicit ``noise_seed``, independent across
    calls.

    Passing an existing ``machine`` instead colocates this session on a
    *shared* machine (multi-tenant bank placement,
    :mod:`repro.runtime.placement`): the session programs its patterns
    into freshly allocated banks of that machine, remembers its subarray
    range (:attr:`subarray_base`) and from then on searches/reads only
    its own fabric.  Reports stay tenant-scoped — allocation counts,
    energy and standby cover this session's banks only, so a colocated
    tenant is charged exactly what it would be on a private machine.
    """

    def __init__(
        self,
        module,
        spec,
        tech,
        parameters: Sequence[np.ndarray],
        program: QueryProgram,
        func_name: str = "forward",
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        machine: Optional[CamMachine] = None,
    ):
        self.module = module
        self.spec = spec
        self.tech = tech
        self.parameters = list(parameters)
        self.program = program
        self.func_name = func_name
        self.noise_sigma = float(noise_sigma)
        # noise_seed: an int, or a SeedSequence child handed down by the
        # owning kernel (keeps per-call decorrelation deterministic).
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        self._owns_machine = machine is None
        if machine is None:
            machine = CamMachine(
                spec, tech, noise_sigma=noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
            )
        self.machine = machine
        #: First machine subarray belonging to this session (0 on a
        #: private machine; the shared-machine fill level when colocated).
        self.subarray_base = machine.subarrays_used
        self.last_report: Optional[ExecutionReport] = None
        # Full-precision (float64) *unclamped* scores of the last
        # batch's top-k rows (no WTA-window clamp, no float32 cast) — a
        # ShardedSession re-ranks shards on these and applies the WTA
        # clamp once against the global winner, so the merge matches a
        # single big machine bitwise.
        self.last_values: Optional[np.ndarray] = None
        self.last_indices: Optional[np.ndarray] = None
        self.batches_run = 0
        # Session-relative query clock: batches are stamped back-to-back
        # on the machine trace (coarse within-batch structure: searches,
        # then reads/merges, then the top-k).
        self._time = 0.0
        self._program_machine()

    # ------------------------------------------------------------ lifecycle
    def _program_machine(self) -> None:
        """One interpreter walk: allocate, program, measure the clock.

        The walk runs the traced batch of zero queries through the full
        lowered module.  Pattern writes land on the machine (they are the
        point); the structural per-query latency is read off the report;
        query-side counters are then reset so batch reports account only
        their own work.
        """
        func = self.module.lookup_symbol(self.func_name)
        if func is None:
            raise SessionError(f"no function named {self.func_name!r}")
        args = func.body.arguments
        n_inputs = len(args) - len(self.parameters)
        if n_inputs < 0:
            raise SessionError("module has fewer arguments than parameters")
        dummies = [
            np.zeros(arg.type.shape, dtype=np.float64)
            for arg in args[:n_inputs]
        ]
        machine = self.machine
        write_before = machine.energy.write
        counts_before = (
            machine.banks_used,
            machine.mats_used,
            machine.arrays_used,
            machine.subarrays_used,
        )
        interpreter = Interpreter(
            self.module, machine, subarray_base=self.subarray_base
        )
        _outputs, report = interpreter.run_function(
            self.func_name, dummies + self.parameters
        )
        self.setup_latency_ns = report.setup_latency_ns
        # Setup cost and allocation are *this session's* share: on a
        # shared machine the deltas scope reports to the tenant's banks;
        # on a private machine they equal the machine totals.
        self.setup_energy_pj = machine.energy.write - write_before
        self.banks_used = machine.banks_used - counts_before[0]
        self.mats_used = machine.mats_used - counts_before[1]
        self.arrays_used = machine.arrays_used - counts_before[2]
        self.subarrays_used = machine.subarrays_used - counts_before[3]
        #: First machine array belonging to this session (scopes the
        #: standby duty to the tenant's own occupancy).
        self.array_base = counts_before[2]
        self.per_query_latency_ns = report.per_query_latency_ns
        self.machine.reset_query_state()

    def clone(self, noise_seed=None) -> "QuerySession":
        """An independent replica of this session: same compiled module,
        fresh machine.

        Reuses every compiled artifact (lowered module, partition plan,
        query program, stored parameters) — nothing is re-traced or
        re-lowered — and only re-runs the setup walk to allocate and
        program a new machine, which a hardware replica genuinely needs.
        Device noise on the clone decorrelates from the parent by
        default (a fresh child of the parent's seed sequence); pass
        ``noise_seed`` for an explicit stream.
        """
        return QuerySession(
            self.module,
            self.spec,
            self.tech,
            self.parameters,
            self.program,
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=(
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            ),
        )

    def reset(self) -> None:
        """Clear query-side state (latches, counters); patterns survive.

        On a shared (multi-tenant) machine only this session's
        bookkeeping is dropped — the machine's counters belong to every
        colocated tenant and are managed by the owning
        :class:`~repro.runtime.placement.MultiTenantSession`."""
        if self._owns_machine:
            self.machine.reset_query_state()
        self.last_report = None
        self.last_values = None
        self.last_indices = None
        self.batches_run = 0
        self._time = 0.0

    # ------------------------------------------------------- protocol bits
    def query_width(self, tenant: Optional[str] = None) -> int:
        """The kernel's feature dimension (single-tenant backend)."""
        self._require_no_tenant(tenant)
        return self.program.plan.features

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline: this session's programming cost and its
        own (tenant-scoped, when colocated) hierarchy slice."""
        return ExecutionReport(
            setup_latency_ns=self.setup_latency_ns,
            energy=EnergyBreakdown(write=self.setup_energy_pj),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            queries=0,
            spec=self.spec,
        )

    def report(self) -> ExecutionReport:
        """The most recent batch report, or the setup baseline before
        any batch ran (sessions don't accumulate traffic themselves —
        a :class:`~repro.runtime.backend.LaneStats` lane does)."""
        return self.last_report or self.setup_report()

    # ------------------------------------------------------------- queries
    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Answer a ``B×D`` query batch; returns ``[values, indices]``.

        ``values`` is ``B×k`` float32, ``indices`` ``B×k`` int64 —
        bitwise identical (noise disabled) to stacking ``B`` sequential
        single-query executions.  The resulting
        :attr:`last_report` charges this batch's query latency/energy
        plus the session's one-time setup cost.
        """
        self._require_no_tenant(tenant)
        plan, machine = self.program.plan, self.machine
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2:
            raise SessionError("query batch must be a 1-D or 2-D array")
        if queries.shape[1] != plan.features:
            raise SessionError(
                f"query width {queries.shape[1]} does not match the "
                f"kernel's feature dimension {plan.features}"
            )
        n_queries = queries.shape[0]
        if self.noise_sigma > 0.0:
            machine.reseed_noise(self._noise_seq.spawn(1)[0])
        before = self._counters()
        machine.begin_query()

        stacked = plan.batches > 1
        window = plan.patterns if stacked else plan.row_tile
        t0 = self._time
        base = self.subarray_base
        # --- search: one vectorized machine call per placed tile -------
        search_end = t0
        for lin, batch, (_rp, cp) in self.program.tiles():
            qslice = queries[:, cp * plan.col_tile : (cp + 1) * plan.col_tile]
            dur = machine.search(
                base + lin, qslice,
                search_type="best", metric=self.program.metric,
                row_begin=batch * plan.patterns if stacked else 0,
                row_count=window, accumulate=stacked, at=t0,
            )
            search_end = max(search_end, t0 + dur)
        # --- read + merge: B×P score matrix ----------------------------
        scores = np.zeros((n_queries, plan.patterns), dtype=np.float64)
        merge_end = search_end
        for lin in range(plan.subarrays):
            values, _idx, rdur = machine.read_batch(
                base + lin, window, at=search_end
            )
            if stacked or plan.row_tiles == 1:
                offset = 0
            else:
                offset = (lin // plan.col_tiles) * plan.row_tile
            n = min(values.shape[-1], plan.patterns - offset)
            if n > 0:
                scores[:, offset : offset + n] += values[:, :n]
            mdur = machine.merge(
                "subarray", max(n, 0), at=search_end + rdur,
                n_queries=n_queries,
            )
            merge_end = max(merge_end, search_end + rdur + mdur)
        for level in ("array", "mat", "bank"):
            merge_end += machine.merge(
                level, plan.patterns, at=merge_end, n_queries=n_queries
            )
        # --- per-query top-k -------------------------------------------
        values, indices, _dur = machine.select_topk_batch(
            scores, self.program.k, self.program.largest, at=merge_end
        )
        # The authoritative batch latency is structural (B x the
        # interpreter-measured per-query walk); advance the session
        # trace clock by it so successive batches land back-to-back.
        self._time = t0 + n_queries * self.per_query_latency_ns
        # Raw scores of the selected rows (selection ignores the WTA
        # clamp, so indices are exact; values may be clamped).
        self.last_values = np.take_along_axis(scores, indices, axis=1)
        self.last_indices = indices
        self.last_report = self._report(before, n_queries)
        self.batches_run += 1
        return [values.astype(np.float32), indices.astype(np.int64)]

    # -------------------------------------------------------------- report
    def _counters(self):
        machine = self.machine
        return (
            dict(machine.energy.as_dict()),
            machine.total_searches,
            [machine.subarray(self.subarray_base + i).searches
             for i in range(self.subarrays_used)],
        )

    def _standby_energy(self, latency_ns: float) -> float:
        """Standby energy over this session's *own* hierarchy slice.

        Mirrors :meth:`CamMachine.standby_energy` but with tenant-scoped
        instance counts, so a colocated session is charged standby for
        exactly the banks it occupies — identical to the machine-wide
        figure when the session owns the whole machine.
        """
        if self.spec.optimization_target in ("power", "power+density"):
            powered = self.arrays_used
        else:
            powered = self.subarrays_used
        standby_mw = self.tech.standby_power(
            self.spec,
            subarrays=powered,
            arrays=self.arrays_used,
            mats=self.mats_used,
            banks=self.banks_used,
        )
        duty = self.machine.standby_duty(self.array_base, self.arrays_used)
        return standby_mw * latency_ns * duty

    def _report(self, before, n_queries: int) -> ExecutionReport:
        """Batch report: this batch's query work + one-time setup cost.

        Counter *deltas* attribute the work: on a shared machine only
        this session touched the machine between the snapshots (batches
        are serialized per machine), so the report charges exactly this
        tenant's searches/energy, and the allocation fields cover its
        own banks rather than the whole fabric.
        """
        machine = self.machine
        energy_before, searches_before, sub_before = before
        energy_now = machine.energy.as_dict()
        energy = EnergyBreakdown(**{
            key: energy_now[key] - energy_before[key] for key in energy_now
        })
        energy.write = self.setup_energy_pj
        latency = n_queries * self.per_query_latency_ns
        energy.standby += self._standby_energy(latency)
        cycles = max(
            (machine.subarray(self.subarray_base + i).searches - sub_before[i]
             for i in range(len(sub_before))),
            default=0,
        )
        return ExecutionReport(
            query_latency_ns=latency,
            setup_latency_ns=self.setup_latency_ns,
            energy=energy,
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            searches=machine.total_searches - searches_before,
            search_cycles=cycles,
            queries=n_queries,
            spec=self.spec,
        )
