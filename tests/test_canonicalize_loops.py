"""Tests for canonicalization, CSE and the cim-to-loops host lowering."""

import numpy as np

import repro.frontend.torch_api as torch
from repro.dialects import arith as arith_d
from repro.dialects import func as func_d
from repro.frontend import import_graph, placeholder, trace
from repro.ir import ModuleOp, OpBuilder, count, print_module, verify
from repro.ir.types import FunctionType
from repro.passes.pass_manager import PassManager
from repro.runtime.executor import Interpreter
from repro.transforms import (
    CSEPass,
    CanonicalizePass,
    CimFuseOpsPass,
    CimToLoopsPass,
    TorchToCimPass,
)


def imported(fn, inputs):
    return import_graph(trace(fn, inputs)).module


class TestCanonicalize:
    def test_double_transpose_folds(self):
        def fn(x):
            return x.transpose(-2, -1).transpose(-2, -1)

        m = imported(fn, [placeholder((4, 8))])
        PassManager([CanonicalizePass()]).run(m)
        assert count(m, name="torch.aten.transpose.int") == 0
        # The return now forwards the argument directly.
        ret = next(m.functions()).body.operations[-1]
        assert ret.operands[0] is next(m.functions()).arguments[0]

    def test_mismatched_dims_not_folded(self):
        def fn(x):
            return x.transpose(0, 1).transpose(0, 2)

        m = imported(fn, [placeholder((2, 2, 2))])
        PassManager([CanonicalizePass()]).run(m)
        assert count(m, name="torch.aten.transpose.int") == 2

    def test_constant_arith_folds(self):
        from repro.ir.types import index

        m = ModuleOp()
        f = func_d.FuncOp("c", FunctionType([], [index]))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        c2 = b.create(arith_d.ConstantOp, 2)
        c3 = b.create(arith_d.ConstantOp, 3)
        add = b.create(arith_d.AddIOp, c2.result, c3.result)
        mul = b.create(arith_d.MulIOp, add.result, c3.result)
        b.create(func_d.ReturnOp, [mul.result])
        PassManager([CanonicalizePass()]).run(m)
        consts = [
            op.value for op in m.walk() if isinstance(op, arith_d.ConstantOp)
        ]
        assert 15 in consts
        assert count(m, name="arith.addi") == 0
        assert count(m, name="arith.muli") == 0

    def test_division_by_zero_not_folded(self):
        from repro.ir.types import index

        m = ModuleOp()
        f = func_d.FuncOp("d", FunctionType([], [index]))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c0 = b.create(arith_d.ConstantOp, 0)
        div = b.create(arith_d.DivSIOp, c1.result, c0.result)
        b.create(func_d.ReturnOp, [div.result])
        PassManager([CanonicalizePass()], verify_each=False).run(m)
        assert count(m, name="arith.divsi") == 1

    def test_dead_ops_swept(self):
        def fn(x):
            _unused = x.transpose(-2, -1)
            return x.transpose(-2, -1).transpose(-2, -1)

        m = imported(fn, [placeholder((4, 8))])
        PassManager([CanonicalizePass()]).run(m)
        assert count(m, name="torch.aten.transpose.int") == 0


class TestCSE:
    def test_duplicate_constants_merged(self):
        m = ModuleOp()
        f = func_d.FuncOp("e", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 7)
        c2 = b.create(arith_d.ConstantOp, 7)
        add = b.create(arith_d.AddIOp, c1.result, c2.result)
        b.create(arith_d.IndexCastOp, add.result, add.result.type)
        b.create(func_d.ReturnOp, [])
        PassManager([CSEPass(), CanonicalizePass()], verify_each=False).run(m)
        verify(m)
        # After CSE the second constant is dead and canonicalize sweeps it.
        sevens = [
            op for op in m.walk()
            if isinstance(op, arith_d.ConstantOp) and op.value == 7
        ]
        assert len(sevens) <= 1

    def test_different_attrs_not_merged(self):
        m = ModuleOp()
        f = func_d.FuncOp("g", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        add = b.create(arith_d.AddIOp, c1.result, c2.result)
        b.create(arith_d.IndexCastOp, add.result, add.result.type)
        b.create(func_d.ReturnOp, [])
        PassManager([CSEPass()], verify_each=False).run(m)
        assert count(m, name="arith.constant") == 2

    def test_side_effecting_ops_kept(self):
        from repro.dialects import memref as memref_d
        from repro.ir.types import MemRefType, f32

        m = ModuleOp()
        f = func_d.FuncOp("h", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        buf = b.create(memref_d.AllocOp, MemRefType([2], f32))
        b.create(memref_d.FillOp, buf.result, 1.0)
        b.create(memref_d.FillOp, buf.result, 1.0)
        b.create(func_d.ReturnOp, [])
        PassManager([CSEPass()]).run(m)
        assert count(m, name="memref.fill") == 2

    def test_identical_pure_ops_merged(self):
        def fn(x):
            a = x.transpose(-2, -1)
            b_ = x.transpose(-2, -1)
            return torch.matmul(a.transpose(-2, -1), b_)

        m = imported(fn, [placeholder((4, 4))])
        before = count(m, name="torch.aten.transpose.int")
        PassManager([CSEPass(), CanonicalizePass()]).run(m)
        after = count(m, name="torch.aten.transpose.int")
        assert after < before


class TestCimToLoops:
    def lower(self, fn, inputs):
        m = imported(fn, inputs)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), CimToLoopsPass()]
        ).run(m)
        verify(m)
        return m

    def test_no_cim_ops_remain(self):
        def fn(a, b):
            return torch.norm(a - b, p=2, dim=-1)

        m = self.lower(fn, [placeholder((5, 8)), placeholder((5, 8))])
        assert "cim." not in print_module(m)

    def test_norm_of_difference(self, rng):
        def fn(a, b):
            return torch.norm(a - b, p=2, dim=-1)

        m = self.lower(fn, [placeholder((5, 8)), placeholder((5, 8))])
        a = rng.standard_normal((5, 8)).astype(np.float32)
        b = rng.standard_normal((5, 8)).astype(np.float32)
        out, _ = Interpreter(m).run_function("forward", [a, b])
        np.testing.assert_allclose(
            out[0], np.sqrt(((a - b) ** 2).sum(-1)), rtol=1e-5
        )

    def test_matmul_transpose(self, rng):
        def fn(x, w):
            return torch.matmul(x, w.transpose(-2, -1))

        m = self.lower(fn, [placeholder((3, 8)), placeholder((6, 8))])
        x = rng.standard_normal((3, 8)).astype(np.float32)
        w = rng.standard_normal((6, 8)).astype(np.float32)
        out, _ = Interpreter(m).run_function("forward", [x, w])
        np.testing.assert_allclose(out[0], x @ w.T, rtol=1e-5)

    def test_broadcast_sub_div(self, rng):
        def fn(a, b):
            return (a - b) / b

        m = self.lower(fn, [placeholder((4, 6)), placeholder((1, 6))])
        a = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal((1, 6)).astype(np.float32) + 2.0
        out, _ = Interpreter(m).run_function("forward", [a, b])
        np.testing.assert_allclose(out[0], (a - b) / b, rtol=1e-5)

    def test_similarity_blocks_left_alone(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (4, 16)).astype(np.float32)
        m = imported(dot_kernel(stored), [placeholder((2, 16))])
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), CimToLoopsPass()]
        ).run(m)
        # topk is not loop-lowerable, so the fused block stays cim.
        assert count(m, name="cim.execute") == 1

    def test_loops_structure(self):
        def fn(x, w):
            return torch.matmul(x, w)

        m = self.lower(fn, [placeholder((3, 4)), placeholder((4, 5))])
        assert count(m, name="scf.for") == 3  # i, j, k
        assert count(m, name="memref.store") >= 1
