"""Table I — number of subarrays used to implement HDC (8k dims).

Paper values (N×N subarrays):

    cam-based:   512, 256, 128, 64, 32
    cam-density: 512,  86,  22,  6,  2

These are reproduced *exactly* — the counts follow from the partition
algebra, not from simulator calibration.
"""


from repro.arch import dse_spec
from repro.transforms import subarrays_required

from harness import print_series

SIZES = (16, 32, 64, 128, 256)
PAPER_BASED = (512, 256, 128, 64, 32)
PAPER_DENSITY = (512, 86, 22, 6, 2)


def counts(density):
    return tuple(
        subarrays_required(10, 8192, dse_spec(n), density) for n in SIZES
    )


def test_table1_exact():
    based = counts(False)
    density = counts(True)
    print_series(
        "Table I: subarrays used to implement HDC",
        [f"{n}x{n}" for n in SIZES],
        [("cam-based", list(based)), ("cam-density", list(density))],
    )
    assert based == PAPER_BASED
    assert density == PAPER_DENSITY


def test_density_capacity_gain_grows_with_size():
    based, density = counts(False), counts(True)
    gains = [b / d for b, d in zip(based, density)]
    assert gains == sorted(gains)
    assert gains[-1] == 16.0  # 32 vs 2 at 256x256


def test_allocated_machine_matches_table(hdc_1bit):
    """The compiled kernel must allocate exactly the Table-I counts."""
    for n, expected in zip(SIZES[:3], PAPER_BASED[:3]):
        report = hdc_1bit.run(dse_spec(n))
        assert report.subarrays_used == expected
    for n, expected in zip(SIZES[1:3], PAPER_DENSITY[1:3]):
        report = hdc_1bit.run(dse_spec(n, "density"))
        assert report.subarrays_used == expected


def test_bench_partition_plan(benchmark):
    benchmark.pedantic(
        lambda: [counts(False), counts(True)], rounds=10, iterations=5
    )
