"""Tests for the pattern-matching app, analysis utilities, area model,
pipeline spec parsing and the CLI driver."""

import numpy as np
import pytest

from repro.apps.matching import PatternMatcher
from repro.arch import FEFET_45NM, dse_spec, iso_capacity_spec, paper_spec
from repro.simulator import CamMachine
from repro.simulator.analysis import (
    busy_histogram,
    energy_shares,
    format_report,
    ops_by_target,
    utilization,
)
from repro.simulator.cells import DONT_CARE


class TestPatternMatcher:
    def make(self, patterns, **spec_kw):
        spec = paper_spec(**{"rows": 32, "cols": 32, **spec_kw})
        return PatternMatcher(np.asarray(patterns, dtype=float), spec)

    def test_exact_match_hit(self):
        rng = np.random.default_rng(0)
        patterns = rng.choice([0.0, 1.0], (12, 64))
        matcher = self.make(patterns)
        result = matcher.lookup(patterns[5])
        assert result.matched
        assert 5 in result.indices
        assert (result.distances == 0).all()

    def test_exact_match_miss(self):
        rng = np.random.default_rng(1)
        patterns = rng.choice([0.0, 1.0], (12, 64))
        query = 1.0 - patterns[0]  # far from everything with high prob.
        matcher = self.make(patterns)
        result = matcher.lookup(query)
        assert not result.matched
        assert result.first == -1

    def test_threshold_match(self):
        patterns = np.zeros((4, 32))
        patterns[1, :3] = 1.0   # distance 3 from the zero query
        patterns[2, :10] = 1.0  # distance 10
        matcher = self.make(patterns)
        result = matcher.lookup(np.zeros(32), threshold=5.0)
        assert set(result.indices.tolist()) == {0, 1, 3}

    def test_dont_care_wildcards(self):
        patterns = np.zeros((2, 32))
        patterns[0, :8] = DONT_CARE  # wildcard prefix
        patterns[1, :8] = 1.0
        matcher = self.make(patterns)
        query = np.zeros(32)
        query[:8] = 1.0
        result = matcher.lookup(query)
        assert set(result.indices.tolist()) == {0, 1}

    def test_multi_tile_patterns(self):
        """Patterns wider and more numerous than one subarray."""
        rng = np.random.default_rng(2)
        patterns = rng.choice([0.0, 1.0], (80, 128))
        matcher = self.make(patterns, rows=32, cols=32)
        for pid in (0, 41, 79):
            result = matcher.lookup(patterns[pid])
            assert pid in result.indices

    def test_query_width_validated(self):
        matcher = self.make(np.zeros((4, 64)))
        with pytest.raises(ValueError):
            matcher.lookup(np.zeros(32))

    def test_report_accumulates(self):
        matcher = self.make(np.zeros((4, 32)))
        matcher.lookup(np.zeros(32))
        matcher.lookup(np.ones(32))
        rep = matcher.report()
        assert rep.queries == 2
        assert rep.query_latency_ns > 0
        assert rep.energy.query_total > 0


class TestAnalysis:
    def loaded_machine(self):
        m = CamMachine(paper_spec(), trace=True)
        arr = m.alloc_array(m.alloc_mat(m.alloc_bank()))
        for i in range(2):
            s = m.alloc_subarray(arr)
            m.write_value(s, np.ones((10, 32)))
            m.search(s, np.ones(32), at=float(i))
        return m

    def test_utilization(self):
        m = self.loaded_machine()
        u = utilization(m)
        assert u.subarrays_allocated == 2
        assert u.subarrays_written == 2
        assert u.rows_occupied == 20
        assert u.row_utilization == pytest.approx(20 / 64)
        assert 0 < u.cell_utilization <= 1

    def test_density_improves_utilization(self, rng):
        """cam-density exists to raise array utilization (paper §III-D2)."""
        import repro.frontend.torch_api as torch
        from repro.compiler import C4CAMCompiler
        from repro.frontend import placeholder

        stored = rng.choice([-1.0, 1.0], (10, 2048)).astype(np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, x):
                o = self.weight.transpose(-2, -1)
                return torch.ops.aten.topk(torch.matmul(x, o), 1, largest=True)

        utils = {}
        for target in ("latency", "density"):
            k = C4CAMCompiler(dse_spec(64, target)).compile(
                M(), [placeholder((1, 2048))]
            )
            k(stored[:1, :2048])
            utils[target] = utilization(k.last_machine).row_utilization
        assert utils["density"] > 2 * utils["latency"]

    def test_energy_shares_sum_to_one(self):
        m = self.loaded_machine()
        rep = m.finish(10.0)
        shares = energy_shares(rep)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_busy_histogram(self):
        m = self.loaded_machine()
        hist = busy_histogram(m.trace, bucket_ns=1.0)
        assert len(hist) >= 1
        assert max(hist) >= 1

    def test_ops_by_target(self):
        m = self.loaded_machine()
        counts = ops_by_target(m.trace)
        assert counts.get("subarray:0", 0) == 2  # write + search

    def test_format_report(self):
        m = self.loaded_machine()
        rep = m.finish(10.0, 2.0)
        text = format_report(rep, m)
        assert "query latency" in text
        assert "utilization" in text
        assert "mm^2" in text


class TestAreaModel:
    def test_subarray_area_grows_with_geometry(self):
        assert FEFET_45NM.subarray_area_um2(dse_spec(64)) > \
            FEFET_45NM.subarray_area_um2(dse_spec(16))

    def test_iso_capacity_not_iso_area(self):
        """Paper §IV-C2: smaller subarrays need more peripheral sets, so
        iso-capacity systems grow in area as the subarray shrinks."""
        areas = []
        for n in (256, 64, 16):
            spec = iso_capacity_spec(n)
            m = CamMachine(spec)
            bank = m.alloc_bank()
            mat = m.alloc_mat(bank)
            arr = m.alloc_array(mat)
            for _ in range(spec.subarrays_per_array):
                m.alloc_subarray(arr)
            areas.append(m.chip_area_mm2())
        assert areas == sorted(areas)  # 256 smallest, 16 largest

    def test_machine_area_positive(self):
        m = CamMachine(paper_spec())
        m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        assert m.chip_area_mm2() > 0


class TestPipelineSpec:
    def test_standard_pipeline_parses(self):
        from repro.passes.pipeline import build_pipeline_from_spec

        pm = build_pipeline_from_spec(
            "torch-to-cim,cim-fuse-ops,cim-similarity-match,"
            "cim-partition,cim-to-cam",
            paper_spec(),
        )
        assert len(pm.passes) == 5

    def test_unknown_pass_rejected(self):
        from repro.passes.pipeline import PipelineError, build_pipeline_from_spec

        with pytest.raises(PipelineError, match="unknown pass"):
            build_pipeline_from_spec("torch-to-cim,frobnicate")

    def test_arch_required(self):
        from repro.passes.pipeline import PipelineError, build_pipeline_from_spec

        with pytest.raises(PipelineError, match="ArchSpec"):
            build_pipeline_from_spec("cim-to-cam")

    def test_pipeline_runs_end_to_end(self, dot_kernel, rng):
        from repro.compiler import C4CAMCompiler
        from repro.frontend import placeholder
        from repro.ir import count
        from repro.passes.pipeline import build_pipeline_from_spec

        stored = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        compiler = C4CAMCompiler(paper_spec())
        module, _params = compiler.import_torchscript(
            dot_kernel(stored), [placeholder((1, 64))]
        )
        pm = build_pipeline_from_spec(
            "torch-to-cim,cim-fuse-ops,cim-similarity-match,"
            "cim-partition,cim-to-cam,cse,canonicalize",
            paper_spec(),
        )
        pm.run(module)
        assert count(module, name="cam.search") >= 1

    def test_available_passes_listed(self):
        from repro.passes.pipeline import available_passes

        names = available_passes()
        assert "torch-to-cim" in names and "cse" in names


class TestCli:
    def test_default_run(self, capsys):
        from repro.cli import main

        assert main(["--dims", "128", "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "predicted indices" in out

    def test_stats_flag(self, capsys):
        from repro.cli import main

        assert main(["--dims", "128", "--stats"]) == 0
        assert "utilization" in capsys.readouterr().out

    def test_dump_ir_stages(self, capsys):
        from repro.cli import main

        assert main(["--dims", "128", "--dump-ir", "torch"]) == 0
        assert "torch.aten" in capsys.readouterr().out
        assert main(["--dims", "128", "--dump-ir", "cam"]) == 0
        assert "cam.search" in capsys.readouterr().out

    def test_custom_pipeline(self, capsys):
        from repro.cli import main

        code = main(
            ["--dims", "128", "--pipeline", "torch-to-cim,cim-fuse-ops"]
        )
        assert code == 0
        assert "cim.execute" in capsys.readouterr().out

    def test_arch_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "arch.json"
        paper_spec(rows=16, cols=16).to_json(path)
        assert main(["--arch", str(path), "--dims", "64"]) == 0


class TestRecSys:
    def test_pipeline_end_to_end(self, rng):
        from repro.apps.recsys import RecSysPipeline

        n_items, tags, dims = 12, 32, 128
        filters = rng.choice([0.0, 1.0], (n_items, tags))
        embeds = rng.standard_normal((n_items, dims)).astype(np.float32)
        pipe = RecSysPipeline(filters, embeds, paper_spec(), top_k=4)
        rec = pipe.recommend(filters[2], embeds[2], filter_threshold=0.0)
        assert rec.candidates >= 1
        assert 2 in rec.item_ids
        assert rec.latency_ns > rec.throughput_interval_ns

    def test_filter_excludes(self, rng):
        from repro.apps.recsys import RecSysPipeline

        filters = np.zeros((4, 32))
        filters[3, :16] = 1.0  # item 3's tags differ from the query context
        embeds = rng.standard_normal((4, 64)).astype(np.float32)
        pipe = RecSysPipeline(filters, embeds, paper_spec(), top_k=4)
        rec = pipe.recommend(np.zeros(32), embeds[3], filter_threshold=4.0)
        assert 3 not in rec.item_ids

    def test_misaligned_inputs_rejected(self, rng):
        from repro.apps.recsys import RecSysPipeline

        with pytest.raises(ValueError):
            RecSysPipeline(
                np.zeros((3, 16)),
                np.zeros((4, 32), dtype=np.float32),
                paper_spec(),
            )
