"""Compulsory partitioning (paper §III-D1, Fig. 5d).

Kernels usually exceed one subarray, so the similarity operation is tiled
to the subarray granularity: the feature dimension splits into column
tiles of ``cols`` and the pattern set into row tiles of at most ``rows``.
Partial scores from column tiles are accumulated *horizontally*; disjoint
row tiles concatenate *vertically* (``cim.merge_partial`` directions).

With the **density** optimization (selective search [27]), several column
tiles stack at different row offsets of one subarray — ``batches`` per
subarray — reproducing the capacity gains of paper Table I.

The pass records the plan as attributes on each ``cim.similarity`` op;
the ``cim-to-cam`` mapping consumes the plan when it rebuilds the loop
nest against the concrete hierarchy (paper: "the original program
underwent partitioning at the CIM dialect without considering the
hierarchy... To map an application onto the CAM abstraction, the cam-map
pass ... transforms the application into a nested loop structure").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.spec import ArchSpec
from repro.dialects import cim as cim_d
from repro.ir.operation import Operation
from repro.passes.pass_manager import FunctionPass


@dataclass(frozen=True)
class PartitionPlan:
    """How one similarity kernel tiles onto subarrays.

    ``patterns``/``features`` describe the stored matrix (``P×D``);
    ``queries`` the number of query rows.  ``row_tile × col_tile`` is the
    per-subarray tile, ``batches`` the column tiles stacked per subarray
    (1 without the density optimization).
    """

    patterns: int
    features: int
    queries: int
    rows: int
    cols: int
    row_tile: int
    col_tile: int
    row_tiles: int
    col_tiles: int
    batches: int

    @property
    def total_tiles(self) -> int:
        """Number of ``row_tile × col_tile`` tiles to place."""
        return self.row_tiles * self.col_tiles

    @property
    def subarrays(self) -> int:
        """Subarrays needed once batches are stacked (Table I)."""
        per_sub = self.batches
        return self.row_tiles * math.ceil(self.col_tiles / per_sub)

    def tile_of(self, linear: int, batch: int) -> tuple:
        """Map (subarray linear index, batch) -> (row part, col part).

        Returns ``None`` when the slot is beyond the tile count.
        With batches, subarray ``i`` holds column tiles
        ``i*batches .. i*batches+batches-1`` (row_tiles == 1 then).
        """
        if self.batches > 1:
            cp = linear * self.batches + batch
            if cp >= self.col_tiles:
                return None
            return (0, cp)
        cols_per_row = self.col_tiles
        tile = linear
        if batch != 0 or tile >= self.total_tiles:
            return None
        return (tile // cols_per_row, tile % cols_per_row)


def compute_partition_plan(
    patterns: int,
    features: int,
    queries: int,
    spec: ArchSpec,
    use_density: bool = False,
) -> PartitionPlan:
    """Tile a ``patterns × features`` store onto ``spec``'s subarrays."""
    if patterns <= 0 or features <= 0:
        raise ValueError("similarity kernel must have patterns and features")
    col_tile = min(spec.cols, features)
    col_tiles = math.ceil(features / col_tile)
    row_tile = min(spec.rows, patterns)
    row_tiles = math.ceil(patterns / row_tile)
    batches = 1
    if (
        use_density
        and spec.selective_search
        and row_tiles == 1
        and patterns <= spec.rows
    ):
        batches = max(1, spec.rows // patterns)
    return PartitionPlan(
        patterns=patterns,
        features=features,
        queries=queries,
        rows=spec.rows,
        cols=spec.cols,
        row_tile=row_tile,
        col_tile=col_tile,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        batches=batches,
    )


#: Attribute names used to annotate similarity ops with their plan.
PLAN_ATTRS = (
    "patterns", "features", "queries", "rows", "cols",
    "row_tile", "col_tile", "row_tiles", "col_tiles", "batches",
)


def annotate(op: Operation, plan: PartitionPlan) -> None:
    """Attach ``plan`` to ``op`` as ``plan.*`` integer attributes."""
    from repro.ir.attributes import IntegerAttr

    for name in PLAN_ATTRS:
        op.attributes[f"plan.{name}"] = IntegerAttr(getattr(plan, name))


def plan_of(op: Operation) -> PartitionPlan:
    """Read a :class:`PartitionPlan` back from ``plan.*`` attributes."""
    values = {}
    for name in PLAN_ATTRS:
        attr = op.attributes.get(f"plan.{name}")
        if attr is None:
            raise ValueError(f"{op.name} has no partition plan annotation")
        values[name] = attr.value
    return PartitionPlan(**values)


class CimPartitionPass(FunctionPass):
    """Annotate every ``cim.similarity`` with its partition plan."""

    NAME = "cim-partition"

    def __init__(self, spec: ArchSpec, use_density: bool = False):
        self.spec = spec
        self.use_density = use_density

    def run_on_function(self, func: Operation) -> None:
        for op in func.walk():
            if isinstance(op, cim_d.SimilarityOp):
                stored_t = op.stored.type
                query_t = op.query.type
                patterns, features = stored_t.shape[0], stored_t.shape[-1]
                queries = query_t.shape[0] if query_t.rank == 2 else 1
                plan = compute_partition_plan(
                    patterns, features, queries, self.spec, self.use_density
                )
                annotate(op, plan)
