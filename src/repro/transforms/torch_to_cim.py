"""``torch-to-cim`` conversion (paper §III-D, Fig. 5a).

Lowers each supported torch operation into its own
``cim.acquire`` / ``cim.execute`` / ``cim.release`` triple — "the
fundamental assumption of the torch-to-cim conversion is that each
supported operation can be executed on a separate (non-)CIM device".
The fusion pass subsequently merges compatible execute blocks.
"""

from __future__ import annotations

from typing import List

from repro.dialects import cim as cim_d
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation
from repro.ir.value import Value
from repro.passes.pass_manager import FunctionPass


class TorchToCimPass(FunctionPass):
    """Convert torch-dialect compute ops into single-op cim.execute blocks."""

    NAME = "torch-to-cim"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.body.operations):
            if op.name in _CONVERTERS:
                _convert(op)


def _convert(op: Operation) -> None:
    """Wrap one torch op into acquire/execute/release."""
    builder = OpBuilder.before(op)
    # Tensor operands feed the execute region through block arguments;
    # scalar operands (e.g. the topk k constant) are forwarded as well so
    # the body stays self-contained.
    operands = list(op.operands)
    acquire = builder.create(cim_d.AcquireOp)
    execute = builder.create(
        cim_d.ExecuteOp,
        acquire.result,
        operands,
        [r.type for r in op.results],
    )
    body_builder = OpBuilder.at_end(execute.body)
    inner_results = _CONVERTERS[op.name](body_builder, op, execute.body.arguments)
    body_builder.create(cim_d.YieldOp, inner_results)
    builder.create(cim_d.ReleaseOp, acquire.result)
    op.replace_with(list(execute.results))


def _cvt_transpose(b: OpBuilder, op: Operation, args: List[Value]):
    new = b.create(
        cim_d.TransposeOp, args[0],
        op.attributes["dim0"].value, op.attributes["dim1"].value,
    )
    return [new.result]


def _cvt_matmul(b: OpBuilder, op: Operation, args: List[Value]):
    return [b.create(cim_d.MatmulOp, args[0], args[1]).result]


def _cvt_sub(b: OpBuilder, op: Operation, args: List[Value]):
    return [b.create(cim_d.SubOp, args[0], args[1]).result]


def _cvt_div(b: OpBuilder, op: Operation, args: List[Value]):
    extra = args[2] if len(args) > 2 else None
    return [b.create(cim_d.DivOp, args[0], args[1], extra).result]


def _cvt_norm(b: OpBuilder, op: Operation, args: List[Value]):
    new = b.create(
        cim_d.NormOp, args[0],
        p=op.attributes["p"].value,
        dim=op.attributes["dim"].value,
        keepdim=op.attributes["keepdim"].value,
    )
    return [new.result]


def _cvt_topk(b: OpBuilder, op: Operation, args: List[Value]):
    new = b.create(
        cim_d.TopkOp, args[0], args[1],
        k_static=op.attributes["k"].value,
        largest=op.attributes["largest"].value,
    )
    return list(new.results)


_CONVERTERS = {
    "torch.aten.transpose.int": _cvt_transpose,
    "torch.aten.mm": _cvt_matmul,
    "torch.aten.matmul": _cvt_matmul,
    "torch.aten.sub": _cvt_sub,
    "torch.aten.div": _cvt_div,
    "torch.aten.norm": _cvt_norm,
    "torch.aten.topk": _cvt_topk,
}
