"""Runtime: the IR interpreter, batched query sessions, sharded
multi-machine sessions, the replicated async serving layer, multi-tenant
bank placement and host reference semantics."""

from . import values
from .backend import ClusterShutdown, ExecutionBackend, LaneStats
from .cluster import Cluster
from .executor import ExecutionError, Interpreter
from .placement import (
    MultiTenantSession,
    PlacementError,
    PlacementPlan,
    TenantAssignment,
    TenantDemand,
    TenantProgram,
    plan_placement,
    tenant_demand,
)
from .serving import ReplicatedSession, ServingEngine
from .session import QueryProgram, QuerySession, SessionError
from .sharding import (
    Shard,
    ShardedSession,
    ShardSet,
    aggregate_reports,
    build_shard_set,
    plan_shard_count,
    shard_sizes,
)

__all__ = [
    "Cluster",
    "ClusterShutdown",
    "ExecutionBackend",
    "ExecutionError",
    "Interpreter",
    "LaneStats",
    "MultiTenantSession",
    "PlacementError",
    "PlacementPlan",
    "QueryProgram",
    "QuerySession",
    "ReplicatedSession",
    "ServingEngine",
    "SessionError",
    "Shard",
    "ShardedSession",
    "ShardSet",
    "TenantAssignment",
    "TenantDemand",
    "TenantProgram",
    "aggregate_reports",
    "build_shard_set",
    "plan_shard_count",
    "plan_placement",
    "shard_sizes",
    "tenant_demand",
    "values",
]
