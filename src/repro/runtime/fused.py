"""Fused batch execution: the session's query pipeline as one flat kernel.

A :class:`~repro.runtime.session.QuerySession` answers every batch by
walking the same fixed post-programming pipeline — per-tile
``machine.search`` (mask-gather the stored rows, score, latch), per-tile
``read_batch``/``merge``, three hierarchy merge hops, then the host
top-k.  The *structure* of that walk never changes between mutations:
the tile placement, the live-row sets, the per-operation energy charges
and the metric are all fixed once the store is programmed.  This module
traces that structure exactly once and emits a :class:`FusedPlan` — a
preallocated batch kernel that executes the whole pipeline as one flat
sequence of vectorized NumPy ops with no per-stage Python dispatch:

* **trace** — :func:`build_fused_plan` reads the *machine's* stored
  tiles (the same ``SubarrayState`` windows a search would gather),
  concatenates each column slice's live rows into one contiguous
  matrix in slot order, and precomputes every per-query energy charge
  the unfused walk would make, in the same order;
* **plan** — the result is immutable: per-column-slice stores, the
  per-tile charge schedule, the top-k configuration;
* **execute** — :meth:`FusedPlan.execute` scores a whole ``B×D`` batch
  with one :func:`~repro.simulator.cells.compute_scores` call per
  column slice, applies the charge schedule (scalar multiply-adds into
  the live machine counters), and selects the per-query top-k directly
  through :func:`~repro.simulator.peripherals.best_match_batch`.

**Bitwise-identity guarantee.**  A fused run returns the same
``[values, indices]`` bit for bit as the unfused session walk, and its
:class:`~repro.simulator.metrics.ExecutionReport` charges identical
energy and latency: score accumulation preserves the unfused
per-column-slice (and, density-stacked, per-subarray) float addition
order; the top-k is the same stable argsort with the same WTA clamp;
every energy counter receives the same sequence of ``+=`` operands.
The unfused path stays in the tree as the differential oracle
(``tests/test_differential.py``, ``tests/test_mutation_differential.py``).

**Invalidation.**  Mutations (insert/delete/update/compact/grow) change
the live-row sets the trace snapshotted, so the owning session drops its
plan on every mutation and rebuilds lazily on the next ``run_batch`` —
the compiled-artifact idiom of AOT module export (build once, cache,
invalidate on source change).  Fusion is transparently bypassed when
device noise is enabled (noise draws are per-machine-call, which only
the unfused walk reproduces) or when the machine's valid rows disagree
with the session's slot directory (defensive: never serve rows the
hardware would not).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.simulator.cells import METRIC_FUNCTIONS, compute_scores
from repro.simulator.peripherals import best_match_batch

__all__ = ["FusedPlan", "build_fused_plan"]

#: Largest |value| the exact-integer fast paths accept.  Bounded so
#: every intermediate stays an exact float64 integer: with features
#: capped at :data:`_EXACT_MAX_FEATURES`, products reach ``2**40`` and
#: row sums ``2**52 < 2**53`` — below the float64 integer horizon, so
#: BLAS may reorder (or fuse) the additions freely without changing a
#: single bit.
_EXACT_MAX = float(1 << 20)
_EXACT_MAX_FEATURES = 1 << 12


def _assemble_store(slices, stacked: bool, n_alive: int, features: int):
    """Concatenate the traced tiles into one live-store matrix.

    Returns ``None`` unless the tiles' column spans partition
    ``[0, features)`` exactly once — the precondition for collapsing the
    per-tile accumulation into a single whole-row reduction.
    """
    tiles: List[Tuple[int, int, np.ndarray]] = []
    if stacked:
        for sub_slices in slices:
            tiles.extend(sub_slices)
    else:
        tiles = list(slices)
    edge = 0
    for c0, c1 in sorted((c0, c1) for c0, c1, _ in tiles):
        if c0 != edge:
            return None
        edge = c1
    if edge != features:
        return None
    full = np.empty((n_alive, features), dtype=np.float64)
    for c0, c1, store in tiles:
        full[:, c0:c1] = store
    return full


def _exact_kernel(metric: str, full: Optional[np.ndarray]):
    """Build the exact-arithmetic rewrite of ``metric`` over ``full``.

    CAM match scores are sums of per-cell terms.  Whenever every term is
    an exact float64 integer, addition is associative *bit for bit*, so
    the per-tile accumulation order the generic path preserves stops
    mattering and the whole score matrix collapses into BLAS matmuls:

    * ``hamming`` over a two-value stored alphabet ``{a, b}``:
      per-cell mismatch is ``sb XOR qb = sb + qb - 2·sb·qb`` on the
      ``== b`` indicators, so ``counts = base + qb@V - 2·(qb@A)``;
    * ``euclidean`` over integer codes: ``(s-q)² = s² - 2sq + q²``,
      so ``dist = base + q²@V - 2·(q@A)``;
    * ``dot`` over integer codes: ``sim = q@A``.

    Don't-care cells drop out through the valid mask ``V``.  Returns
    ``(metric, a, b, base, VT, AT)`` or ``None`` when the stored data
    fails the gate (the query side is gated per batch at execute time).
    """
    if full is None or full.size == 0:
        return None
    if full.shape[1] > _EXACT_MAX_FEATURES:
        return None
    valid = ~np.isnan(full)
    finite = full[valid]
    cleaned = np.where(valid, full, 0.0)
    vt = np.ascontiguousarray(valid.T.astype(np.float64))
    if metric == "hamming":
        vals = np.unique(finite)
        if vals.size != 2:
            return None
        a, b = float(vals[0]), float(vals[1])
        sb = ((full == b) & valid).astype(np.float64)
        return ("hamming", a, b, sb.sum(axis=1),
                vt, np.ascontiguousarray(sb.T))
    if not (np.all(np.abs(finite) <= _EXACT_MAX)
            and np.all(finite == np.rint(finite))):
        return None
    at = np.ascontiguousarray(cleaned.T)
    if metric == "dot":
        return ("dot", 0.0, 0.0, None, None, at)
    if metric == "euclidean":
        return ("euclidean", 0.0, 0.0,
                (cleaned * cleaned).sum(axis=1), vt, at)
    return None


class FusedPlan:
    """One session's traced pipeline, ready to execute batches.

    Built by :func:`build_fused_plan`; owned (and invalidated) by a
    :class:`~repro.runtime.session.QuerySession`.  The plan holds
    snapshots of the machine's stored tiles, so it must be rebuilt
    whenever the store mutates — the session does this automatically.
    """

    __slots__ = (
        "machine",
        "metric",
        "stacked",
        "slices",
        "n_alive",
        "largest",
        "wta_window",
        "search_charges",
        "read_charges",
        "merge_charges",
        "host_energy",
        "exact",
    )

    def __init__(
        self,
        machine,
        metric: str,
        stacked: bool,
        slices,
        features: int,
        n_alive: int,
        largest: bool,
        wta_window: int,
        search_charges: List[Tuple[object, float]],
        read_charges: List[float],
        merge_charges: List[float],
        host_energy: float,
    ):
        self.machine = machine
        self.metric = metric
        self.stacked = stacked
        #: Non-stacked: ``[(c0, c1, store)]`` per column slice, each
        #: ``store`` the live rows of that slice concatenated in slot
        #: order.  Stacked: ``[[(c0, c1, store), ...]]`` — one inner
        #: list per subarray, one entry per stacked pattern batch.
        self.slices = slices
        self.n_alive = n_alive
        self.largest = largest
        self.wta_window = wta_window
        #: ``(SubarrayState, energy_pj_per_query)`` per searched tile,
        #: in the unfused walk's tile order.
        self.search_charges = search_charges
        self.read_charges = read_charges
        self.merge_charges = merge_charges
        self.host_energy = host_energy
        #: Exact-arithmetic matmul rewrite of the metric, or ``None``
        #: (see :func:`_exact_kernel`); gated per batch on the query
        #: values, with the per-slice loop as the always-correct
        #: fallback.
        self.exact = _exact_kernel(
            metric, _assemble_store(slices, stacked, n_alive, features)
        )

    def execute(
        self, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run one ``B×D`` batch through the fused pipeline.

        Returns ``(values, indices, scores)`` — the (possibly
        WTA-clamped) float64 top-k values, their int64 slot indices and
        the full ``B×n_alive`` merged score matrix (the unclamped
        candidates a :class:`~repro.runtime.sharding.ShardedSession`
        re-ranks).  Charges land on the live machine counters in the
        unfused walk's order.
        """
        n_queries = queries.shape[0]
        n_alive = self.n_alive
        # --- score: exact matmul rewrite when the batch qualifies,
        #     else one vectorized metric call per column slice ----------
        scores = self._exact_scores(queries) if self.exact else None
        if scores is None:
            scores = np.zeros((n_queries, n_alive), dtype=np.float64)
            metric = self.metric
            if self.stacked:
                # Two-level accumulation mirrors the machine: each
                # subarray's digital accumulator sums its own pattern
                # batches first, then partials merge across subarrays.
                for sub_slices in self.slices:
                    partial = np.zeros(
                        (n_queries, n_alive), dtype=np.float64
                    )
                    for c0, c1, store in sub_slices:
                        partial += compute_scores(
                            metric, store, queries[:, c0:c1]
                        )
                    scores += partial
            else:
                for c0, c1, store in self.slices:
                    scores += compute_scores(
                        metric, store, queries[:, c0:c1]
                    )
        # --- charge: the traced per-query schedule ---------------------
        machine = self.machine
        energy = machine.energy
        for sub, pj in self.search_charges:
            energy.search += n_queries * pj
            sub.searches += n_queries
        machine.total_searches += n_queries * len(self.search_charges)
        for pj in self.read_charges:
            energy.read += n_queries * pj
        for pj in self.merge_charges:
            energy.merge += n_queries * pj
        # --- select: per-query top-k over the live rows ----------------
        if n_alive > 0:
            indices, values = best_match_batch(
                scores, k, prefers_larger=self.largest,
                wta_window=self.wta_window,
            )
            energy.host += n_queries * self.host_energy
        else:
            values = np.zeros((n_queries, 0), dtype=np.float64)
            indices = np.zeros((n_queries, 0), dtype=np.int64)
        machine.trace.record(
            "fused_batch", "host", 0.0, 0.0, 0.0,
            f"queries={n_queries} rows={n_alive} k={k}",
        )
        return values, indices, scores

    def _exact_scores(self, queries: np.ndarray):
        """Score via the exact-arithmetic rewrite, or ``None``.

        The stored side passed the gate at trace time; here the query
        batch must too — every value in the alphabet (hamming) or an
        exact small integer (euclidean/dot).  A batch that fails scores
        through the generic per-slice loop instead, bit-identically.
        """
        metric, a, b, base, vt, at = self.exact
        if metric == "hamming":
            qb = queries == b
            if not np.all(qb | (queries == a)):
                return None
            qb = qb.astype(np.float64)
            return base + qb @ vt - 2.0 * (qb @ at)
        if not (np.all(np.abs(queries) <= _EXACT_MAX)
                and np.all(queries == np.rint(queries))):
            return None
        if metric == "dot":
            return queries @ at
        return base + (queries * queries) @ vt - 2.0 * (queries @ at)


def _stacked_plan(session) -> Optional[FusedPlan]:
    """Trace a density-stacked (accumulator) store."""
    program = session.program
    plan = program.plan
    machine, spec, tech = session.machine, session.spec, session.tech
    features = plan.features
    window = plan.patterns
    alive = session._alive[: session._capacity]
    n_alive = int(alive.sum())
    search_charges: List[Tuple[object, float]] = []
    per_sub: dict = {}
    order: List[int] = []
    for lin, batch, (_rp, cp) in program.tiles():
        sub = machine.subarray(session._sub_ids[lin])
        row_begin = batch * window
        if not np.array_equal(sub.valid_mask(row_begin, window), alive):
            return None
        c0 = cp * plan.col_tile
        c1 = min(c0 + plan.col_tile, features)
        store = np.ascontiguousarray(
            sub.stored(row_begin, window)[:, : c1 - c0]
        )
        if lin not in per_sub:
            per_sub[lin] = []
            order.append(lin)
        per_sub[lin].append((c0, c1, store))
        search_charges.append(
            (sub, tech.search_energy(spec, store.shape[0], True))
        )
    # The unfused walk reads and merges *every* allocated subarray of
    # the plan, tiles or not.
    read_pj = tech.read_energy(spec, window)
    merge_pj = tech.merge_energy("subarray", min(window, plan.patterns))
    read_charges = [read_pj] * plan.subarrays
    merge_charges = [merge_pj] * plan.subarrays
    for level in ("array", "mat", "bank"):
        merge_charges.append(tech.merge_energy(level, plan.patterns))
    return FusedPlan(
        machine=machine,
        metric=program.metric,
        stacked=True,
        slices=[per_sub[lin] for lin in order],
        features=features,
        n_alive=n_alive,
        largest=program.largest,
        wta_window=tech.wta_window,
        search_charges=search_charges,
        read_charges=read_charges,
        merge_charges=merge_charges,
        host_energy=tech.host_topk_energy(n_alive) if n_alive else 0.0,
    )


def _tiled_plan(session) -> Optional[FusedPlan]:
    """Trace a row-group (latch-path) store, growth groups included."""
    program = session.program
    plan = program.plan
    machine, spec, tech = session.machine, session.spec, session.tech
    features = plan.features
    col_tiles = plan.col_tiles
    n_alive = int(session._alive[: session._next_slot].sum())
    parts: List[List[np.ndarray]] = [[] for _ in range(col_tiles)]
    search_charges: List[Tuple[object, float]] = []
    read_charges: List[float] = []
    merge_charges: List[float] = []
    for group in session._row_groups:
        window = group.window
        group_alive = session._alive[
            group.base_slot : group.base_slot + window
        ]
        live = None
        for cp, sub_id in enumerate(group.subs):
            sub = machine.subarray(sub_id)
            if not np.array_equal(sub.valid_mask(0, window), group_alive):
                return None
            c0 = cp * plan.col_tile
            c1 = min(c0 + plan.col_tile, features)
            store = sub.stored(0, window)[:, : c1 - c0]
            live = store.shape[0]
            parts[cp].append(store)
            search_charges.append(
                (sub, tech.search_energy(spec, live, False))
            )
        used = max(
            0, min(window, session._next_slot - group.base_slot)
        )
        read_pj = tech.read_energy(spec, window)
        merge_pj = tech.merge_energy("subarray", used)
        for _ in group.subs:
            read_charges.append(read_pj)
            merge_charges.append(merge_pj)
    slices = []
    for cp in range(col_tiles):
        c0 = cp * plan.col_tile
        c1 = min(c0 + plan.col_tile, features)
        store = (
            np.ascontiguousarray(np.vstack(parts[cp]))
            if parts[cp]
            else np.zeros((0, c1 - c0), dtype=np.float64)
        )
        if store.shape[0] != n_alive:
            return None
        slices.append((c0, c1, store))
    for level in ("array", "mat", "bank"):
        merge_charges.append(tech.merge_energy(level, plan.patterns))
    return FusedPlan(
        machine=machine,
        metric=program.metric,
        stacked=False,
        slices=slices,
        features=features,
        n_alive=n_alive,
        largest=program.largest,
        wta_window=tech.wta_window,
        search_charges=search_charges,
        read_charges=read_charges,
        merge_charges=merge_charges,
        host_energy=tech.host_topk_energy(n_alive) if n_alive else 0.0,
    )


def build_fused_plan(session) -> Optional[FusedPlan]:
    """Trace ``session``'s query pipeline into a :class:`FusedPlan`.

    Returns ``None`` when the session cannot be fused — unknown metric,
    or the machine's valid rows disagree with the session's slot
    directory (the caller then keeps the unfused walk, which is always
    correct).  Device noise is the *caller's* bypass: noise draws are
    per-machine-call and only the unfused walk reproduces them.
    """
    if session.program.metric not in METRIC_FUNCTIONS:
        return None
    if session.program.plan.batches > 1:
        return _stacked_plan(session)
    return _tiled_plan(session)
