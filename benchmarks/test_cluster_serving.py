"""Cluster dispatch under saturation: priority wins, autoscaler engages.

The cluster control plane dispatches with priority classes (higher
first) and EDF within a class, and grows per-tenant serving lanes when
queue depth outruns capacity.  Both behaviours only matter *under
saturation*, so this benchmark paces the simulated device (each
micro-batch holds its lane for a few wall milliseconds) and drives an
open-loop queue deep enough that requests genuinely wait:

* **mixed priorities** — a flood of low-priority requests saturates the
  lane; high-priority requests submitted into the standing queue must
  overtake it.  Asserted: the high-priority class's p50
  submit-to-resolve latency beats the low-priority class's by >= 2x
  (the structural gap is far larger: a high-priority request waits for
  at most the in-flight batch, a low one for the whole queue ahead).
* **queue-depth autoscaling** — the same pressure with autoscaling
  enabled must grow the tenant past one lane (scale-up events
  recorded, extra lanes observed) and still return bitwise-correct
  results for every request.
"""

import time

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime import Cluster

from harness import print_series

# Wall-clock-sensitive: excluded from the deterministic CI tier
# (`-m "not benchmark"`); the benchmarks-smoke job runs it with floors.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

PATTERNS = 16
DIMS = 512
LOW_REQUESTS = 36
HIGH_REQUESTS = 8
SERVICE_S = 0.004        # wall-clock hold per micro-batch (simulated)
MAX_BATCH = 4


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, 1, largest=True)

    return DotSimilarity()


@pytest.fixture(scope="module")
def cluster_workload():
    rng = np.random.default_rng(11)
    stored = rng.choice([-1.0, 1.0], (PATTERNS, DIMS)).astype(np.float32)
    queries = rng.choice(
        [-1.0, 1.0], (LOW_REQUESTS + HIGH_REQUESTS, DIMS)
    ).astype(np.float32)
    spec = paper_spec(rows=32, cols=32)
    compiler = C4CAMCompiler(spec)
    kernel = compiler.compile(_dot_model(stored), [placeholder((1, DIMS))])
    # Calibrate the wall pace: one MAX_BATCH micro-batch holds a lane
    # for SERVICE_S seconds.
    kernel.run_batch(queries[:MAX_BATCH])
    per_batch_ns = kernel.last_report.query_latency_ns
    return dict(
        spec=spec,
        compiler=compiler,
        stored=stored,
        queries=queries,
        expected=kernel.run_batch(queries),
        time_scale=SERVICE_S / per_batch_ns,
    )


def test_high_priority_p50_beats_low_under_saturation(cluster_workload):
    """EDF-within-priority dispatch: the urgent class's p50 latency wins."""
    compiler = cluster_workload["compiler"]
    queries = cluster_workload["queries"]
    cluster = Cluster(
        cluster_workload["spec"],
        max_batch=MAX_BATCH,
        max_wait=0.0,
        time_scale=cluster_workload["time_scale"],
    )
    cluster.admit(
        compiler.compile(
            _dot_model(cluster_workload["stored"]),
            [placeholder((1, DIMS))],
        ),
        tenant_id="t",
    )
    latencies = {"low": [], "high": []}

    def track(future, klass, submitted):
        future.add_done_callback(
            lambda _f: latencies[klass].append(
                time.perf_counter() - submitted
            )
        )
        return future

    with cluster:
        # Saturate with the low-priority flood first...
        low = [
            track(
                cluster.submit(q, tenant="t", priority=0),
                "low", time.perf_counter(),
            )
            for q in queries[:LOW_REQUESTS]
        ]
        # ...then drop urgent requests into the standing queue.
        high = [
            track(
                cluster.submit(q, tenant="t", priority=5, deadline=0.01),
                "high", time.perf_counter(),
            )
            for q in queries[LOW_REQUESTS:]
        ]
        for future in high + low:
            future.result(timeout=120)

    p50_low = float(np.percentile(latencies["low"], 50))
    p50_high = float(np.percentile(latencies["high"], 50))
    ratio = p50_low / p50_high
    print_series(
        f"mixed-priority cluster dispatch ({LOW_REQUESTS} low + "
        f"{HIGH_REQUESTS} high, {SERVICE_S * 1e3:.0f} ms service)",
        ["p50 ms", "p90 ms"],
        [
            ("low priority", [
                p50_low * 1e3,
                float(np.percentile(latencies["low"], 90)) * 1e3,
            ]),
            ("high priority", [
                p50_high * 1e3,
                float(np.percentile(latencies["high"], 90)) * 1e3,
            ]),
            ("p50 ratio", [ratio, ratio]),
        ],
    )
    assert ratio >= 2.0, (
        f"high-priority p50 only {ratio:.2f}x better under saturation"
    )


def test_autoscaler_engages_under_queue_pressure(cluster_workload):
    """Queue depth past the backlog threshold must grow the tenant's
    lanes; every result stays bitwise identical to the solo kernel."""
    compiler = cluster_workload["compiler"]
    queries = cluster_workload["queries"]
    expected_v, expected_i = cluster_workload["expected"]
    cluster = Cluster(
        cluster_workload["spec"],
        max_batch=MAX_BATCH,
        max_wait=0.0,
        time_scale=cluster_workload["time_scale"],
        autoscale_max_lanes=3,
        autoscale_backlog_rows=2 * MAX_BATCH,
    )
    cluster.admit(
        compiler.compile(
            _dot_model(cluster_workload["stored"]),
            [placeholder((1, DIMS))],
        ),
        tenant_id="t",
    )
    max_lanes_seen = 1
    with cluster:
        futures = [cluster.submit(q, tenant="t") for q in queries]
        while any(not f.done() for f in futures):
            max_lanes_seen = max(max_lanes_seen, cluster.tenant_lanes("t"))
            time.sleep(0.001)
        values = np.vstack([f.result(timeout=120)[0] for f in futures])
        indices = np.vstack([f.result(timeout=120)[1] for f in futures])
        max_lanes_seen = max(max_lanes_seen, cluster.tenant_lanes("t"))
        events = [e["action"] for e in cluster.autoscale_events]
    print(
        f"autoscaler: peak lanes {max_lanes_seen}, events {events}"
    )
    assert "scale-up" in events, "queue pressure never triggered scale-up"
    assert max_lanes_seen >= 2, "no extra lane was ever observed live"
    np.testing.assert_array_equal(values, expected_v)
    np.testing.assert_array_equal(indices, expected_i)
