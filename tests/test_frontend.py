"""Frontend tests: tracing mini-torch API and the graph importer."""

import numpy as np
import pytest

import repro.frontend.torch_api as torch
from repro.frontend import TraceError, import_graph, placeholder, trace
from repro.ir.printer import print_module
from repro.ir.types import TensorType, f32, i64
from repro.ir.verifier import verify


class TestTracing:
    def test_placeholder_shape(self):
        p = placeholder((4, 8))
        assert p.shape == (4, 8) and p.dtype == "f32"
        assert p.ndim == 2 and p.size(0) == 4 and p.size() == (4, 8)

    def test_transpose_shape(self):
        g = trace(lambda x: x.transpose(-2, -1), [placeholder((4, 8))])
        assert g.outputs[0].shape == (8, 4)

    def test_matmul_shape_and_error(self):
        g = trace(
            lambda a, b: torch.matmul(a, b),
            [placeholder((4, 8)), placeholder((8, 3))],
        )
        assert g.outputs[0].shape == (4, 3)
        with pytest.raises(TraceError):
            trace(
                lambda a, b: torch.matmul(a, b),
                [placeholder((4, 8)), placeholder((4, 3))],
            )

    def test_mm_requires_2d(self):
        with pytest.raises(TraceError):
            trace(lambda a: torch.mm(a, a), [placeholder((4,))])

    def test_operator_overloads(self):
        def fn(a, b):
            return (a - b) / b

        g = trace(fn, [placeholder((4, 8)), placeholder((4, 8))])
        assert [n.op for n in g.nodes] == ["sub", "div"]

    def test_norm_shapes(self):
        g = trace(lambda x: torch.norm(x, dim=-1), [placeholder((4, 8))])
        assert g.outputs[0].shape == (4,)
        g2 = trace(
            lambda x: torch.norm(x, dim=-1, keepdim=True), [placeholder((4, 8))]
        )
        assert g2.outputs[0].shape == (4, 1)

    def test_topk_returns_pair(self):
        g = trace(lambda x: torch.topk(x, 3), [placeholder((4, 10))])
        assert len(g.outputs) == 2
        assert g.outputs[0].shape == (4, 3)
        assert g.outputs[1].dtype == "i64"

    def test_topk_k_validation(self):
        with pytest.raises(TraceError):
            trace(lambda x: torch.topk(x, 11), [placeholder((4, 10))])

    def test_ops_aten_namespace(self):
        g = trace(
            lambda x: torch.ops.aten.topk(x, 1, largest=False),
            [placeholder((4, 10))],
        )
        assert g.nodes[-1].attrs["largest"] is False

    def test_broadcast_error(self):
        with pytest.raises(TraceError):
            trace(
                lambda a, b: a - b,
                [placeholder((4, 8)), placeholder((3,))],
            )

    def test_ops_outside_trace_rejected(self):
        p = placeholder((4, 8))
        with pytest.raises(TraceError):
            p.transpose(-2, -1)

    def test_module_parameters_captured(self):
        w = np.ones((10, 8), dtype=np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(w)

            def forward(self, x):
                return torch.matmul(x, self.weight.transpose(-2, -1))

        g = trace(M(), [placeholder((4, 8))])
        assert len(g.parameters) == 1
        assert np.array_equal(g.parameters[0].data, w)

    def test_non_tensor_return_rejected(self):
        with pytest.raises(TraceError):
            trace(lambda x: 42, [placeholder((2,))])

    def test_numpy_example_inputs(self):
        g = trace(lambda x: x.transpose(0, 1), [np.zeros((2, 3))])
        assert g.placeholders[0].shape == (2, 3)

    def test_nested_traces_isolated(self):
        def outer(x):
            g_inner = trace(lambda y: y.transpose(0, 1), [placeholder((2, 2))])
            assert len(g_inner.nodes) == 1
            return x.transpose(0, 1)

        g = trace(outer, [placeholder((3, 4))])
        assert len(g.nodes) == 1


class TestImporter:
    def test_signature(self):
        w = np.ones((10, 8), dtype=np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(w)

            def forward(self, x):
                return torch.matmul(x, self.weight.transpose(-2, -1))

        imported = import_graph(trace(M(), [placeholder((4, 8))]))
        verify(imported.module)
        fn = imported.func
        assert fn.function_type.inputs == (
            TensorType([4, 8], f32),
            TensorType([10, 8], f32),
        )
        assert imported.parameter_arrays[0] is w

    def test_paper_fig4b_structure(self, dot_kernel):
        w = np.ones((10, 64), dtype=np.float32)
        g = trace(dot_kernel(w, k=1, largest=False), [placeholder((10, 64))])
        imported = import_graph(g)
        names = [op.name for op in imported.func.body.operations]
        assert names == [
            "torch.aten.transpose.int",
            "torch.aten.mm",
            "torch.constant.int",
            "torch.aten.topk",
            "func.return",
        ]

    def test_matmul_picks_mm_for_2d(self):
        g = trace(
            lambda a, b: torch.matmul(a, b),
            [placeholder((2, 3)), placeholder((3, 2))],
        )
        imported = import_graph(g)
        assert any(
            op.name == "torch.aten.mm" for op in imported.func.body.operations
        )

    def test_euclidean_kernel_imports(self, euclidean_kernel):
        stored = np.ones((16, 32), dtype=np.float32)
        g = trace(euclidean_kernel(stored, k=3), [placeholder((32,))])
        imported = import_graph(g)
        verify(imported.module)
        names = [op.name for op in imported.func.body.operations]
        assert "torch.aten.sub" in names and "torch.aten.norm" in names

    def test_topk_indices_typed_i64(self):
        g = trace(lambda x: torch.topk(x, 2)[1], [placeholder((4, 10))])
        imported = import_graph(g)
        ret = imported.func.body.operations[-1]
        assert ret.operands[0].type == TensorType([4, 2], i64)

    def test_printable(self):
        g = trace(lambda x: x.transpose(0, 1), [placeholder((2, 3))])
        text = print_module(import_graph(g).module)
        assert "torch.aten.transpose.int" in text
