"""C4CAM end-to-end compiler driver.

Glues the whole flow of paper Fig. 3 together::

    TorchScript (mini-torch trace)
      └─ import_graph                 (PyTorch MLIR converter)
         └─ torch-to-cim              (per-op execute blocks)
            └─ cim-fuse-ops           (merge execute blocks)
               └─ cim-similarity-match (Algorithm 1)
                  └─ cim-partition    (compulsory partitioning plan)
                     └─ cim-to-cam    (bufferize + hierarchy mapping)
                        └─ Interpreter over a CamMachine (simulator)

Typical usage::

    from repro.compiler import C4CAMCompiler
    from repro.arch import paper_spec

    compiler = C4CAMCompiler(paper_spec(rows=32, cols=64))
    kernel = compiler.compile(model, example_inputs=[...])
    outputs = kernel(queries)
    print(kernel.last_report.summary())
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

import repro.dialects  # noqa: F401  (registers all dialects)
from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.frontend import import_graph, trace
from repro.frontend.torch_api import Graph, Tensor
from repro.ir.module import ModuleOp
from repro.ir.printer import print_module
from repro.passes.pass_manager import PassManager
from repro.runtime.executor import Interpreter
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport
from repro.transforms import (
    CimFuseOpsPass,
    CimPartitionPass,
    CimToCamPass,
    SimilarityMatchingPass,
    TorchToCimPass,
    resolve_optimization,
)

from repro.ir.context import load_all_dialects

load_all_dialects()


def build_pipeline(spec: ArchSpec, lower_to_cam: bool = True) -> PassManager:
    """The standard C4CAM pass pipeline for ``spec``."""
    config = resolve_optimization(spec)
    pm = PassManager()
    pm.add(TorchToCimPass())
    pm.add(CimFuseOpsPass())
    pm.add(SimilarityMatchingPass())
    pm.add(CimPartitionPass(spec, use_density=config.use_density))
    if lower_to_cam:
        pm.add(CimToCamPass(spec, config))
    return pm


class CompiledKernel:
    """A compiled, executable kernel bound to an architecture."""

    def __init__(
        self,
        module: ModuleOp,
        spec: ArchSpec,
        tech: TechnologyModel,
        parameters: Sequence[np.ndarray],
        func_name: str = "forward",
        uses_machine: bool = True,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
    ):
        self.module = module
        self.spec = spec
        self.tech = tech
        self.parameters = list(parameters)
        self.func_name = func_name
        self.uses_machine = uses_machine
        self.noise_sigma = noise_sigma
        self.noise_seed = noise_seed
        self.last_report: Optional[ExecutionReport] = None
        self.last_machine: Optional[CamMachine] = None

    def __call__(self, *inputs: np.ndarray) -> List[np.ndarray]:
        """Execute with fresh machine state; returns the kernel outputs.

        Captured module parameters (e.g. the stored patterns) are appended
        automatically, matching the traced signature.
        """
        machine = None
        if self.uses_machine:
            machine = CamMachine(
                self.spec,
                self.tech,
                noise_sigma=self.noise_sigma,
                noise_seed=self.noise_seed,
            )
        interpreter = Interpreter(self.module, machine)
        all_inputs = list(inputs) + self.parameters
        outputs, report = interpreter.run_function(self.func_name, all_inputs)
        self.last_report = report
        self.last_machine = machine
        return outputs

    def mlir(self) -> str:
        """The compiled module as textual IR."""
        return print_module(self.module)


class C4CAMCompiler:
    """The user-facing compiler: trace, lower, and execute on a CAM."""

    def __init__(self, spec: ArchSpec, tech: TechnologyModel = FEFET_45NM):
        self.spec = spec
        self.tech = tech

    def import_torchscript(self, fn: Callable, example_inputs) -> tuple:
        """Trace ``fn`` and import it to torch-dialect IR.

        Returns ``(module, parameter_arrays)``.
        """
        graph = fn if isinstance(fn, Graph) else trace(fn, example_inputs)
        imported = import_graph(graph)
        return imported.module, imported.parameter_arrays

    def compile(
        self,
        fn: Callable,
        example_inputs: Sequence[Tensor],
        lower_to_cam: bool = True,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
    ) -> CompiledKernel:
        """Full pipeline: trace → torch IR → cim → cam.

        With ``lower_to_cam=False`` the kernel stays at the cim level and
        executes on the host reference path (useful for validation).
        ``noise_sigma`` enables device-variation modeling: Gaussian
        sensing noise on every match-line score (accuracy studies).
        """
        module, params = self.import_torchscript(fn, example_inputs)
        pipeline = build_pipeline(self.spec, lower_to_cam=lower_to_cam)
        pipeline.run(module)
        return CompiledKernel(
            module,
            self.spec,
            self.tech,
            params,
            uses_machine=lower_to_cam,
            noise_sigma=noise_sigma,
            noise_seed=noise_seed,
        )

    def reference(
        self, fn: Callable, example_inputs: Sequence[Tensor]
    ) -> CompiledKernel:
        """The un-lowered torch-IR kernel (numpy golden model)."""
        module, params = self.import_torchscript(fn, example_inputs)
        return CompiledKernel(
            module, self.spec, self.tech, params, uses_machine=False
        )
