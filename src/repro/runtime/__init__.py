"""Runtime: the IR interpreter, batched query sessions, sharded
multi-machine sessions, the replicated async serving layer, multi-tenant
bank placement and host reference semantics."""

from . import values
from .autotune import AutotuneResult, Candidate, TrafficTrace, autotune
from .backend import ClusterShutdown, ExecutionBackend, LaneStats
from .cluster import Cluster
from .costmodel import (
    CostBreakdown,
    PlacementCost,
    TenantProfile,
    TrafficHint,
    profiles_from_reports,
)
from .executor import ExecutionError, Interpreter
from .placement import (
    MultiTenantSession,
    PlacementError,
    PlacementPlan,
    TenantAssignment,
    TenantDemand,
    TenantProgram,
    plan_placement,
    tenant_demand,
)
from .serving import ReplicatedSession, ServingEngine
from .session import QueryProgram, QuerySession, SessionError
from .sharding import (
    Shard,
    ShardedSession,
    ShardSet,
    aggregate_reports,
    build_shard_set,
    plan_shard_count,
    shard_sizes,
)

__all__ = [
    "AutotuneResult",
    "Candidate",
    "Cluster",
    "ClusterShutdown",
    "CostBreakdown",
    "ExecutionBackend",
    "ExecutionError",
    "Interpreter",
    "LaneStats",
    "MultiTenantSession",
    "PlacementCost",
    "PlacementError",
    "PlacementPlan",
    "QueryProgram",
    "QuerySession",
    "ReplicatedSession",
    "ServingEngine",
    "SessionError",
    "Shard",
    "ShardedSession",
    "ShardSet",
    "TenantAssignment",
    "TenantDemand",
    "TenantProfile",
    "TenantProgram",
    "TrafficHint",
    "TrafficTrace",
    "aggregate_reports",
    "autotune",
    "build_shard_set",
    "plan_shard_count",
    "plan_placement",
    "profiles_from_reports",
    "shard_sizes",
    "tenant_demand",
    "values",
]
