"""Pass management and pattern-rewrite infrastructure."""

from .pass_manager import FunctionPass, ModulePass, Pass, PassManager
from .rewrite import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)

__all__ = [
    "FunctionPass",
    "ModulePass",
    "Pass",
    "PassManager",
    "PatternRewriter",
    "RewritePattern",
    "apply_patterns_greedily",
]
