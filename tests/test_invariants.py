"""Cross-cutting invariants tying the compiler and simulator together."""

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec, validation_spec
from repro.baselines import run_manual_similarity
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.simulator import CamMachine


@pytest.fixture()
def hdc_inputs(rng):
    stored = rng.choice([-1.0, 1.0], (10, 1024)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (2, 1024)).astype(np.float32)
    return stored, queries


def run(dot_kernel, stored, queries, spec, **compile_kw):
    kernel = C4CAMCompiler(spec).compile(
        dot_kernel(stored, k=1, largest=True),
        [placeholder(queries.shape)],
        **compile_kw,
    )
    outputs = kernel(queries)
    return outputs, kernel.last_report


class TestEnergyAccounting:
    def test_components_sum_to_total(self, dot_kernel, hdc_inputs):
        stored, queries = hdc_inputs
        _out, rep = run(dot_kernel, stored, queries, paper_spec())
        e = rep.energy
        assert e.query_total == pytest.approx(
            e.search + e.read + e.merge + e.host + e.standby
        )
        assert e.total == pytest.approx(e.query_total + e.write)

    def test_energy_scales_with_queries(self, dot_kernel, hdc_inputs, rng):
        stored, _ = hdc_inputs
        q4 = rng.choice([-1.0, 1.0], (4, 1024)).astype(np.float32)
        _o1, r1 = run(dot_kernel, stored, q4[:1], paper_spec())
        # Recompile for the 4-query signature.
        kernel = C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored, k=1, largest=True), [placeholder((4, 1024))]
        )
        kernel(q4)
        r4 = kernel.last_report
        assert r4.energy.search == pytest.approx(4 * r1.energy.search)
        assert r4.energy.write == pytest.approx(r1.energy.write)

    def test_write_energy_independent_of_target(self, dot_kernel, hdc_inputs):
        stored, queries = hdc_inputs
        _o1, base = run(dot_kernel, stored, queries, dse_spec(32, "latency"))
        _o2, power = run(dot_kernel, stored, queries, dse_spec(32, "power"))
        assert base.energy.write == pytest.approx(power.energy.write)

    def test_search_count_matches_plan(self, dot_kernel, hdc_inputs):
        from repro.transforms import compute_partition_plan

        stored, queries = hdc_inputs
        spec = dse_spec(64)
        plan = compute_partition_plan(10, 1024, 2, spec, False)
        _out, rep = run(dot_kernel, stored, queries, spec)
        assert rep.searches == plan.subarrays * len(queries)


class TestLatencyInvariants:
    def test_latency_independent_of_data(self, dot_kernel, rng):
        """Timing is data-independent (searches are constant-time)."""
        reports = []
        for seed in (1, 2):
            r = np.random.default_rng(seed)
            stored = r.choice([-1.0, 1.0], (10, 512)).astype(np.float32)
            queries = r.choice([-1.0, 1.0], (1, 512)).astype(np.float32)
            _out, rep = run(dot_kernel, stored, queries, paper_spec())
            reports.append(rep.query_latency_ns)
        assert reports[0] == pytest.approx(reports[1])

    def test_setup_scales_with_subarrays(self, dot_kernel, hdc_inputs):
        stored, queries = hdc_inputs
        _o1, small = run(dot_kernel, stored, queries, dse_spec(64))
        _o2, large = run(dot_kernel, stored, queries, dse_spec(16))
        assert large.setup_latency_ns > small.setup_latency_ns

    def test_noise_does_not_change_timing(self, dot_kernel, hdc_inputs):
        stored, queries = hdc_inputs
        _o1, clean = run(dot_kernel, stored, queries, paper_spec())
        _o2, noisy = run(
            dot_kernel, stored, queries, paper_spec(), noise_sigma=2.0
        )
        assert clean.query_latency_ns == pytest.approx(noisy.query_latency_ns)
        assert clean.energy.query_total == pytest.approx(
            noisy.energy.query_total
        )


class TestCompilerManualAgreement:
    @pytest.mark.parametrize("cols", [16, 64])
    @pytest.mark.parametrize("bits", [1, 2])
    def test_same_machine_shape(self, dot_kernel, hdc_inputs, cols, bits):
        """Compiler and manual mapping allocate identical hierarchies."""
        stored, queries = hdc_inputs
        spec = validation_spec(cols, bits_per_cell=bits)
        _out, compiled = run(dot_kernel, stored, queries, spec)
        manual = run_manual_similarity(
            stored, queries, spec, k=1, metric="dot", largest=True
        ).report
        assert compiled.subarrays_used == manual.subarrays_used
        assert compiled.banks_used == manual.banks_used
        assert compiled.searches == manual.searches

    def test_same_dynamic_energy_components(self, dot_kernel, hdc_inputs):
        """Search energy (pure device physics) agrees exactly; only the
        aggregation conventions differ (Fig. 7's small deviations)."""
        stored, queries = hdc_inputs
        spec = validation_spec(32)
        _out, compiled = run(dot_kernel, stored, queries, spec)
        manual = run_manual_similarity(
            stored, queries, spec, k=1, metric="dot", largest=True
        ).report
        assert compiled.energy.search == pytest.approx(manual.energy.search)
        assert compiled.energy.read == pytest.approx(manual.energy.read)


class TestMachineConsistency:
    def test_allocation_counts_consistent(self):
        spec = paper_spec()
        m = CamMachine(spec)
        for _ in range(2):
            bank = m.alloc_bank()
            for _ in range(2):
                mat = m.alloc_mat(bank)
                arr = m.alloc_array(mat)
                m.alloc_subarray(arr)
        assert m.banks_used == 2
        assert m.mats_used == 4
        assert m.arrays_used == 4
        assert m.subarrays_used == 4

    def test_area_additive(self):
        spec = paper_spec()
        m1 = CamMachine(spec)
        m1.alloc_subarray(m1.alloc_array(m1.alloc_mat(m1.alloc_bank())))
        single = m1.chip_area_mm2()
        m2 = CamMachine(spec)
        arr = m2.alloc_array(m2.alloc_mat(m2.alloc_bank()))
        m2.alloc_subarray(arr)
        m2.alloc_subarray(arr)
        assert m2.chip_area_mm2() > single

    def test_standby_duty_only_for_power_targets(self):
        for target, expected_duty in (("latency", 1.0), ("density", 1.0)):
            m = CamMachine(paper_spec(optimization_target=target))
            arr = m.alloc_array(m.alloc_mat(m.alloc_bank()))
            for _ in range(8):
                m.alloc_subarray(arr)
            assert m.standby_duty() == expected_duty


class TestMutationInvariants:
    """Invariants of the mutable-store layer (live insert/delete/update
    with tombstones, compaction and growth)."""

    FEATURES = 8

    @staticmethod
    def _spec(banks=None):
        """Analog cells so dot scores are true dot products (see
        test_mutation_differential)."""
        from dataclasses import replace

        spec = paper_spec(rows=8, cols=8, cam_type="acam")
        return spec if banks is None else replace(spec, banks=banks)

    def _kernel(self, stored, k=2, spec=None, **kw):
        return C4CAMCompiler(spec or self._spec()).compile(
            self._model(stored, k),
            [placeholder((1, self.FEATURES))],
            **kw,
        )

    def _model(self, stored, k):
        import repro.frontend.torch_api as torch

        class DotSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(
                    np.asarray(stored, dtype=np.float32)
                )

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                return torch.ops.aten.topk(matmul, k, largest=True)

        return DotSimilarity()

    def _machine_valid_rows(self, session):
        machine = session.machine
        return sum(
            machine.subarray(sub).valid_rows
            for sub in machine._subarrays
        )

    def test_valid_rows_conserved_across_compaction(self, rng):
        """Compaction moves rows, it never creates or destroys them:
        the machine-wide valid-bit count equals the live pattern count
        before and after (one column tile here, so 1 valid row ≡ 1
        pattern)."""
        stored = rng.standard_normal((12, self.FEATURES)).astype(np.float32)
        kernel = self._kernel(stored)
        session = kernel.session()
        assert self._machine_valid_rows(session) == 12
        kernel.delete([1, 4, 9])
        assert self._machine_valid_rows(session) == kernel.pattern_count == 9
        kernel.insert(
            rng.standard_normal((2, self.FEATURES)).astype(np.float32)
        )
        assert self._machine_valid_rows(session) == kernel.pattern_count == 11
        moved = kernel.compact()
        assert moved > 0
        assert self._machine_valid_rows(session) == kernel.pattern_count == 11
        assert kernel.compact() == 0, "second compaction must be a no-op"
        assert self._machine_valid_rows(session) == 11

    def test_no_bank_overlap_after_repack(self, rng):
        """After a growth-triggered defragmenting re-placement, placed
        tenants occupy disjoint bank ranges on every machine."""
        from repro.runtime.cluster import Cluster

        spec = self._spec(banks=4)
        stored = [
            rng.standard_normal((n, self.FEATURES)).astype(np.float32)
            for n in (10, 8, 8)
        ]
        cluster = Cluster(spec, max_machines=4)
        try:
            for i, data in enumerate(stored):
                cluster.admit(
                    self._kernel(data, spec=spec), tenant_id=f"t{i}"
                )
            defrags = cluster.defrag_count
            for _ in range(200):
                cluster.insert(
                    rng.standard_normal(self.FEATURES).astype(np.float32),
                    tenant="t0",
                )
                if cluster.defrag_count > defrags:
                    break
            assert cluster.defrag_count > defrags
            by_machine = {}
            for tenant in cluster._tenants.values():
                if tenant.kind != "placed":
                    continue
                rec = tenant.lanes[0]
                by_machine.setdefault(rec.machine_index, []).append(
                    (rec.bank_offset, rec.bank_offset + rec.banks)
                )
            assert by_machine, "no placed tenants after re-pack"
            for machine_index, ranges in by_machine.items():
                ranges.sort()
                for (_, end), (start, _) in zip(ranges, ranges[1:]):
                    assert end <= start, (
                        f"bank overlap on machine {machine_index}: {ranges}"
                    )
        finally:
            cluster.shutdown()

    def test_tombstoned_rows_never_in_topk(self, rng):
        """A deleted row must vanish from results even when it would
        dominate the ranking: its match-line score may still exist
        physically, but the valid mask keeps it out of every top-k."""
        stored = rng.standard_normal((8, self.FEATURES)).astype(np.float32)
        kernel = self._kernel(stored, k=2)
        query = rng.standard_normal((1, self.FEATURES)).astype(np.float32)
        # A dominating pattern: its dot product beats every other row.
        dominator = (100.0 * query[0]).astype(np.float32)
        [gid] = kernel.insert(dominator)
        values, indices = kernel.run_batch(query)
        top_value = float(values[0, 0])
        assert int(indices[0, 0]) == kernel.pattern_count - 1
        kernel.delete([gid])
        values, indices = kernel.run_batch(query)
        assert float(values[0, 0]) < top_value, (
            "tombstoned dominator still surfaces in top-k"
        )
        assert np.all(indices < kernel.pattern_count)

    def test_single_row_mutation_cheaper_than_reprogram(self, rng):
        """Incremental programming: one insert/update/delete charges
        per-touched-row write energy, strictly less than re-programming
        the store from scratch."""
        stored = rng.standard_normal((12, self.FEATURES)).astype(np.float32)
        kernel = self._kernel(stored)
        session = kernel.session()
        full_energy = session.setup_energy_pj
        full_rows = session.rows_written
        assert full_rows >= 12
        for mutate in (
            lambda: kernel.insert(
                rng.standard_normal(self.FEATURES).astype(np.float32)
            ),
            lambda: kernel.update(
                0, rng.standard_normal(self.FEATURES).astype(np.float32)
            ),
            lambda: kernel.delete([kernel.row_ids()[-1]]),
        ):
            energy_before = session.setup_energy_pj
            rows_before = session.rows_written
            mutate()
            delta_energy = session.setup_energy_pj - energy_before
            delta_rows = session.rows_written - rows_before
            assert 0 < delta_rows < full_rows
            assert 0 < delta_energy < full_energy
