"""WTA sensing, importer/executor edge cases and error paths."""

import numpy as np
import pytest

import repro.frontend.torch_api as torch
from repro.arch import paper_spec
from repro.arch.technology import TechnologyModel
from repro.compiler import C4CAMCompiler
from repro.frontend import import_graph, placeholder, trace
from repro.simulator import CamMachine


class TestWtaSensing:
    def test_ideal_adc_exact_values(self):
        m = CamMachine(paper_spec())
        values, idx, _d = m.select_topk(np.array([9.0, 1.0, 5.0]), 3, False)
        assert values.tolist() == [1.0, 5.0, 9.0]

    def test_wta_window_clamps_far_values(self):
        tech = TechnologyModel(wta_window=2)
        m = CamMachine(paper_spec(), tech)
        values, idx, _d = m.select_topk(np.array([9.0, 1.0, 5.0]), 3, False)
        # Indices stay correct; distant values clamp to winner + window.
        assert idx.tolist() == [1, 2, 0]
        assert values.max() <= 1.0 + 2

    def test_wta_preserves_top1(self, dot_kernel, rng):
        """Top-1 classification is unaffected by a WTA window."""
        stored = rng.choice([-1.0, 1.0], (8, 128)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 128)).astype(np.float32)
        tech = TechnologyModel(wta_window=4)
        kernel = C4CAMCompiler(paper_spec(), tech).compile(
            dot_kernel(stored, k=1, largest=True), [placeholder((4, 128))]
        )
        _v, idx = kernel(queries)
        expected = (queries @ stored.T).argmax(axis=1)
        np.testing.assert_array_equal(idx.ravel(), expected)


class TestImporterEdges:
    def test_unreachable_tensor_rejected(self):
        from repro.frontend.torch_api import Graph, Node, Tensor

        graph = Graph()
        stray = Tensor((2, 2), "f32", kind="placeholder")  # not registered
        graph.outputs = [stray]
        with pytest.raises(ValueError, match="not reachable"):
            import_graph(graph)

    def test_unsupported_node_rejected(self):
        from repro.frontend.torch_api import Graph, Node, Tensor

        graph = Graph()
        ph = Tensor((2, 2), "f32", kind="placeholder")
        graph.placeholders = [ph]
        node = Node("conv2d", [ph], {}, [(2, 2)], ["f32"])
        graph.add_node(node)
        out = Tensor((2, 2), "f32", node=node)
        graph.outputs = [out]
        with pytest.raises(ValueError, match="unsupported traced op"):
            import_graph(graph)

    def test_custom_function_name(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
        imported = import_graph(
            trace(dot_kernel(stored), [placeholder((1, 32))]),
            name="similarity_kernel",
        )
        assert imported.func.sym_name == "similarity_kernel"
        assert imported.module.lookup_symbol("similarity_kernel") is not None


class TestExecutorEdges:
    def test_missing_function(self):
        from repro.ir.module import ModuleOp
        from repro.runtime.executor import ExecutionError, Interpreter

        with pytest.raises(ExecutionError, match="no function"):
            Interpreter(ModuleOp()).run_function("nope", [])

    def test_argument_count_checked(self, dot_kernel, rng):
        from repro.runtime.executor import ExecutionError, Interpreter

        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
        m = import_graph(
            trace(dot_kernel(stored), [placeholder((1, 32))])
        ).module
        with pytest.raises(ExecutionError, match="arguments"):
            Interpreter(m).run_function("forward", [])

    def test_nested_parallel_timing(self):
        """parallel{parallel{search}} joins at one phase latency."""
        from repro.dialects import arith as arith_d
        from repro.dialects import cam as cam_d
        from repro.dialects import func as func_d
        from repro.dialects import memref as memref_d
        from repro.dialects import scf as scf_d
        from repro.ir import ModuleOp, OpBuilder
        from repro.ir.types import FunctionType, MemRefType, f32
        from repro.runtime.executor import Interpreter

        spec = paper_spec()
        m = ModuleOp()
        f = func_d.FuncOp("main", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        machine = CamMachine(spec)
        bank = b.create(
            cam_d.AllocBankOp,
            b.create(arith_d.ConstantOp, 32).result,
            b.create(arith_d.ConstantOp, 32).result,
        )
        mat = b.create(cam_d.AllocMatOp, bank.result)
        qbuf = b.create(memref_d.AllocOp, MemRefType([1, 32], f32))
        for _ in range(2):
            arr = b.create(cam_d.AllocArrayOp, mat.result)
            for _ in range(2):
                s = b.create(cam_d.AllocSubarrayOp, arr.result)
                d = b.create(memref_d.AllocOp, MemRefType([2, 32], f32))
                b.create(cam_d.WriteValueOp, s.result, d.result)
        c0 = b.create(arith_d.ConstantOp, 0)
        c2 = b.create(arith_d.ConstantOp, 2)
        c1 = b.create(arith_d.ConstantOp, 1)
        outer = b.create(scf_d.ParallelOp, c0.result, c2.result, c1.result)
        ob = OpBuilder.at_end(outer.body)
        inner = ob.create(scf_d.ParallelOp, c0.result, c2.result, c1.result)
        ib = OpBuilder.at_end(inner.body)
        lin = ib.create(arith_d.MulIOp, outer.induction_var, c2.result)
        lin2 = ib.create(arith_d.AddIOp, lin.result, inner.induction_var)
        ref = ib.create(cam_d.SubarrayRefOp, lin2.result)
        ib.create(cam_d.SearchOp, ref.result, qbuf.result)
        ib.create(scf_d.YieldOp, [])
        ob.create(scf_d.YieldOp, [])
        b.create(func_d.ReturnOp, [])
        _out, report = Interpreter(m, machine).run_function("main", [])
        one_phase = machine.tech.search_phase_latency(spec)
        assert report.query_latency_ns == pytest.approx(one_phase)

    def test_empty_loop_body_zero_time(self):
        from repro.dialects import arith as arith_d
        from repro.dialects import func as func_d
        from repro.dialects import scf as scf_d
        from repro.ir import ModuleOp, OpBuilder
        from repro.ir.types import FunctionType
        from repro.runtime.executor import Interpreter

        m = ModuleOp()
        f = func_d.FuncOp("main", FunctionType([], []))
        m.append(f)
        b = OpBuilder.at_end(f.body)
        c0 = b.create(arith_d.ConstantOp, 0)
        c9 = b.create(arith_d.ConstantOp, 9)
        c1 = b.create(arith_d.ConstantOp, 1)
        loop = b.create(scf_d.ForOp, c0.result, c9.result, c1.result)
        OpBuilder.at_end(loop.body).create(scf_d.YieldOp, [])
        b.create(func_d.ReturnOp, [])
        machine = CamMachine(paper_spec())
        _out, report = Interpreter(m, machine).run_function("main", [])
        assert report.query_latency_ns == 0.0


class TestTracerEdges:
    def test_tensor_api_repr(self):
        t = placeholder((2, 3))
        assert "shape=(2, 3)" in repr(t)

    def test_trace_with_kwargs_unsupported_types(self):
        with pytest.raises(Exception):
            trace(lambda x: torch.matmul(x, "nope"), [placeholder((2, 2))])

    def test_parameter_reuse_across_traces(self, rng):
        """One Module instance traced twice registers its parameter in
        both graphs."""
        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, x):
                return torch.matmul(x, self.weight.transpose(-2, -1))

        mod = M()
        g1 = trace(mod, [placeholder((1, 32))])
        g2 = trace(mod, [placeholder((2, 32))])
        assert len(g1.parameters) == 1
        assert len(g2.parameters) == 1
