#!/usr/bin/env python
"""Quickstart: compile the paper's HDC dot-similarity kernel to a CAM.

Walks the exact flow of paper Fig. 3/4/5: a TorchScript-style kernel is
traced, imported to torch-dialect IR, progressively lowered through the
cim and cam abstractions, and executed on the simulated FeFET CAM.

Run:  python examples/quickstart.py

Expected output: the torch- and cim-dialect IR dumps, then the CAM
execution summary (predicted classes ``[5, 7, 8, 7]``, per-query
latency/energy, 8 subarrays in 1 bank) ending with
``matches the host reference: OK``.
"""

import numpy as np

import repro.frontend.torch_api as torch
from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler, build_pipeline
from repro.frontend import import_graph, placeholder, trace
from repro.ir import print_module


class DotSimilarity(torch.Module):
    """Paper Fig. 4a: HDC dot-similarity with top-1 selection."""

    def __init__(self, weight):
        self.weight = torch.tensor(weight)

    def forward(self, input):
        others = self.weight.transpose(-2, -1)
        matmul = torch.matmul(input, others)
        values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
        return values, indices


def main():
    rng = np.random.default_rng(0)
    classes, dims, queries = 10, 512, 4
    prototypes = rng.choice([-1.0, 1.0], (classes, dims)).astype(np.float32)
    query_hvs = rng.choice([-1.0, 1.0], (queries, dims)).astype(np.float32)

    model = DotSimilarity(prototypes)
    example = [placeholder((queries, dims))]

    # -- Stage 1: the torch-dialect IR the frontend produces (Fig. 4b).
    graph = trace(model, example)
    imported = import_graph(graph)
    print("=== torch IR (frontend output) ===")
    print(print_module(imported.module))

    # -- Stage 2: progressive lowering to the cim abstraction (Fig. 5).
    spec = paper_spec(rows=32, cols=64)
    module = imported.module.clone()
    pipeline = build_pipeline(spec, lower_to_cam=False)
    pipeline.run(module)
    print("\n=== cim IR (fused similarity with partition plan) ===")
    print(print_module(module))

    # -- Stage 3: compile all the way to cam + execute on the simulator.
    compiler = C4CAMCompiler(spec)
    kernel = compiler.compile(model, example)
    values, indices = kernel(query_hvs)
    report = kernel.last_report

    print("\n=== execution on the simulated CAM ===")
    print("predicted classes:", indices.ravel().tolist())
    print(f"per-query latency: {report.query_latency_ns / queries:.2f} ns")
    print(f"per-query energy:  {report.energy.query_total / queries:.1f} pJ")
    print(f"subarrays used:    {report.subarrays_used} "
          f"({report.banks_used} bank(s))")

    # Cross-check against the numpy reference path.
    reference = compiler.reference(model, example)
    _, ref_idx = reference(query_hvs)
    assert np.array_equal(indices.ravel(), ref_idx.ravel())
    print("matches the host reference: OK")


if __name__ == "__main__":
    main()
