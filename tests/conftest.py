"""Shared fixtures: dialect registration and small reusable kernels."""

import numpy as np
import pytest

from repro.ir.context import load_all_dialects

load_all_dialects()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture()
def dot_kernel():
    """A factory for the paper's Fig. 4a dot-similarity kernel."""
    import repro.frontend.torch_api as torch

    def make(prototypes, k=1, largest=True):
        class DotSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(prototypes)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                values, indices = torch.ops.aten.topk(
                    matmul, k, largest=largest
                )
                return values, indices

        return DotSimilarity()

    return make


@pytest.fixture()
def euclidean_kernel():
    """A factory for the Euclidean (sub→norm→topk) kernel."""
    import repro.frontend.torch_api as torch

    def make(stored, k=1):
        class EuclideanKNN(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, query):
                diff = torch.sub(query, self.weight)
                dist = torch.norm(diff, p=2, dim=-1)
                values, indices = torch.ops.aten.topk(dist, k, largest=False)
                return values, indices

        return EuclideanKNN()

    return make
