"""Aggregate machine view over a group of :class:`CamMachine`\\ s.

Sharded, replicated and multi-tenant sessions all present the same
duck-typed read-only machine interface spanning several physical
machines, so the analysis helpers
(:func:`repro.simulator.analysis.utilization`, ``format_report``) work
on a whole deployment exactly as on one machine.  The host class only
has to provide ``machines`` (the flat list of physical machines) and a
``_group_noun`` for diagnostics.
"""

from __future__ import annotations


class MachineGroupView:
    """Read-only counters and area spanning ``self.machines``."""

    #: What to call the group in diagnostics ("shard set", "fleet", ...).
    _group_noun = "machine group"

    @property
    def machine(self):
        """The aggregate machine view (``self``), duck-typed for the
        analysis helpers — counters and area span every machine."""
        return self

    @property
    def banks_used(self) -> int:
        return sum(m.banks_used for m in self.machines)

    @property
    def mats_used(self) -> int:
        return sum(m.mats_used for m in self.machines)

    @property
    def arrays_used(self) -> int:
        return sum(m.arrays_used for m in self.machines)

    @property
    def subarrays_used(self) -> int:
        return sum(m.subarrays_used for m in self.machines)

    def subarray(self, linear: int):
        """Subarray state by global linear index across the machines."""
        for machine in self.machines:
            if linear < machine.subarrays_used:
                return machine.subarray(linear)
            linear -= machine.subarrays_used
        raise KeyError(f"no subarray {linear} in the {self._group_noun}")

    def chip_area_mm2(self) -> float:
        """Total silicon across all machines (areas add)."""
        return sum(m.chip_area_mm2() for m in self.machines)
