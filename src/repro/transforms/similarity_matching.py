"""Similarity pattern matching — the paper's Algorithm 1.

Examines ``cim.execute`` bodies and checks whether their operation count
and dataflow match one of three predefined similarity patterns:

* **dot product**:  ``transpose → matmul → topk``   (4 ops incl. yield)
* **Euclidean**:    ``sub → norm → topk``           (4 ops incl. yield)
* **cosine**:       ``norm, norm, transpose → matmul → div``  (6 ops)

Matching blocks are rewritten to the fused ``cim.similarity`` (dot /
euclidean, returning top-k values+indices) or ``cim.score`` (cosine,
returning the full similarity matrix) operation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dialects import cim as cim_d
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation
from repro.ir.value import BlockArgument, Value
from repro.passes.pass_manager import FunctionPass


class SimilarityMatchingPass(FunctionPass):
    """Rewrite execute bodies matching Algorithm 1's patterns."""

    NAME = "cim-similarity-match"

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.body.operations):
            if isinstance(op, cim_d.ExecuteOp):
                match_similarity(op)


def match_similarity(execute: cim_d.ExecuteOp) -> Optional[str]:
    """Algorithm 1's ``SimilarityMatching`` for one execute op.

    Returns the matched metric name (and rewrites the body) or None.
    """
    op_list = list(execute.body.operations)
    op_size = len(op_list)
    if op_size == 4:
        return (
            _match_dot_product(execute, op_list)
            or _match_euclidean(execute, op_list)
        )
    if op_size == 6:
        return _match_cosine(execute, op_list)
    return None


def _match_dot_product(
    execute: cim_d.ExecuteOp, ops: List[Operation]
) -> Optional[str]:
    """DotProdSimPattern: transpose -> matmul(v1) -> topk(v2)."""
    names = [op.name for op in ops]
    if names != ["cim.transpose", "cim.matmul", "cim.topk", "cim.yield"]:
        return None
    transpose, matmul, topk, yld = ops
    # Dataflow: matmul consumes the transpose; topk consumes the matmul.
    if transpose.result not in matmul.operands:
        return None
    if matmul.operands[1] is not transpose.result:
        return None
    if topk.operands[0] is not matmul.result:
        return None
    if not _yield_matches(yld, topk.results):
        return None
    stored = _origin(transpose.operands[0])
    query = _origin(matmul.operands[0])
    k_value = topk.operands[1]
    if stored is None or query is None:
        return None
    _rewrite(
        execute, "dot", stored, query, k_value,
        k_static=topk.attributes["k"].value,
        largest=topk.attributes["largest"].value,
    )
    return "dot"


def _match_euclidean(
    execute: cim_d.ExecuteOp, ops: List[Operation]
) -> Optional[str]:
    """EuclNormPattern: sub -> norm(v1) -> topk(v2)."""
    names = [op.name for op in ops]
    if names != ["cim.sub", "cim.norm", "cim.topk", "cim.yield"]:
        return None
    sub, norm, topk, yld = ops
    if norm.operands[0] is not sub.result:
        return None
    if topk.operands[0] is not norm.result:
        return None
    if not _yield_matches(yld, topk.results):
        return None
    # Identify roles: the stored patterns are the rank-2 (P×D) operand;
    # the query is the broadcast (D,) or (1×D) operand.
    a = _origin(sub.operands[0])
    b = _origin(sub.operands[1])
    if a is None or b is None:
        return None
    if a.type.rank > b.type.rank:
        stored, query = a, b
    elif b.type.rank > a.type.rank:
        stored, query = b, a
    elif a.type.shape[0] >= b.type.shape[0]:
        stored, query = a, b
    else:
        stored, query = b, a
    _rewrite(
        execute, "euclidean", stored, query, topk.operands[1],
        k_static=topk.attributes["k"].value,
        largest=topk.attributes["largest"].value,
    )
    return "euclidean"


def _match_cosine(
    execute: cim_d.ExecuteOp, ops: List[Operation]
) -> Optional[str]:
    """CosSimPattern: norm, norm, transpose -> matmul(v3) -> div(v4,v2,v1)."""
    names = sorted(op.name for op in ops[:-1])
    expected = sorted(
        ["cim.norm", "cim.norm", "cim.transpose", "cim.matmul", "cim.div"]
    )
    if names != expected or ops[-1].name != "cim.yield":
        return None
    by_name: Dict[str, List[Operation]] = {}
    for op in ops[:-1]:
        by_name.setdefault(op.name, []).append(op)
    (matmul,) = by_name["cim.matmul"]
    (transpose,) = by_name["cim.transpose"]
    (div,) = by_name["cim.div"]
    if matmul.operands[1] is not transpose.result:
        return None
    # div numerator must be the matmul; its divisor chain must come from
    # the two norms (any association of the norm product).
    if div.operands[0] is not matmul.result:
        return None
    stored = _origin(transpose.operands[0])
    query = _origin(matmul.operands[0])
    if stored is None or query is None:
        return None
    yld = ops[-1]
    if list(yld.operands) != [div.result]:
        return None
    # Rewrite to cim.score cosine (full Q×P similarity matrix).
    builder = OpBuilder.before(yld)
    score = builder.create(cim_d.ScoreOp, "cosine", stored, query)
    yld.set_operand(0, score.result)
    for op in reversed(ops[:-1]):
        if not any(r.has_uses for r in op.results):
            op.erase()
    return "cosine"


def _yield_matches(yld: Operation, results: List[Value]) -> bool:
    """The yield must forward (a subset of) the final op's results."""
    return all(v in results for v in yld.operands) and len(yld.operands) > 0


def _origin(value: Value) -> Optional[Value]:
    """Map a body value back to the corresponding block argument."""
    return value if isinstance(value, BlockArgument) else None


def _rewrite(
    execute: cim_d.ExecuteOp,
    metric: str,
    stored: Value,
    query: Value,
    k_value: Value,
    k_static: int,
    largest: bool,
) -> None:
    """Replace the matched body with a single ``cim.similarity``."""
    yld = execute.body.terminator
    yielded = list(yld.operands)
    builder = OpBuilder.before(yld)
    old_ops = [op for op in execute.body.operations if op is not yld]
    topk = next(op for op in old_ops if op.name == "cim.topk")
    sim = builder.create(
        cim_d.SimilarityOp,
        metric,
        stored,
        query,
        k_value,
        k_static=k_static,
        largest=largest,
        result_types=[r.type for r in topk.results],
    )
    old_ops = [op for op in old_ops if op is not sim]
    replacement = {
        id(topk.results[0]): sim.results[0],
        id(topk.results[1]): sim.results[1],
    }
    for i, v in enumerate(yielded):
        yld.set_operand(i, replacement.get(id(v), v))
    for op in reversed(old_ops):
        if not any(r.has_uses for r in op.results):
            op.erase()
