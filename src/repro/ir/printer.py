"""Textual IR printer (generic MLIR-like syntax).

The printer emits the *generic* operation form, which the companion
:mod:`repro.ir.parser` can parse back, giving lossless round-trips::

    %0 = "torch.aten.mm"(%arg0, %1) : (tensor<10x8192xf32>, ...) -> tensor<10x10xf32>

Regions print inline::

    %5 = "cim.execute"(%4, %2) ({
    ^bb0(%arg1: tensor<10x8192xf32>):
      ...
      "cim.yield"(%11) : (tensor<8192x10xf32>) -> ()
    }) : (!cim.device, tensor<10x8192xf32>) -> tensor<8192x10xf32>
"""

from __future__ import annotations

from typing import Dict, List

from .block import Block, Region
from .operation import Operation
from .value import BlockArgument, Value


class _Printer:
    def __init__(self):
        self.names: Dict[int, str] = {}
        self.next_value = 0
        self.next_arg = 0
        self.next_block = 0
        self.lines: List[str] = []

    def name_of(self, value: Value) -> str:
        key = id(value)
        if key not in self.names:
            if isinstance(value, BlockArgument):
                self.names[key] = f"%arg{self.next_arg}"
                self.next_arg += 1
            else:
                self.names[key] = f"%{self.next_value}"
                self.next_value += 1
        return self.names[key]

    def block_label(self, block: Block) -> str:
        label = f"^bb{self.next_block}"
        self.next_block += 1
        return label

    def print_op(self, op: Operation, indent: int) -> None:
        pad = "  " * indent
        parts = []
        if op.results:
            parts.append(", ".join(self.name_of(r) for r in op.results))
            parts.append(" = ")
        parts.append(f'"{op.name}"')
        parts.append("(")
        parts.append(", ".join(self.name_of(v) for v in op.operands))
        parts.append(")")
        header = pad + "".join(parts)
        if op.regions:
            header += " ("
            self.lines.append(header + "{")
            for i, region in enumerate(op.regions):
                if i > 0:
                    self.lines.append(pad + "}, {")
                self.print_region(region, indent + 1)
            tail = pad + "})"
        else:
            self.lines.append(header)
            tail = self.lines.pop()
        if op.attributes:
            attrs = ", ".join(
                f"{k} = {v}" for k, v in sorted(op.attributes.items())
            )
            tail += " {" + attrs + "}"
        in_types = ", ".join(str(v.type) for v in op.operands)
        out_types = ", ".join(str(r.type) for r in op.results)
        if len(op.results) == 1:
            sig = f"({in_types}) -> {op.results[0].type}"
        else:
            sig = f"({in_types}) -> ({out_types})"
        tail += f" : {sig}"
        self.lines.append(tail)

    def print_region(self, region: Region, indent: int) -> None:
        pad = "  " * indent
        for bi, block in enumerate(region.blocks):
            if bi > 0 or block.arguments:
                args = ", ".join(
                    f"{self.name_of(a)}: {a.type}" for a in block.arguments
                )
                self.lines.append(f"{pad[:-2]}{self.block_label(block)}({args}):")
            for op in block.operations:
                self.print_op(op, indent)


def print_operation(op: Operation) -> str:
    """Render ``op`` (and everything nested in it) as text."""
    printer = _Printer()
    printer.print_op(op, 0)
    return "\n".join(printer.lines)


def print_module(module: Operation) -> str:
    """Render a module; alias of :func:`print_operation` for readability."""
    return print_operation(module)
