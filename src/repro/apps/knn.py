"""K-nearest neighbours on CAM (paper §IV-A3).

KNN stores the entire training set in the CAM and finds the K closest
patterns per query — the best-match search CAMs excel at.  The paper runs
KNN on Pneumonia chest X-rays; Table II reports EDP and power across
subarray sizes for the cam-based and cam-power configurations.

The stored set is padded to the subarray row granularity (see
:func:`repro.apps.datasets.pad_rows`) and the Euclidean kernel of
Algorithm 1 (``sub → norm → topk``) is used for single-query search.

Training sets larger than one bank-capped machine still work: compile
the kernel with ``num_shards`` (or rely on auto-shard-on-overflow) and
:meth:`KNNModel.classify_cam` streams through the kernel's
:class:`~repro.runtime.sharding.ShardedSession` unchanged — neighbour
indices come back as global training-set rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.frontend.torch_api as torch
from repro.frontend import placeholder

from .datasets import Dataset, pad_features, pad_rows


@dataclass
class KNNModel:
    """A CAM-resident KNN classifier."""

    train_x: np.ndarray   # padded P×D stored patterns
    train_y: np.ndarray   # padded labels
    n_valid: int          # patterns before padding
    k: int

    @property
    def patterns(self) -> int:
        return self.train_x.shape[0]

    @property
    def features(self) -> int:
        return self.train_x.shape[1]

    def kernel(self):
        """Single-query Euclidean KNN kernel (Algorithm 1's EuclNorm)."""
        stored = self.train_x
        k = self.k

        class EuclideanKNN(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, query):
                diff = torch.sub(query, self.weight)
                dist = torch.norm(diff, p=2, dim=-1)
                values, indices = torch.ops.aten.topk(dist, k, largest=False)
                return values, indices

        example = [placeholder((self.features,))]
        return EuclideanKNN(), example

    def vote(self, neighbour_indices: np.ndarray) -> int:
        """Majority vote over neighbour labels for one query."""
        labels = self.train_y[np.asarray(neighbour_indices).reshape(-1)]
        return int(np.bincount(labels).argmax())

    def classify_cam(
        self, kernel, queries: np.ndarray
    ) -> np.ndarray:
        """Classify a ``B×D`` query matrix on the CAM.

        ``kernel`` is the compiled single-query kernel (see
        :meth:`kernel`); the whole matrix streams through its cached
        query session in one batched run (patterns are programmed once;
        a kernel compiled with ``num_shards`` fans out across its shard
        machines transparently), then each query's neighbours are
        majority-voted.
        """
        queries = np.atleast_2d(np.asarray(queries))
        _values, indices = kernel.run_batch(queries)
        return np.array(
            [self.vote(row) for row in indices], dtype=np.int64
        )

    def classify_reference(self, queries: np.ndarray) -> np.ndarray:
        """Golden-model KNN classification."""
        out = np.empty(len(queries), dtype=np.int64)
        stored = self.train_x.astype(np.float64)
        for i, q in enumerate(queries.astype(np.float64)):
            dist = np.sqrt(((stored - q) ** 2).sum(axis=1))
            nearest = np.argsort(dist, kind="stable")[: self.k]
            out[i] = self.vote(nearest)
        return out


def build_knn(
    dataset: Dataset,
    k: int = 5,
    feature_multiple: int = 256,
    row_multiple: int = 256,
) -> KNNModel:
    """Prepare a KNN model padded for CAM tiling.

    ``feature_multiple``/``row_multiple`` should be multiples of the
    largest subarray dimension being swept so one model serves the whole
    design-space exploration.
    """
    x = pad_features(dataset.train_x, feature_multiple)
    x, y, n_valid = pad_rows(x, dataset.train_y, row_multiple)
    return KNNModel(train_x=x, train_y=y, n_valid=n_valid, k=k)
