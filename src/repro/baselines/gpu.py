"""GPU baseline: an analytic cost model of the paper's measurement setup.

The paper measures a PyTorch int32 HDC implementation on an NVIDIA Quadro
RTX 6000 (16 nm), reading power from ``nvidia-smi`` and deriving energy.
Offline we reproduce that role with a roofline model: per-batch kernel
time is the max of compute and memory time plus a launch overhead, and
energy is the sustained board power times time.

The headline ratios the paper reports (CAM 48× faster, 46.8× less energy
end-to-end) land in the same decade with the public RTX 6000 numbers and
typical inference batch sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GpuModel:
    """Roofline + launch-overhead model of one GPU."""

    name: str = "Quadro RTX 6000"
    peak_flops: float = 16.3e12       # FP32/int32 throughput
    mem_bandwidth: float = 672e9      # bytes/s (GDDR6)
    sustained_power_w: float = 120.0  # nvidia-smi reading under this load
    # Per-kernel cost of PyTorch eager dispatch + launch: the paper runs
    # the PyTorch implementation directly, whose per-op overhead is tens
    # of microseconds.
    launch_overhead_s: float = 15e-6
    kernels_per_batch: int = 2        # matmul + topk
    element_bytes: int = 4            # int32/fp32

    def batch_time_s(self, patterns: int, features: int, batch: int) -> float:
        """Wall time of one similarity batch (matmul + topk)."""
        flops = 2.0 * patterns * features * batch
        data = (
            patterns * features          # stored matrix (streamed)
            + batch * features           # queries
            + 2 * batch * patterns       # scores written + read for topk
        ) * self.element_bytes
        compute = flops / self.peak_flops
        memory = data / self.mem_bandwidth
        return max(compute, memory) + self.kernels_per_batch * self.launch_overhead_s

    def query_latency_ns(
        self, patterns: int, features: int, batch: int = 64
    ) -> float:
        """Amortized per-query latency (ns) at a given batch size."""
        return self.batch_time_s(patterns, features, batch) / batch * 1e9

    def query_energy_pj(
        self, patterns: int, features: int, batch: int = 64
    ) -> float:
        """Amortized per-query energy (pJ)."""
        t = self.batch_time_s(patterns, features, batch) / batch
        return self.sustained_power_w * t * 1e12

    def run_similarity(
        self, stored: np.ndarray, queries: np.ndarray, k: int, largest: bool
    ):
        """Functionally execute the kernel (numpy) with GPU-model costs.

        Returns ``(values, indices, latency_ns, energy_pj)`` for the whole
        query batch.
        """
        scores = queries.astype(np.float64) @ stored.T.astype(np.float64)
        order = np.argsort(-scores if largest else scores, axis=1, kind="stable")
        idx = order[:, :k]
        values = np.take_along_axis(scores, idx, axis=1)
        batch = len(queries)
        t_ns = self.batch_time_s(*stored.shape, batch) * 1e9
        e_pj = self.sustained_power_w * (t_ns * 1e-9) * 1e12
        return values, idx.astype(np.int64), t_ns, e_pj


QUADRO_RTX_6000 = GpuModel()
