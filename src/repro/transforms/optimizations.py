"""Built-in optimization configurations (paper §III-D2 and §IV-C).

C4CAM tunes the mapping for one of four targets:

* **latency** (*cam-base*): maximize parallel-executing subarrays —
  every hierarchy level runs in parallel;
* **power** (*cam-power*): enable only one subarray per array at a time —
  the subarray loop serializes, trading latency for lower peak power;
* **density** (*cam-density*): selective row search stacks several column
  tiles per subarray, reducing the subarrays (and banks) required
  (Table I) at the cost of sequential batch cycles;
* **power+density**: both of the above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.arch.spec import LEVELS, ArchSpec

from .partitioning import compute_partition_plan


@dataclass(frozen=True)
class MappingConfig:
    """Resolved mapping knobs for the cam-map pass."""

    modes: Dict[str, str]   # hierarchy level -> parallel | sequential
    use_density: bool

    def mode(self, level: str) -> str:
        return self.modes[level]


def resolve_optimization(spec: ArchSpec) -> MappingConfig:
    """Translate a spec's optimization target into mapping knobs.

    Starts from the spec's per-level access modes; the power targets force
    the subarray level to sequential (one active subarray per array).
    """
    modes = {level: spec.mode(level) for level in LEVELS}
    target = spec.optimization_target
    if target in ("power", "power+density"):
        modes["subarray"] = "sequential"
    use_density = target in ("density", "power+density")
    return MappingConfig(modes=modes, use_density=use_density)


def subarrays_required(
    patterns: int, features: int, spec: ArchSpec, use_density: bool
) -> int:
    """Subarray count for a similarity kernel (reproduces Table I)."""
    plan = compute_partition_plan(patterns, features, 1, spec, use_density)
    return plan.subarrays


def cam_search_metric(cim_metric: str, spec: ArchSpec) -> tuple:
    """Map a cim similarity metric to the device search metric.

    Returns ``(metric, flip_order)``.  Binary/ternary CAMs realise a
    bit-wise Hamming distance; for binary-encoded data both dot product
    (descending) and Euclidean distance (ascending) rank identically to
    Hamming distance (ascending), so the compiler substitutes ``hamming``
    and flips the selection order where needed.  Multi-bit and analog
    CAMs support dot/euclidean natively.
    """
    if spec.cam_type in ("bcam", "tcam"):
        if cim_metric == "dot":
            return "hamming", True   # dot largest <-> hamming smallest
        if cim_metric in ("euclidean", "cosine"):
            return "hamming", False
        raise ValueError(f"unsupported metric for {spec.cam_type}: {cim_metric}")
    if spec.cam_type == "mcam":
        if cim_metric in ("dot", "cosine"):
            return "dot", False
        return "euclidean", False
    # acam
    if cim_metric == "dot":
        return "dot", False
    return "euclidean", False
