"""Batched query sessions and the single-query-path fixes they exposed.

Covers the QuerySession subsystem (program-once / query-many, batched
vectorized execution, amortized reporting) plus regression tests for:

* exact-match false positives on similarity metrics;
* correlated device noise across repeated kernel calls;
* latched-score placement with holes in the valid-row mask;
* zero-query executions reporting a phantom query.
"""

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.session import SessionError
from repro.simulator import CamMachine, SubarrayState
from repro.simulator.cells import perfect_score
from repro.simulator.peripherals import best_match, best_match_batch, exact_match


def compile_dot(dot_kernel, stored, shape, k=1, largest=True, **kw):
    return C4CAMCompiler(kw.pop("spec", paper_spec())).compile(
        dot_kernel(stored, k=k, largest=largest), [placeholder(shape)], **kw
    )


# --------------------------------------------------------------------------
# Batch vs sequential functional equivalence
# --------------------------------------------------------------------------
class TestBatchEquivalence:
    @pytest.mark.parametrize("target", [
        "latency", "power", "density", "power+density",
    ])
    def test_dot_matches_sequential(self, dot_kernel, rng, target):
        """run_batch(Q) is bitwise == stacking run(q) for q in Q (HDC)."""
        stored = rng.choice([-1.0, 1.0], (10, 512)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (6, 512)).astype(np.float32)
        spec = dse_spec(32, target)
        batched = compile_dot(dot_kernel, stored, (1, 512), k=3, spec=spec)
        legacy = compile_dot(
            dot_kernel, stored, (1, 512), k=3, spec=spec,
            cache_session=False,
        )
        bv, bi = batched.run_batch(queries)
        sv, si = zip(*(legacy(q[None, :]) for q in queries))
        np.testing.assert_array_equal(bi, np.vstack(si))
        np.testing.assert_array_equal(bv, np.vstack(sv))

    def test_euclidean_knn_matches_sequential(self, euclidean_kernel, rng):
        """The 1-D-traced KNN kernel accepts query matrices via the
        session and matches per-query execution."""
        stored = rng.standard_normal((48, 64)).astype(np.float32)
        queries = rng.standard_normal((5, 64)).astype(np.float32)
        spec = paper_spec(rows=16, cols=32, cam_type="acam")
        kernel = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=5), [placeholder((64,))]
        )
        legacy = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=5), [placeholder((64,))],
            cache_session=False,
        )
        bv, bi = kernel.run_batch(queries)
        for row, q in enumerate(queries):
            v, i = legacy(q)
            np.testing.assert_array_equal(bi[row], i.reshape(-1))
            np.testing.assert_array_equal(bv[row], v.reshape(-1))

    def test_multi_row_tiles_and_partial_last_tile(self, dot_kernel, rng):
        """Vertical partitioning with a ragged last row tile stays
        correct under batching."""
        stored = rng.choice([-1.0, 1.0], (42, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
        spec = paper_spec(rows=16, cols=32)
        kernel = compile_dot(dot_kernel, stored, (1, 64), k=4, spec=spec)
        _v, idx = kernel.run_batch(queries)
        expected = np.argsort(
            -(queries.astype(np.float64) @ stored.T.astype(np.float64)),
            axis=1, kind="stable",
        )[:, :4]
        np.testing.assert_array_equal(idx, expected)

    def test_call_delegates_to_session(self, dot_kernel, rng):
        """__call__ streams through the cached session: the machine is
        programmed once and survives across calls."""
        stored = rng.choice([-1.0, 1.0], (8, 128)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (3, 128)).astype(np.float32)
        kernel = compile_dot(dot_kernel, stored, (3, 128))
        kernel(queries)
        first_machine = kernel.last_machine
        kernel(queries)
        assert kernel.last_machine is first_machine
        # Arbitrary batch sizes are accepted (not only the traced 3).
        _v, idx = kernel(queries[:2])
        assert idx.shape == (2, 1)

    def test_reset_reprograms(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (8, 128)).astype(np.float32)
        kernel = compile_dot(dot_kernel, stored, (1, 128))
        kernel(stored[:1])
        first_machine = kernel.last_machine
        kernel.reset()
        kernel(stored[:1])
        assert kernel.last_machine is not first_machine

    def test_reordered_outputs_fall_back_to_interpreter(self, rng):
        """A model returning (indices, values) must not be rerouted
        through the session's canonical (values, indices) program."""
        import repro.frontend.torch_api as torch

        stored = rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)

        class Reordered(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, x):
                others = self.weight.transpose(-2, -1)
                values, indices = torch.ops.aten.topk(
                    torch.matmul(x, others), 1, largest=True
                )
                return indices, values

        queries = rng.choice([-1.0, 1.0], (2, 64)).astype(np.float32)
        cached = C4CAMCompiler(paper_spec()).compile(
            Reordered(), [placeholder((2, 64))]
        )
        legacy = C4CAMCompiler(paper_spec()).compile(
            Reordered(), [placeholder((2, 64))], cache_session=False
        )
        ci, cv = cached(queries)
        li, lv = legacy(queries)
        np.testing.assert_array_equal(ci, li)
        np.testing.assert_array_equal(cv, lv)
        assert ci.dtype == np.int64
        with pytest.raises(SessionError, match="values, indices"):
            cached.run_batch(queries)

    def test_session_requires_lowered_kernel(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        host = C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored), [placeholder((1, 64))], lower_to_cam=False
        )
        with pytest.raises(SessionError):
            host.run_batch(stored[:2])


# --------------------------------------------------------------------------
# Amortized timing / energy semantics
# --------------------------------------------------------------------------
class TestBatchReports:
    def test_setup_charged_once(self, dot_kernel, rng):
        """A 64-query batch charges write energy once and its query
        clock is 64x the structural per-query latency."""
        stored = rng.choice([-1.0, 1.0], (10, 256)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (64, 256)).astype(np.float32)
        kernel = compile_dot(dot_kernel, stored, (1, 256))
        kernel.run_batch(queries[:1])
        rep1 = kernel.last_report
        kernel.run_batch(queries)
        rep64 = kernel.last_report
        assert rep64.queries == 64
        assert rep64.energy.write == rep1.energy.write
        assert rep64.setup_latency_ns == rep1.setup_latency_ns
        assert rep64.query_latency_ns == pytest.approx(
            64 * rep1.query_latency_ns
        )
        assert rep64.energy.search == pytest.approx(64 * rep1.energy.search)
        assert rep64.throughput_qps == pytest.approx(rep1.throughput_qps)

    def test_report_matches_legacy_per_call(self, dot_kernel, rng):
        """Session per-batch accounting equals the legacy fresh-machine
        report for the same queries."""
        stored = rng.choice([-1.0, 1.0], (10, 256)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 256)).astype(np.float32)
        session_k = compile_dot(dot_kernel, stored, (4, 256))
        legacy_k = compile_dot(
            dot_kernel, stored, (4, 256), cache_session=False
        )
        session_k(queries)
        legacy_k(queries)
        srep, lrep = session_k.last_report, legacy_k.last_report
        assert srep.queries == lrep.queries == 4
        assert srep.query_latency_ns == pytest.approx(lrep.query_latency_ns)
        assert srep.setup_latency_ns == pytest.approx(lrep.setup_latency_ns)
        assert srep.energy.query_total == pytest.approx(
            lrep.energy.query_total
        )
        assert srep.searches == lrep.searches
        assert srep.subarrays_used == lrep.subarrays_used

    def test_throughput_qps_guard(self):
        from repro.simulator.metrics import ExecutionReport

        assert ExecutionReport().throughput_qps == 0.0
        rep = ExecutionReport(query_latency_ns=100.0, queries=10)
        assert rep.throughput_qps == pytest.approx(10 / 100e-9)


# --------------------------------------------------------------------------
# Satellite regressions
# --------------------------------------------------------------------------
class TestExactMatchRegression:
    def test_no_false_positive_on_best_row(self):
        """The best-scoring row is not an 'exact' match unless it
        reaches the metric's perfect score."""
        query = np.array([1.0, -1.0, 1.0, 1.0])
        stored = np.array([
            [1.0, -1.0, 1.0, -1.0],   # 1 mismatch: dot = 2
            [-1.0, 1.0, -1.0, -1.0],  # all mismatch: dot = -4
        ])
        scores = stored @ query
        perfect = perfect_score("dot", query)
        assert perfect == pytest.approx(4.0)
        matches = exact_match(scores, prefers_larger=True,
                              perfect_score=perfect)
        assert matches.tolist() == [False, False]

    def test_true_positive_still_matches(self):
        query = np.array([1.0, -1.0])
        stored = np.vstack([query, -query])
        scores = stored @ query
        matches = exact_match(scores, prefers_larger=True,
                              perfect_score=perfect_score("dot", query))
        assert matches.tolist() == [True, False]

    def test_over_perfect_score_is_not_exact(self):
        """A larger-magnitude stored row can out-score the query's
        self-similarity on unnormalized dot — still not an exact match."""
        query = np.array([1.0, 1.0])
        stored = np.array([[2.0, 2.0], [1.0, 1.0]])
        scores = stored @ query          # [4.0, 2.0], perfect = 2.0
        matches = exact_match(scores, prefers_larger=True,
                              perfect_score=perfect_score("dot", query))
        assert matches.tolist() == [False, True]

    def test_distance_semantics_unchanged(self):
        scores = np.array([0.0, 3.0])
        assert exact_match(scores, prefers_larger=False).tolist() == \
            [True, False]


class TestNoiseDecorrelation:
    def _kernel(self, dot_kernel, stored, sigma=4.0, seed=7, **kw):
        return C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored, k=1, largest=True),
            [placeholder((1, stored.shape[1]))],
            noise_sigma=sigma, noise_seed=seed, **kw,
        )

    def test_calls_see_fresh_noise(self, dot_kernel, rng):
        """Repeated Monte-Carlo trials draw independent realizations."""
        stored = rng.choice([-1.0, 1.0], (6, 128)).astype(np.float32)
        q = stored[:1]
        kernel = self._kernel(dot_kernel, stored)
        v1, _ = kernel(q)
        v2, _ = kernel(q)
        assert not np.array_equal(v1, v2)

    def test_legacy_path_also_decorrelates(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (6, 128)).astype(np.float32)
        kernel = self._kernel(dot_kernel, stored, cache_session=False)
        v1, _ = kernel(stored[:1])
        v2, _ = kernel(stored[:1])
        assert not np.array_equal(v1, v2)

    def test_explicit_seed_reproducible(self, dot_kernel, rng):
        """Same noise_seed -> same call-by-call realizations."""
        stored = rng.choice([-1.0, 1.0], (6, 128)).astype(np.float32)
        q = stored[:1]
        runs = []
        for _ in range(2):
            kernel = self._kernel(dot_kernel, stored, seed=11)
            runs.append([kernel(q)[0], kernel(q)[0]])
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        np.testing.assert_array_equal(runs[0][1], runs[1][1])


class TestSparseValidRows:
    def test_latched_placement_with_hole(self):
        """Scores land at their physical rows: a hole in the valid mask
        must not shift later rows' scores upward."""
        sub = SubarrayState(rows=8, cols=4, subarray_id=0)
        sub.write(np.array([[1.0, 1.0, 1.0, 1.0],
                            [1.0, 1.0, -1.0, -1.0]]), row_offset=0)
        sub.write(np.array([[-1.0, -1.0, -1.0, -1.0]]), row_offset=5)
        query = np.array([-1.0, -1.0, -1.0, -1.0])
        sub.search(query, "hamming", row_begin=0, row_count=8)
        values, indices = sub.read(8)
        # Row 5 holds the query itself: distance 0 at physical row 5.
        assert values[5] == 0.0
        assert values[0] == 4.0 and values[1] == 2.0
        # Unwritten rows cannot report a (spurious) best match.
        assert np.isinf(values[2]) and np.isinf(values[3])
        best = int(np.argmin(values))
        assert best == 5
        assert indices[best] == 5

    def test_machine_read_maps_to_stored_pattern(self):
        machine = CamMachine(paper_spec(rows=8, cols=4))
        sub = machine.alloc_subarray(
            machine.alloc_array(machine.alloc_mat(machine.alloc_bank()))
        )
        machine.write_value(sub, np.ones((2, 4)), row_offset=0)
        machine.write_value(sub, -np.ones((2, 4)), row_offset=4)
        machine.search(sub, -np.ones(4), metric="hamming")
        values, indices, _d = machine.read(sub, 6)
        assert values[4] == 0.0 and values[5] == 0.0
        assert int(np.argmin(values)) in (4, 5)

    def test_accumulate_slots_unchanged(self):
        """Stacked (density) accumulation still uses compact slots."""
        sub = SubarrayState(rows=8, cols=4, subarray_id=0)
        sub.write(np.ones((2, 4)), row_offset=0)
        sub.write(np.ones((2, 4)) * -1.0, row_offset=2)
        sub.search(np.ones(4), "hamming", row_begin=0, row_count=2,
                   accumulate=True)
        sub.search(np.ones(4), "hamming", row_begin=2, row_count=2,
                   accumulate=True)
        values, _ = sub.read(2)
        assert values.tolist() == [4.0, 4.0]


class TestZeroQueryReports:
    def test_setup_only_walk_reports_zero_queries(self):
        from repro.dialects import cam as cam_d
        from repro.dialects import func as func_d
        from repro.dialects import memref as memref_d
        from repro.dialects import arith as arith_d
        from repro.ir.builder import OpBuilder
        from repro.ir.module import ModuleOp
        from repro.ir.types import FunctionType, MemRefType, f32
        from repro.runtime.executor import Interpreter

        module = ModuleOp()
        fn = func_d.FuncOp("forward", FunctionType([], []))
        module.append(fn)
        fb = OpBuilder.at_end(fn.body)
        bank = fb.create(cam_d.AllocBankOp,
                         fb.create(arith_d.ConstantOp, 32).result,
                         fb.create(arith_d.ConstantOp, 32).result)
        arr = fb.create(cam_d.AllocArrayOp,
                        fb.create(cam_d.AllocMatOp, bank.result).result)
        sub = fb.create(cam_d.AllocSubarrayOp, arr.result)
        buf = fb.create(memref_d.AllocOp, MemRefType([4, 32], f32))
        fb.create(cam_d.WriteValueOp, sub.result, buf.result)
        fb.create(func_d.ReturnOp, [])
        machine = CamMachine(paper_spec())
        _out, report = Interpreter(module, machine).run_function(
            "forward", []
        )
        assert report.queries == 0
        assert report.per_query_latency_ns == 0.0
        assert report.per_query_energy_pj == 0.0
        assert report.throughput_qps == 0.0


class TestBatchedExecutorHandlers:
    @staticmethod
    def _batched_module(n_queries):
        """A hand-built cam-IR program whose buffers carry a query-batch
        axis: cam.search takes the whole B×C query block, cam.read
        returns a B×rows latch bank, cam.merge_partial, cam.sync and
        cam.select_topk operate per query — one interpreter walk answers
        the full batch."""
        from repro.dialects import arith as arith_d
        from repro.dialects import cam as cam_d
        from repro.dialects import func as func_d
        from repro.dialects import memref as memref_d
        from repro.ir.builder import OpBuilder
        from repro.ir.module import ModuleOp
        from repro.ir.types import (
            FunctionType, MemRefType, TensorType, f32, i64,
        )

        B = n_queries
        m = ModuleOp()
        fn = func_d.FuncOp("main", FunctionType(
            [TensorType([4, 16], f32), TensorType([B, 16], f32)],
            [TensorType([B, 2], f32), TensorType([B, 2], i64)],
        ))
        m.append(fn)
        b = OpBuilder.at_end(fn.body)
        stored_arg, query_arg = fn.body.arguments
        c32 = b.create(arith_d.ConstantOp, 32).result
        bank = b.create(cam_d.AllocBankOp, c32, c32).result
        arr = b.create(cam_d.AllocArrayOp,
                       b.create(cam_d.AllocMatOp, bank).result).result
        sub = b.create(cam_d.AllocSubarrayOp, arr).result
        stored_buf = b.create(memref_d.ToMemrefOp, stored_arg).result
        query_buf = b.create(memref_d.ToMemrefOp, query_arg).result
        b.create(cam_d.WriteValueOp, sub, stored_buf)
        b.create(cam_d.QueryStartOp)
        b.create(cam_d.SearchOp, sub, query_buf,
                 search_type="best", metric="hamming",
                 row_count=4)
        scores = b.create(memref_d.AllocOp, MemRefType([B, 4], f32)).result
        b.create(memref_d.FillOp, scores, 0.0)
        read = b.create(cam_d.ReadOp, sub, 4, f32)
        b.create(cam_d.MergePartialOp, scores, read.results[0],
                 direction="horizontal", row_offset=0)
        b.create(cam_d.SyncOp, "array", rows=4)
        vbuf = b.create(memref_d.AllocOp, MemRefType([B, 2], f32)).result
        ibuf = b.create(memref_d.AllocOp, MemRefType([B, 2], i64)).result
        b.create(cam_d.SelectTopkOp, scores, 2, False, vbuf, ibuf)
        values = b.create(memref_d.ToTensorOp, vbuf,
                          TensorType([B, 2], f32)).result
        indices = b.create(memref_d.ToTensorOp, ibuf,
                           TensorType([B, 2], i64)).result
        b.create(func_d.ReturnOp, [values, indices])
        return m

    def test_batched_cam_ir_walk(self, rng):
        from repro.runtime.executor import Interpreter

        patterns = rng.choice([0.0, 1.0], (4, 16))
        queries = rng.choice([0.0, 1.0], (3, 16))
        machine = CamMachine(paper_spec())
        out, report = Interpreter(
            self._batched_module(3), machine
        ).run_function("main", [patterns, queries])
        dist = (patterns[None, :, :] != queries[:, None, :]).sum(axis=-1)
        expected_idx = np.argsort(dist, axis=1, kind="stable")[:, :2]
        np.testing.assert_array_equal(out[1], expected_idx)
        np.testing.assert_array_equal(
            out[0], np.take_along_axis(dist.astype(np.float64),
                                       expected_idx, axis=1)
        )
        # One streamed batch: 3 queries through one search phase, and
        # the report counts the batch rows, not the query_start ops.
        assert report.searches == 3
        assert report.queries == 3
        assert report.per_query_latency_ns == pytest.approx(
            report.query_latency_ns / 3
        )

    def test_batched_walk_scales_like_single(self, rng):
        """Every device hop of the batched walk (search, read, merge,
        sync, top-k) streams B queries; only the front-end setup
        (cam.query_start) is paid once per batch — the amortization."""
        from repro.runtime.executor import Interpreter

        patterns = rng.choice([0.0, 1.0], (4, 16))
        queries = rng.choice([0.0, 1.0], (3, 16))
        reports = {}
        machine = None
        for n in (1, 3):
            machine = CamMachine(paper_spec())
            _out, reports[n] = Interpreter(
                self._batched_module(n), machine
            ).run_function("main", [patterns, queries[:n]])
        frontend = machine.frontend_latency()
        device_time = reports[1].query_latency_ns - frontend
        assert reports[3].query_latency_ns == pytest.approx(
            3 * device_time + frontend
        )
        # Dynamic energy is per streamed query (query_start costs no
        # energy); standby scales with the (shorter) batch makespan.
        for component in ("search", "read", "merge", "host"):
            assert getattr(reports[3].energy, component) == pytest.approx(
                3 * getattr(reports[1].energy, component)
            )


class TestBatchChunking:
    def test_chunked_scores_bitwise_equal(self, rng):
        """Batches beyond BATCH_CHUNK are scored in chunks with results
        identical to per-row scoring."""
        from repro.simulator.cells import BATCH_CHUNK, compute_scores

        stored = rng.standard_normal((8, 16))
        queries = rng.standard_normal((BATCH_CHUNK + 44, 16))
        for metric in ("hamming", "euclidean", "dot"):
            got = compute_scores(metric, stored, queries)
            assert got.shape == (BATCH_CHUNK + 44, 8)
            rows = np.vstack([
                compute_scores(metric, stored, q) for q in queries
            ])
            np.testing.assert_array_equal(got, rows)

    def test_large_batch_session(self, dot_kernel, rng):
        """A serving-scale batch (> BATCH_CHUNK) runs end to end."""
        from repro.simulator.cells import BATCH_CHUNK

        stored = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
        queries = rng.choice(
            [-1.0, 1.0], (BATCH_CHUNK + 10, 64)
        ).astype(np.float32)
        kernel = compile_dot(dot_kernel, stored, (1, 64))
        _v, idx = kernel.run_batch(queries)
        expected = (
            queries.astype(np.float64) @ stored.T.astype(np.float64)
        ).argmax(axis=1)
        np.testing.assert_array_equal(idx.ravel(), expected)
        assert kernel.last_report.queries == BATCH_CHUNK + 10


class TestBatchedPeripherals:
    def test_best_match_batch_rowwise_identical(self, rng):
        scores = rng.integers(-8, 8, (16, 40)).astype(np.float64)
        for wta in (0, 3):
            for largest in (True, False):
                bi, bv = best_match_batch(
                    scores, 5, prefers_larger=largest, wta_window=wta
                )
                for row in range(scores.shape[0]):
                    si, sv = best_match(
                        scores[row], 5, prefers_larger=largest,
                        wta_window=wta,
                    )
                    np.testing.assert_array_equal(bi[row], si)
                    np.testing.assert_array_equal(bv[row], sv)


class TestBatchedApps:
    def test_knn_classify_cam(self, rng):
        from repro.apps import build_knn, synthetic_pneumonia

        dataset = synthetic_pneumonia(n_train=56, n_test=6)
        knn = build_knn(dataset, k=3, feature_multiple=64, row_multiple=64)
        model, example = knn.kernel()
        kernel = C4CAMCompiler(
            paper_spec(rows=32, cols=32, cam_type="acam")
        ).compile(model, example)
        from repro.apps.datasets import pad_features

        queries = pad_features(dataset.test_x, 64)
        predicted = knn.classify_cam(kernel, queries)
        expected = knn.classify_reference(queries)
        np.testing.assert_array_equal(predicted, expected)

    def test_hdc_classify_cam(self, rng):
        from repro.apps import synthetic_mnist, train_hdc

        dataset = synthetic_mnist(n_train=64, n_test=8)
        model = train_hdc(dataset, dimensions=1024, bits=1)
        kernel_model, example = model.kernel(n_queries=1)
        kernel = C4CAMCompiler(paper_spec()).compile(kernel_model, example)
        predicted = model.classify_cam(kernel, dataset.test_x)
        expected = model.classify_reference(
            model.encode_queries(dataset.test_x)
        )
        np.testing.assert_array_equal(predicted, expected)

    def test_matcher_lookup_batch(self, rng):
        from repro.apps.matching import PatternMatcher

        patterns = rng.choice([0.0, 1.0], (9, 32))
        matcher = PatternMatcher(patterns, paper_spec(rows=16, cols=32))
        queries = np.vstack([patterns[4], 1.0 - patterns[4], patterns[7]])
        batch = matcher.lookup_batch(queries, threshold=0.0)
        assert len(batch) == 3
        singles = [
            PatternMatcher(patterns, paper_spec(rows=16, cols=32)).lookup(q)
            for q in queries
        ]
        for got, want in zip(batch, singles):
            np.testing.assert_array_equal(got.indices, want.indices)
            np.testing.assert_array_equal(got.distances, want.distances)
        assert matcher.report().queries == 3
