"""Type system for the mini-MLIR IR.

Types are immutable, hashable value objects.  Structural equality is used
everywhere (two ``TensorType([2, 3], f32)`` instances compare equal), which
mirrors MLIR's type uniquing without requiring a context-owned uniquer.

The set of types mirrors what the C4CAM lowering pipeline needs:

* scalar types: ``IndexType``, ``IntegerType``, ``FloatType``, ``BoolType``
* shaped types: ``TensorType`` (value semantics, used by torch/cim dialects)
  and ``MemRefType`` (buffer semantics, used after bufferization by the cam
  dialect)
* opaque device-handle types used by the ``cim``/``cam`` dialects:
  ``DeviceHandleType`` and ``CamIdType`` (bank/mat/array/subarray ids)
"""

from __future__ import annotations

from typing import Sequence, Tuple


class Type:
    """Base class of all IR types.

    Subclasses must be immutable and implement ``__eq__``/``__hash__`` (the
    default implementations compare the ``_key`` tuple) and ``__str__`` using
    MLIR-like spellings so the printer/parser can round-trip them.
    """

    def _key(self) -> tuple:
        return (type(self),)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Type) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self})"


class IndexType(Type):
    """Platform-sized integer used for loop bounds and sizes (``index``)."""

    def __str__(self) -> str:
        return "index"


class IntegerType(Type):
    """Fixed-width signless integer, e.g. ``i32``, ``i64``."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"integer width must be positive, got {width}")
        self.width = int(width)

    def _key(self) -> tuple:
        return (IntegerType, self.width)

    def __str__(self) -> str:
        return f"i{self.width}"


class FloatType(Type):
    """IEEE float of a given width, e.g. ``f32``, ``f64``."""

    def __init__(self, width: int):
        if width not in (16, 32, 64):
            raise ValueError(f"unsupported float width: {width}")
        self.width = int(width)

    def _key(self) -> tuple:
        return (FloatType, self.width)

    def __str__(self) -> str:
        return f"f{self.width}"


class BoolType(Type):
    """1-bit boolean (printed ``i1`` like MLIR)."""

    def __str__(self) -> str:
        return "i1"


class NoneType(Type):
    """Unit type for ops that produce no meaningful value (``none``)."""

    def __str__(self) -> str:
        return "none"


DYNAMIC = -1
"""Sentinel for a dynamic dimension in a shaped type (printed ``?``)."""


class ShapedType(Type):
    """Common base for tensor and memref types."""

    def __init__(self, shape: Sequence[int], element_type: Type):
        shape = tuple(int(d) for d in shape)
        for d in shape:
            if d < 0 and d != DYNAMIC:
                raise ValueError(f"invalid dimension {d}")
        if not isinstance(element_type, Type) or isinstance(element_type, ShapedType):
            raise ValueError(f"invalid element type: {element_type!r}")
        self.shape: Tuple[int, ...] = shape
        self.element_type = element_type

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def has_static_shape(self) -> bool:
        """True when no dimension is dynamic."""
        return all(d != DYNAMIC for d in self.shape)

    def num_elements(self) -> int:
        """Total element count; raises for dynamic shapes."""
        if not self.has_static_shape:
            raise ValueError(f"type {self} has dynamic shape")
        n = 1
        for d in self.shape:
            n *= d
        return n

    def _key(self) -> tuple:
        return (type(self), self.shape, self.element_type)

    def _shape_str(self) -> str:
        dims = "x".join("?" if d == DYNAMIC else str(d) for d in self.shape)
        return f"{dims}x" if dims else ""


class TensorType(ShapedType):
    """Immutable value-semantics tensor, e.g. ``tensor<10x8192xf32>``."""

    def __str__(self) -> str:
        return f"tensor<{self._shape_str()}{self.element_type}>"


class MemRefType(ShapedType):
    """Mutable buffer reference, e.g. ``memref<10x32xf32>``."""

    def __str__(self) -> str:
        return f"memref<{self._shape_str()}{self.element_type}>"


class FunctionType(Type):
    """Signature of a function: ``(inputs...) -> (results...)``."""

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]):
        self.inputs: Tuple[Type, ...] = tuple(inputs)
        self.results: Tuple[Type, ...] = tuple(results)

    def _key(self) -> tuple:
        return (FunctionType, self.inputs, self.results)

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        if len(self.results) == 1:
            return f"({ins}) -> {self.results[0]}"
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


class DeviceHandleType(Type):
    """Opaque handle to an acquired CIM device (``!cim.device``)."""

    def __str__(self) -> str:
        return "!cim.device"


class CamIdType(Type):
    """Identifier of one level of the CAM hierarchy.

    ``level`` is one of ``bank``, ``mat``, ``array``, ``subarray`` and the
    type prints as e.g. ``!cam.bank_id``.
    """

    LEVELS = ("bank", "mat", "array", "subarray")

    def __init__(self, level: str):
        if level not in self.LEVELS:
            raise ValueError(f"invalid CAM hierarchy level: {level!r}")
        self.level = level

    def _key(self) -> tuple:
        return (CamIdType, self.level)

    def __str__(self) -> str:
        return f"!cam.{self.level}_id"


# Commonly used singleton-ish instances (structural equality makes sharing
# these purely a convenience).
index = IndexType()
i1 = BoolType()
i8 = IntegerType(8)
i32 = IntegerType(32)
i64 = IntegerType(64)
f16 = FloatType(16)
f32 = FloatType(32)
f64 = FloatType(64)
none = NoneType()


def parse_type(text: str) -> Type:
    """Parse a type from its MLIR spelling.

    Supports every spelling produced by ``str(type)``; used by the textual
    parser for round-tripping.
    """
    text = text.strip()
    if text == "index":
        return index
    if text == "none":
        return none
    if text == "i1":
        return i1
    if text == "!cim.device":
        return DeviceHandleType()
    if text.startswith("!cam.") and text.endswith("_id"):
        return CamIdType(text[len("!cam.") : -len("_id")])
    if text.startswith("i") and text[1:].isdigit():
        return IntegerType(int(text[1:]))
    if text.startswith("f") and text[1:].isdigit():
        return FloatType(int(text[1:]))
    for prefix, cls in (("tensor<", TensorType), ("memref<", MemRefType)):
        if text.startswith(prefix) and text.endswith(">"):
            body = text[len(prefix) : -1]
            parts = body.split("x")
            elem = parse_type(parts[-1])
            shape = [DYNAMIC if p == "?" else int(p) for p in parts[:-1]]
            return cls(shape, elem)
    if text.startswith("(") and "->" in text:
        lhs, rhs = _split_arrow(text)
        ins = _split_types(lhs.strip()[1:-1])
        rhs = rhs.strip()
        outs = _split_types(rhs[1:-1]) if rhs.startswith("(") else [rhs]
        return FunctionType(
            [parse_type(t) for t in ins if t.strip()],
            [parse_type(t) for t in outs if t.strip()],
        )
    raise ValueError(f"cannot parse type: {text!r}")


def _split_arrow(text: str) -> Tuple[str, str]:
    """Split a function-type spelling at its top-level ``->``."""
    depth = 0
    for i in range(len(text) - 1):
        c = text[i]
        if c in "(<":
            depth += 1
        elif c in ")>":
            depth -= 1
        elif depth == 0 and text[i : i + 2] == "->":
            return text[:i], text[i + 2 :]
    raise ValueError(f"missing '->' in function type: {text!r}")


def _split_types(text: str) -> list:
    """Split comma-separated types, honouring nesting of ``<>`` and ``()``."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "(<":
            depth += 1
        elif c == ")" or (c == ">" and (i == 0 or text[i - 1] != "-")):
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if text[start:].strip():
        parts.append(text[start:])
    return parts
