"""Randomized differential testing across all four execution paths.

The runtime now serves one similarity kernel four ways:

1. **per-call interpreter** — ``cache_session=False``, a fresh machine
   and a full IR walk per query (the legacy reference semantics);
2. **batched query session** — ``QuerySession.run_batch`` on one live
   machine (PR 1);
3. **sharded session** — the store split across machines and re-merged
   (PR 2);
4. **replicated + async serving** — R cloned copies behind the
   micro-batching :class:`~repro.runtime.serving.ServingEngine` (this
   PR), with requests chopped into arbitrary chunks.

Every path promises *bitwise identical* top-k output (noise disabled).
This suite generates random stores/queries/geometries — plus adversarial
tie-heavy and all-zero-score inputs, where only the stable lowest-index
tie-break keeps the paths aligned — and asserts the promise holds.
"""

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder


def _dot_model(stored, k):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _random_case(rng):
    """One random workload: store, queries, k and a machine geometry."""
    patterns = int(rng.integers(6, 48))
    features = int(rng.choice([32, 64, 128]))
    batch = int(rng.integers(1, 10))
    k = int(rng.integers(1, min(patterns, 5) + 1))
    spec = dse_spec(int(rng.choice([16, 32])))
    kind = rng.choice(["gaussian", "bipolar", "ties", "zeros"])
    if kind == "gaussian":
        stored = rng.standard_normal((patterns, features))
        queries = rng.standard_normal((batch, features))
    elif kind == "bipolar":
        stored = rng.choice([-1.0, 1.0], (patterns, features))
        queries = rng.choice([-1.0, 1.0], (batch, features))
    elif kind == "ties":
        # A handful of unique rows duplicated many times: nearly every
        # score ties, so ranking is decided purely by the tie-break.
        uniques = rng.choice([-1.0, 1.0], (3, features))
        stored = uniques[rng.integers(0, 3, patterns)]
        queries = uniques[rng.integers(0, 3, batch)]
    else:  # zeros: every match-line score is 0 for every stored row
        stored = rng.choice([-1.0, 1.0], (patterns, features))
        queries = np.zeros((batch, features))
    return (
        stored.astype(np.float32),
        queries.astype(np.float32),
        k,
        spec,
        kind,
    )


def _four_paths(stored, queries, k, spec, rng):
    """Run the same workload through all four paths; return the results."""
    features = stored.shape[1]
    example = [placeholder((1, features))]
    compiler = C4CAMCompiler(spec)

    # 1. per-call interpreter (fresh machine + full IR walk per query).
    percall = compiler.compile(
        _dot_model(stored, k), example, cache_session=False
    )
    values, indices = zip(*(percall(q[None, :]) for q in queries))
    interpreter = (np.vstack(values), np.vstack(indices))

    # 2. one batched query session.
    session = compiler.compile(_dot_model(stored, k), example)
    batched = tuple(session.run_batch(queries))

    # 3. sharded across machines.
    num_shards = min(int(rng.integers(2, 4)), stored.shape[0])
    sharded_kernel = compiler.compile(
        _dot_model(stored, k), example, num_shards=num_shards
    )
    sharded = tuple(sharded_kernel.run_batch(queries))

    # 4. replicated + async: random request chunking through the engine.
    replicated = compiler.compile(
        _dot_model(stored, k), example, num_replicas=2
    )
    with replicated.serve(
        max_batch=int(rng.integers(1, len(queries) + 2)),
        max_wait=float(rng.choice([0.0, 0.001])),
    ) as engine:
        futures, cursor = [], 0
        while cursor < len(queries):
            take = min(int(rng.integers(1, 4)), len(queries) - cursor)
            futures.append(engine.submit(queries[cursor : cursor + take]))
            cursor += take
        parts = [future.result(timeout=30) for future in futures]
    served = (
        np.vstack([p[0] for p in parts]),
        np.vstack([p[1] for p in parts]),
    )
    return interpreter, batched, sharded, served


@pytest.mark.parametrize("seed", range(8))
def test_random_workloads_agree_bitwise(seed):
    rng = np.random.default_rng(987_000 + seed)
    stored, queries, k, spec, kind = _random_case(rng)
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, k, spec, rng
    )
    for name, (values, indices) in {
        "session": batched, "sharded": sharded, "served": served,
    }.items():
        np.testing.assert_array_equal(
            indices, interpreter[1],
            err_msg=f"{name} indices diverge on {kind!r} case (seed {seed})",
        )
        np.testing.assert_array_equal(
            values, interpreter[0],
            err_msg=f"{name} values diverge on {kind!r} case (seed {seed})",
        )
        assert values.dtype == np.float32 and indices.dtype == np.int64


def test_tie_heavy_store_resolves_identically():
    """Every stored row identical: all scores tie for every query, so
    agreement is purely the stable lowest-index tie-break on all paths."""
    rng = np.random.default_rng(5)
    row = rng.choice([-1.0, 1.0], 64)
    stored = np.tile(row, (18, 1)).astype(np.float32)
    queries = np.vstack([row, -row, rng.choice([-1.0, 1.0], 64)]).astype(
        np.float32
    )
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, 4, dse_spec(16), rng
    )
    expected = np.tile(np.arange(4, dtype=np.int64), (3, 1))
    np.testing.assert_array_equal(interpreter[1], expected)
    for path in (batched, sharded, served):
        np.testing.assert_array_equal(path[1], expected)
        np.testing.assert_array_equal(path[0], interpreter[0])


def test_all_zero_scores_resolve_identically():
    """A zero query gives every stored row the same score (whatever
    constant the CAM-level metric legalizes it to) — the top-k is then
    decided purely by the tie-break and must still agree on every path."""
    rng = np.random.default_rng(6)
    stored = rng.choice([-1.0, 1.0], (20, 64)).astype(np.float32)
    queries = np.zeros((4, 64), dtype=np.float32)
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, 3, paper_spec(rows=16, cols=32), rng
    )
    # All-tie: the winners are the first k row indices and every
    # returned value is the same constant.
    np.testing.assert_array_equal(
        interpreter[1], np.tile(np.arange(3, dtype=np.int64), (4, 1))
    )
    assert np.unique(interpreter[0]).size == 1
    for path in (batched, sharded, served):
        np.testing.assert_array_equal(path[1], interpreter[1])
        np.testing.assert_array_equal(path[0], interpreter[0])
