#!/usr/bin/env python
"""KNN on (synthetic) Pneumonia chest X-rays — the paper's second workload.

Stores the training set in an analog CAM, compiles the Euclidean KNN
kernel (Algorithm 1's EuclNorm pattern), validates neighbour indices and
majority-vote accuracy against the golden model, and prints the EDP/power
sweep of paper Table II in miniature.

Run:  python examples/knn_pneumonia.py

Expected output: CAM neighbour indices identical to the numpy golden
model, matching vote accuracy, and a Table II-shaped sweep where EDP
and power both drop as subarrays grow and cam-power draws ~2-3x less
power than cam-base.
"""

import numpy as np

from repro.apps import build_knn, pad_features, synthetic_pneumonia
from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler


def classify_on_cam(knn, spec, queries, n_eval):
    compiler = C4CAMCompiler(spec)
    kernel_model, example = knn.kernel()
    kernel = compiler.compile(kernel_model, example)
    preds = []
    report = None
    for q in queries[:n_eval]:
        _values, indices = kernel(q)
        preds.append(knn.vote(indices))
        report = kernel.last_report
    return np.array(preds), report


def main():
    dataset = synthetic_pneumonia(n_train=256, n_test=32)
    knn = build_knn(dataset, k=5, feature_multiple=64, row_multiple=64)
    queries = pad_features(dataset.test_x, 64)
    n_eval = 8

    spec = paper_spec(rows=64, cols=64, cam_type="acam")
    preds, report = classify_on_cam(knn, spec, queries, n_eval)
    reference = knn.classify_reference(dataset.test_x[:n_eval])
    accuracy = (preds == dataset.test_y[:n_eval]).mean()

    print("--- KNN on ACAM (Euclidean best-match) ---")
    print(f"CAM predictions: {preds.tolist()}")
    print(f"reference:       {reference.tolist()}")
    print(f"accuracy:        {accuracy:.3f}")
    print(f"per-query latency: {report.query_latency_ns:.2f} ns")
    print(f"per-query energy:  {report.energy.query_total:.1f} pJ")
    assert np.array_equal(preds, reference), "CAM diverged from reference"

    # Table II in miniature: EDP and power, cam-based vs cam-power.
    print("\n--- EDP (nJ*s) and power (mW) vs subarray size (Table II) ---")
    print(f"{'subarray':>10} {'EDP base':>12} {'EDP power':>12} "
          f"{'P base':>10} {'P power':>10}")
    for n in (16, 32, 64):
        row = []
        for target in ("latency", "power"):
            s = paper_spec(rows=n, cols=n, cam_type="acam",
                           optimization_target=target)
            _preds, rep = classify_on_cam(knn, s, queries, 1)
            row.append((rep.edp, rep.power_mw))
        print(f"{n:>8}x{n:<3} {row[0][0]:>12.3e} {row[1][0]:>12.3e} "
              f"{row[0][1]:>10.2f} {row[1][1]:>10.2f}")


if __name__ == "__main__":
    main()
