"""Architecture specification and technology model tests."""

import pytest

from repro.arch import (
    ArchSpec,
    FEFET_45NM,
    TechnologyModel,
    dse_spec,
    iso_capacity_spec,
    paper_spec,
    validation_spec,
)


class TestArchSpec:
    def test_defaults(self):
        spec = ArchSpec()
        assert spec.rows == 32 and spec.cols == 32
        assert spec.cam_type == "tcam"
        assert spec.mode("bank") == "parallel"

    def test_capacity_math(self):
        spec = paper_spec()
        assert spec.subarrays_per_mat == 32
        assert spec.subarrays_per_bank == 128
        assert spec.cells_per_subarray == 1024

    def test_banks_needed(self):
        spec = paper_spec()
        assert spec.banks_needed(1) == 1
        assert spec.banks_needed(128) == 1
        assert spec.banks_needed(129) == 2
        assert spec.banks_needed(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArchSpec(rows=0)
        with pytest.raises(ValueError):
            ArchSpec(cam_type="qcam")
        with pytest.raises(ValueError):
            ArchSpec(bits_per_cell=0)
        with pytest.raises(ValueError):
            ArchSpec(optimization_target="speed")
        with pytest.raises(ValueError):
            ArchSpec(access_modes={"bank": "warp"})

    def test_tcam_single_bit_enforced(self):
        with pytest.raises(ValueError):
            ArchSpec(cam_type="tcam", bits_per_cell=2)
        ArchSpec(cam_type="mcam", bits_per_cell=2)  # fine

    def test_with_helpers(self):
        spec = paper_spec()
        assert spec.with_subarray(64, 128).cols == 128
        assert spec.with_target("power").optimization_target == "power"
        s = spec.with_modes(subarray="sequential")
        assert s.mode("subarray") == "sequential"
        assert s.mode("bank") == "parallel"
        # original untouched (frozen dataclass semantics)
        assert spec.mode("subarray") == "parallel"

    def test_json_roundtrip(self, tmp_path):
        spec = paper_spec(rows=64, cols=128, cam_type="mcam", bits_per_cell=2)
        path = tmp_path / "arch.json"
        spec.to_json(path)
        assert ArchSpec.from_json(path) == spec

    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError):
            ArchSpec.from_dict({"rows": 32, "wheels": 4})


class TestPresets:
    def test_paper_hierarchy(self):
        spec = paper_spec()
        assert (spec.mats_per_bank, spec.arrays_per_mat,
                spec.subarrays_per_array) == (4, 4, 8)
        assert spec.banks is None

    def test_validation_spec_bits(self):
        assert validation_spec(64).cam_type == "tcam"
        assert validation_spec(64, bits_per_cell=2).cam_type == "mcam"

    def test_dse_spec_square(self):
        spec = dse_spec(128, "density")
        assert spec.rows == spec.cols == 128
        assert spec.optimization_target == "density"

    def test_iso_capacity_invariant(self):
        for n in (16, 32, 64, 128, 256):
            spec = iso_capacity_spec(n)
            assert spec.cells_per_array == 1 << 16

    def test_iso_capacity_bad_size(self):
        with pytest.raises(ValueError):
            iso_capacity_spec(48)


class TestTechnologyModel:
    def test_search_latency_anchors(self):
        """Paper §IV-A1: 860 ps at 16×16 and 7.5 ns at 256×256."""
        t16 = FEFET_45NM.search_latency(dse_spec(16))
        t256 = FEFET_45NM.search_latency(dse_spec(256))
        assert t16 == pytest.approx(0.86, abs=0.02)
        assert t256 == pytest.approx(7.5, abs=0.1)

    def test_latency_monotone_in_cols(self):
        lats = [
            FEFET_45NM.search_latency(validation_spec(c))
            for c in (16, 32, 64, 128)
        ]
        assert lats == sorted(lats)

    def test_multibit_slower_and_hungrier(self):
        s1 = validation_spec(64, bits_per_cell=1)
        s2 = validation_spec(64, bits_per_cell=2)
        assert FEFET_45NM.search_latency(s2) > FEFET_45NM.search_latency(s1)
        assert FEFET_45NM.search_energy(s2, 10) > FEFET_45NM.search_energy(s1, 10)

    def test_selective_phase_costs_more(self):
        spec = dse_spec(256)
        assert FEFET_45NM.search_phase_latency(spec, selective=True) > \
            FEFET_45NM.search_phase_latency(spec, selective=False)

    def test_search_energy_scales_with_rows(self):
        spec = dse_spec(64)
        assert FEFET_45NM.search_energy(spec, 20) > \
            FEFET_45NM.search_energy(spec, 10)

    def test_accumulate_energy_extra(self):
        spec = dse_spec(64)
        assert FEFET_45NM.search_energy(spec, 10, accumulate=True) > \
            FEFET_45NM.search_energy(spec, 10, accumulate=False)

    def test_write_scales_with_rows(self):
        spec = dse_spec(64)
        assert FEFET_45NM.write_latency(spec, 20) == \
            2 * FEFET_45NM.write_latency(spec, 10)

    def test_standby_power_composition(self):
        p = FEFET_45NM.standby_power(dse_spec(32), 10, 2, 1, 1)
        expected = (
            10 * FEFET_45NM.p_subarray + 2 * FEFET_45NM.p_array
            + FEFET_45NM.p_mat + FEFET_45NM.p_bank
        )
        assert p == pytest.approx(expected)

    def test_acam_factors(self):
        tcam = dse_spec(64)
        acam = ArchSpec(rows=64, cols=64, cam_type="acam")
        assert FEFET_45NM.search_latency(acam) > FEFET_45NM.search_latency(tcam)

    def test_custom_model_fields(self):
        tech = TechnologyModel(t_frontend=9.0)
        assert tech.frontend_latency(dse_spec(32)) == 9.0
