"""Property-based tests (hypothesis) on core invariants.

* IR print/parse round-trips for arbitrary structured modules;
* partition-plan invariants (full coverage, no tile overlap, Table-I
  consistency);
* CAM search results always equal the numpy reference, for arbitrary
  shapes, metrics and architectures;
* merge-of-partials equals the unpartitioned computation.
"""


import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.simulator.cells import (
    dot_similarity,
    euclidean_sq_distance,
    hamming_distance,
    quantize,
)
from repro.transforms import compute_partition_plan


# --------------------------------------------------------------------- cells
@given(
    st.integers(1, 20),  # rows
    st.integers(1, 40),  # cols
    st.integers(0, 2**32 - 1),  # seed
)
@settings(max_examples=40, deadline=None)
def test_hamming_bounds_and_reference(rows, cols, seed):
    rng = np.random.default_rng(seed)
    stored = rng.choice([-1.0, 1.0], (rows, cols))
    q = rng.choice([-1.0, 1.0], cols)
    h = hamming_distance(stored, q)
    assert h.shape == (rows,)
    assert (0 <= h).all() and (h <= cols).all()
    np.testing.assert_array_equal(h, (stored != q[None, :]).sum(axis=1))


@given(st.integers(1, 10), st.integers(1, 16), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_dot_euclid_consistent_for_bipolar(rows, cols, seed):
    """For bipolar data: dot = C - 2*H and ||a-b||^2 = 4*H."""
    rng = np.random.default_rng(seed)
    stored = rng.choice([-1.0, 1.0], (rows, cols))
    q = rng.choice([-1.0, 1.0], cols)
    h = hamming_distance(stored, q)
    np.testing.assert_allclose(dot_similarity(stored, q), cols - 2 * h)
    np.testing.assert_allclose(euclidean_sq_distance(stored, q), 4 * h)


@given(
    st.lists(st.floats(-100, 100), min_size=2, max_size=64),
    st.integers(1, 3),
)
@settings(max_examples=50, deadline=None)
def test_quantize_within_levels_and_monotone(values, bits):
    x = np.array(values)
    q = quantize(x, bits)
    assert q.min() >= 0 and q.max() <= (1 << bits) - 1
    # Monotone: larger inputs never get smaller codes.
    order = np.argsort(x, kind="stable")
    sorted_codes = q[order]
    assert all(
        sorted_codes[i] <= sorted_codes[i + 1]
        for i in range(len(sorted_codes) - 1)
    )


# ----------------------------------------------------------- partition plans
plan_strategy = st.tuples(
    st.integers(1, 300),                    # patterns
    st.sampled_from([64, 128, 256, 512, 1024, 8192]),  # features
    st.sampled_from([16, 32, 64, 128, 256]),  # subarray N
    st.booleans(),                          # density
)


@given(plan_strategy)
@settings(max_examples=80, deadline=None)
def test_partition_plan_invariants(params):
    patterns, features, n, density = params
    plan = compute_partition_plan(patterns, features, 1, dse_spec(n), density)
    # Tiles cover everything.
    assert plan.row_tiles * plan.row_tile >= patterns
    assert plan.col_tiles * plan.col_tile >= features
    # Batches never exceed physical rows.
    assert plan.batches * plan.patterns <= max(plan.rows, plan.patterns)
    # Subarray count covers all tiles.
    assert plan.subarrays * plan.batches >= plan.total_tiles
    # Density never uses more subarrays than base.
    base = compute_partition_plan(patterns, features, 1, dse_spec(n), False)
    assert plan.subarrays <= base.subarrays


@given(plan_strategy)
@settings(max_examples=60, deadline=None)
def test_tile_enumeration_complete_and_disjoint(params):
    patterns, features, n, density = params
    plan = compute_partition_plan(patterns, features, 1, dse_spec(n), density)
    seen = set()
    for lin in range(plan.subarrays):
        for b in range(plan.batches):
            tile = plan.tile_of(lin, b)
            if tile is not None:
                assert tile not in seen, "tile assigned twice"
                seen.add(tile)
    assert len(seen) == plan.total_tiles, "tiles missing from placement"


# ------------------------------------------------------------ e2e functional
@given(
    st.integers(2, 24),            # patterns
    st.sampled_from([32, 64, 128]),  # features
    st.integers(1, 4),             # queries
    st.integers(1, 2),             # k
    st.integers(0, 2**32 - 1),     # seed
)
@settings(max_examples=15, deadline=None)
def test_compiled_kernel_always_matches_reference(p, d, q, k, seed):
    import repro.frontend.torch_api as torch

    rng = np.random.default_rng(seed)
    stored = rng.choice([-1.0, 1.0], (p, d)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (q, d)).astype(np.float32)
    k = min(k, p)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, x):
            others = self.weight.transpose(-2, -1)
            mm = torch.matmul(x, others)
            return torch.ops.aten.topk(mm, k, largest=True)

    kernel = C4CAMCompiler(paper_spec(rows=16, cols=32)).compile(
        M(), [placeholder((q, d))]
    )
    _v, idx = kernel(queries)
    scores = queries @ stored.T
    expected = np.argsort(-scores, axis=1, kind="stable")[:, :k]
    np.testing.assert_array_equal(idx, expected)


@given(st.integers(0, 2**32 - 1), st.sampled_from([32, 64]))
@settings(max_examples=10, deadline=None)
def test_merge_of_partials_equals_unpartitioned(seed, n):
    """Column-partitioned CAM scores must sum to the full-width scores."""
    import repro.frontend.torch_api as torch

    rng = np.random.default_rng(seed)
    d = 4 * n
    stored = rng.choice([-1.0, 1.0], (8, d)).astype(np.float32)
    query = rng.choice([-1.0, 1.0], (1, d)).astype(np.float32)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, x):
            others = self.weight.transpose(-2, -1)
            mm = torch.matmul(x, others)
            return torch.ops.aten.topk(mm, 8, largest=False)

    kernel = C4CAMCompiler(paper_spec(rows=16, cols=n)).compile(
        M(), [placeholder((1, d))]
    )
    values, idx = kernel(query)
    # The merged Hamming scores, reordered by index, must equal the
    # reference Hamming distance of the full-width vectors.
    full_h = (stored != query).sum(axis=1).astype(np.float64)
    got = np.empty(8)
    got[idx.ravel()] = values.ravel()
    np.testing.assert_array_equal(got, full_h)


# ------------------------------------------------------------- IR roundtrip
@given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_ir_roundtrip_random_modules(n_consts, n_adds, seed):
    """Random straight-line modules survive print -> parse -> print."""
    from repro.dialects import arith as arith_d
    from repro.dialects import func as func_d
    from repro.ir import (
        ModuleOp, OpBuilder, parse_module, print_module, verify,
    )
    from repro.ir.types import FunctionType

    rng = np.random.default_rng(seed)
    m = ModuleOp()
    f = func_d.FuncOp("r", FunctionType([], []))
    m.append(f)
    b = OpBuilder.at_end(f.body)
    values = [
        b.create(arith_d.ConstantOp, int(rng.integers(-100, 100))).result
        for _ in range(n_consts)
    ]
    for _ in range(n_adds):
        a, c = rng.choice(len(values), 2)
        values.append(b.create(arith_d.AddIOp, values[a], values[c]).result)
    b.create(func_d.ReturnOp, [])
    text = print_module(m)
    m2 = parse_module(text)
    verify(m2)
    assert print_module(m2) == text
