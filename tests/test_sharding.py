"""Sharded multi-machine sessions and the capacity-error path.

Covers the ShardedSession subsystem (row sharding across independently
programmed machines, fan-out/merge, honest multi-machine reports), the
compiler's ``num_shards`` / auto-shard-on-overflow plumbing, the
CapacityError raised wherever a store overflows a bank-capped machine,
and the sharded pattern matcher.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.apps import PatternMatcher, ShardedPatternMatcher
from repro.arch import dse_spec, paper_spec
from repro.arch.technology import FEFET_45NM
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.session import SessionError
from repro.runtime.sharding import (
    ShardedSession,
    aggregate_reports,
    plan_shard_count,
    shard_sizes,
)
from repro.transforms import CapacityError, machine_row_capacity


def compile_dot(dot_kernel, stored, shape, k=1, largest=True, **kw):
    return C4CAMCompiler(kw.pop("spec", paper_spec())).compile(
        dot_kernel(stored, k=k, largest=largest), [placeholder(shape)], **kw
    )


# --------------------------------------------------------------------------
# Shard planning
# --------------------------------------------------------------------------
class TestShardPlanning:
    def test_shard_sizes_balanced(self):
        assert shard_sizes(10, 1) == [10]
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(9, 3) == [3, 3, 3]
        assert shard_sizes(5, 5) == [1, 1, 1, 1, 1]
        with pytest.raises(ValueError):
            shard_sizes(3, 4)

    def test_auto_count_unbounded_spec_is_one(self):
        spec = dse_spec(16)  # banks on demand: everything fits
        assert plan_shard_count(10_000, 1024, 1, spec, False) == 1

    def test_auto_count_matches_capacity(self):
        # 1 bank of 128 subarrays, 16x16 cells, D=1024 -> 64 col tiles
        # -> 2 row tiles -> 32-row capacity.
        spec = replace(dse_spec(16), banks=1)
        assert machine_row_capacity(spec, 1024) == 32
        assert plan_shard_count(32, 1024, 1, spec, False) == 1
        assert plan_shard_count(33, 1024, 1, spec, False) == 2
        assert plan_shard_count(100, 1024, 1, spec, False) == 4

    def test_forced_undersized_count_raises(self):
        spec = replace(dse_spec(16), banks=1)
        with pytest.raises(CapacityError) as exc_info:
            plan_shard_count(100, 1024, 1, spec, False, num_shards=2)
        # The error describes the full store, not the tripping shard.
        err = exc_info.value
        assert err.required_rows == 100
        assert err.available_rows == 32
        assert ">= 4 machines" in str(err)

    def test_row_capacity_unbounded_is_none(self):
        assert machine_row_capacity(dse_spec(16), 1024) is None

    def test_density_extends_row_capacity(self):
        """Density stacking can fit stores the plain placement cannot;
        the capacity figure (and CapacityError hints) must agree with
        the density-aware fit check."""
        spec = replace(dse_spec(16, "density"), banks=1)
        # 4096 features -> 256 col tiles > 128 subarrays: plain
        # capacity is 0, but stacking rows//R tiles per subarray fits.
        assert machine_row_capacity(spec, 4096) == 0
        density_rows = machine_row_capacity(spec, 4096, use_density=True)
        assert density_rows > 0
        assert plan_shard_count(density_rows, 4096, 1, spec, True) == 1
        # An overflowing store still hints at a *useful* shard count.
        with pytest.raises(CapacityError) as exc_info:
            plan_shard_count(64, 4096, 1, spec, True, num_shards=1)
        err = exc_info.value
        assert err.available_rows == density_rows
        assert "sharding cannot help" not in str(err)
        auto = plan_shard_count(64, 4096, 1, spec, True)
        assert auto > 1


# --------------------------------------------------------------------------
# Functional equivalence: N shards == one big machine, bitwise
# --------------------------------------------------------------------------
class TestShardInvariance:
    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    def test_dot_matches_single_machine(self, dot_kernel, rng, num_shards):
        """Explicit shard counts return bitwise-identical results."""
        stored = rng.choice([-1.0, 1.0], (40, 128)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (6, 128)).astype(np.float32)
        spec = dse_spec(16)
        single = compile_dot(dot_kernel, stored, (1, 128), k=3, spec=spec)
        sharded = compile_dot(
            dot_kernel, stored, (1, 128), k=3, spec=spec,
            num_shards=num_shards,
        )
        assert sharded.num_shards == num_shards
        sv, si = single.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(si, hi)
        np.testing.assert_array_equal(sv, hv)

    @pytest.mark.parametrize("target", ["latency", "power", "density"])
    def test_invariance_across_targets(self, dot_kernel, rng, target):
        """Sharding composes with every optimization configuration."""
        stored = rng.choice([-1.0, 1.0], (24, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (5, 64)).astype(np.float32)
        spec = dse_spec(16, target)
        single = compile_dot(dot_kernel, stored, (1, 64), k=2, spec=spec)
        sharded = compile_dot(
            dot_kernel, stored, (1, 64), k=2, spec=spec, num_shards=3
        )
        sv, si = single.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(si, hi)
        np.testing.assert_array_equal(sv, hv)

    def test_euclidean_matches_single_machine(self, euclidean_kernel, rng):
        """The 1-D-traced KNN kernel shards too (rank-1 query trace)."""
        stored = rng.standard_normal((70, 64)).astype(np.float32)
        queries = rng.standard_normal((5, 64)).astype(np.float32)
        spec = paper_spec(rows=16, cols=32, cam_type="acam")
        single = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=5), [placeholder((64,))]
        )
        sharded = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=5), [placeholder((64,))], num_shards=3
        )
        sv, si = single.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(si, hi)
        np.testing.assert_array_equal(sv, hv)

    def test_ties_resolve_to_lowest_global_row(self, dot_kernel):
        """Duplicate stored rows score equal; the merge must keep the
        single-machine lowest-index tie-break across shard boundaries."""
        stored = np.tile(
            np.sign(np.arange(32) - 7.5).astype(np.float32), (12, 1)
        )  # 12 identical rows -> every score ties
        queries = stored[:2]
        spec = dse_spec(16)
        single = compile_dot(dot_kernel, stored, (1, 32), k=4, spec=spec)
        sharded = compile_dot(
            dot_kernel, stored, (1, 32), k=4, spec=spec, num_shards=3
        )
        sv, si = single.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(si, hi)
        np.testing.assert_array_equal(sv, hv)

    def test_wta_window_matches_single_machine(self, dot_kernel, rng):
        """A winner-take-all sensing window clamps against the *global*
        winner: per-shard clamps must not leak into the merge (the
        merge re-ranks unclamped scores and clamps once)."""
        from dataclasses import replace as dc_replace

        from repro.arch.technology import FEFET_45NM
        from repro.compiler import C4CAMCompiler
        from repro.frontend import placeholder

        stored = rng.choice([-1.0, 1.0], (24, 64)).astype(np.float32)
        # Shard 0's local runner-up is far off the global winner; with a
        # per-shard clamp it would masquerade as a near-tie.
        stored[1] = -stored[0]
        queries = np.vstack([stored[0], stored[17]])
        spec = dse_spec(16)
        tech = dc_replace(FEFET_45NM, wta_window=2)
        single = C4CAMCompiler(spec, tech).compile(
            dot_kernel(stored, k=4), [placeholder((1, 64))]
        )
        sharded = C4CAMCompiler(spec, tech).compile(
            dot_kernel(stored, k=4), [placeholder((1, 64))], num_shards=3
        )
        sv, si = single.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(si, hi)
        np.testing.assert_array_equal(sv, hv)

    def test_call_dispatches_through_shards(self, dot_kernel, rng):
        """kernel(queries) and kernel.run_batch agree on sharded kernels."""
        stored = rng.choice([-1.0, 1.0], (20, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel = compile_dot(
            dot_kernel, stored, (1, 64), k=2, spec=dse_spec(16), num_shards=2
        )
        cv, ci = kernel(queries)
        kernel.reset()
        bv, bi = kernel.run_batch(queries)
        np.testing.assert_array_equal(ci, bi)
        np.testing.assert_array_equal(cv, bv)


# --------------------------------------------------------------------------
# Auto-shard on overflow (the serving-capacity story)
# --------------------------------------------------------------------------
class TestAutoShard:
    def test_overflowing_store_auto_shards(self, dot_kernel, rng):
        """A store beyond one machine's rows runs via ShardedSession and
        matches an (oversized) single-machine reference bitwise."""
        stored = rng.choice([-1.0, 1.0], (100, 1024)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (7, 1024)).astype(np.float32)
        capped = replace(dse_spec(16), banks=1)  # 32-row capacity
        oversized = dse_spec(16)                 # same geometry, no cap

        reference = compile_dot(dot_kernel, stored, (1, 1024), k=3,
                                spec=oversized)
        sharded = compile_dot(dot_kernel, stored, (1, 1024), k=3, spec=capped)
        assert sharded.num_shards == 4
        assert isinstance(sharded.session(), ShardedSession)

        rv, ri = reference.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(ri, hi)
        np.testing.assert_array_equal(rv, hv)
        # Every shard machine respects the bank cap.
        for machine in sharded.session().machines:
            assert machine.banks_used <= capped.banks

    def test_fitting_store_stays_single_machine(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (16, 1024)).astype(np.float32)
        capped = replace(dse_spec(16), banks=1)
        kernel = compile_dot(dot_kernel, stored, (1, 1024), spec=capped)
        assert kernel.num_shards == 1
        assert kernel.shard_set is None

    def test_noise_reproducible_and_decorrelated(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (20, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        make = lambda: compile_dot(
            dot_kernel, stored, (1, 64), k=2, spec=dse_spec(16),
            num_shards=2, noise_sigma=0.2, noise_seed=11,
        )
        a, b = make(), make()
        av, ai = a.run_batch(queries)
        bv, bi = b.run_batch(queries)
        np.testing.assert_array_equal(ai, bi)
        np.testing.assert_array_equal(av, bv)
        # A second batch draws a fresh realization.
        a2v, _ = a.run_batch(queries)
        assert not np.array_equal(av, a2v)


# --------------------------------------------------------------------------
# CapacityError: loud overflow everywhere
# --------------------------------------------------------------------------
class TestCapacityError:
    def test_forced_single_machine_overflow_raises(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (100, 1024)).astype(np.float32)
        capped = replace(dse_spec(16), banks=1)
        with pytest.raises(CapacityError) as exc_info:
            compile_dot(dot_kernel, stored, (1, 1024), spec=capped,
                        num_shards=1)
        err = exc_info.value
        assert err.required_rows == 100
        assert err.available_rows == 32
        assert "num_shards" in str(err)
        assert "banks" in str(err)

    def test_matcher_overflow_raises(self, rng):
        patterns = rng.choice([0.0, 1.0], (80, 1024))
        capped = replace(dse_spec(16), banks=1)
        with pytest.raises(CapacityError, match="rows"):
            PatternMatcher(patterns, capped)

    def test_non_shardable_model_with_shards_raises(self, rng):
        """num_shards on a model that is not a pure similarity kernel
        fails loudly rather than sharding something else."""
        import repro.frontend.torch_api as torch

        stored = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)

        class NotJustSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
                return values, indices, matmul  # extra output

        with pytest.raises(SessionError, match="similarity"):
            C4CAMCompiler(dse_spec(16)).compile(
                NotJustSimilarity(), [placeholder((2, 64))], num_shards=2
            )

    def test_multi_input_model_with_shards_raises(self, rng):
        """A traced function with extra inputs cannot shard: the shard
        call contract is one query batch, so compile must refuse."""
        import repro.frontend.torch_api as torch

        stored = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)

        class TwoInputs(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, input, unused):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                return torch.ops.aten.topk(matmul, 1, largest=True)

        with pytest.raises(SessionError, match="similarity"):
            C4CAMCompiler(dse_spec(16)).compile(
                TwoInputs(),
                [placeholder((2, 64)), placeholder((2, 64))],
                num_shards=2,
            )

    def test_host_reference_path_rejects_shards(self, dot_kernel, rng):
        """lower_to_cam=False has no machines: num_shards > 1 must fail
        loudly instead of being silently dropped."""
        stored = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
        with pytest.raises(ValueError, match="lower_to_cam"):
            C4CAMCompiler(dse_spec(16)).compile(
                dot_kernel(stored), [placeholder((2, 64))],
                lower_to_cam=False, num_shards=2,
            )

    def test_zero_capacity_hint_says_enlarge(self):
        """When not even one row fits, the hint must not suggest
        sharding."""
        spec = replace(paper_spec(rows=8, cols=8), banks=1,
                       subarrays_per_array=1, arrays_per_mat=1,
                       mats_per_bank=1)  # 1 subarray, D needs 16 tiles
        with pytest.raises(CapacityError, match="sharding cannot help"):
            plan_shard_count(4, 128, 1, spec, False)

    def test_boundary_exactly_at_row_capacity(self, dot_kernel, rng):
        """A store of exactly machine_row_capacity rows is the last one
        that must compile single-machine; one more row flips both the
        forced-single error and the auto-shard decision."""
        capped = replace(dse_spec(16), banks=1)
        capacity = machine_row_capacity(capped, 1024)
        assert capacity == 32

        exact = rng.choice([-1.0, 1.0], (capacity, 1024)).astype(np.float32)
        kernel = compile_dot(dot_kernel, exact, (1, 1024), spec=capped,
                             num_shards=1)
        assert kernel.num_shards == 1 and kernel.shard_set is None
        auto = compile_dot(dot_kernel, exact, (1, 1024), spec=capped)
        assert auto.num_shards == 1  # no phantom shard at the boundary

        over = rng.choice([-1.0, 1.0], (capacity + 1, 1024)).astype(
            np.float32
        )
        with pytest.raises(CapacityError) as exc_info:
            compile_dot(dot_kernel, over, (1, 1024), spec=capped,
                        num_shards=1)
        assert exc_info.value.required_rows == capacity + 1
        assert exc_info.value.available_rows == capacity
        sharded = compile_dot(dot_kernel, over, (1, 1024), spec=capped)
        assert sharded.num_shards == 2
        # The one-row overflow still answers identically to an
        # unbounded machine.
        queries = rng.choice([-1.0, 1.0], (3, 1024)).astype(np.float32)
        reference = compile_dot(dot_kernel, over, (1, 1024),
                                spec=dse_spec(16))
        rv, ri = reference.run_batch(queries)
        hv, hi = sharded.run_batch(queries)
        np.testing.assert_array_equal(ri, hi)
        np.testing.assert_array_equal(rv, hv)

    def test_density_boundary_on_bank_capped_spec(self, dot_kernel, rng):
        """Density stacking extends a bank-capped machine's row capacity;
        the compiled kernel and the CapacityError must both honour the
        density-aware figure, not the plain one."""
        capped = replace(dse_spec(16, "density"), banks=1)
        plain = machine_row_capacity(capped, 4096)
        dense = machine_row_capacity(capped, 4096, use_density=True)
        assert plain == 0 and dense > 0

        fits = rng.choice([-1.0, 1.0], (dense, 4096)).astype(np.float32)
        kernel = compile_dot(dot_kernel, fits, (1, 4096), spec=capped,
                             num_shards=1)
        assert kernel.num_shards == 1
        assert kernel.last_machine is None  # compiled, not yet run
        _v, idx = kernel.run_batch(fits[:2])
        np.testing.assert_array_equal(idx[:, 0], [0, 1])
        assert kernel.last_machine.banks_used <= 1

        over = rng.choice([-1.0, 1.0], (dense + 1, 4096)).astype(np.float32)
        with pytest.raises(CapacityError) as exc_info:
            compile_dot(dot_kernel, over, (1, 4096), spec=capped,
                        num_shards=1)
        assert exc_info.value.available_rows == dense
        assert "sharding cannot help" not in str(exc_info.value)
        auto = compile_dot(dot_kernel, over, (1, 4096), spec=capped)
        assert auto.num_shards == 2


# --------------------------------------------------------------------------
# Report aggregation: honest multi-machine accounting
# --------------------------------------------------------------------------
class TestShardReports:
    def test_energy_sums_latency_maxes(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (40, 128)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (6, 128)).astype(np.float32)
        kernel = compile_dot(
            dot_kernel, stored, (1, 128), k=3, spec=dse_spec(16), num_shards=3
        )
        kernel.run_batch(queries)
        session = kernel.session()
        shard_reports = [s.last_report for s in session.sessions]
        report = kernel.last_report

        # Latency: max over shards + the cross-shard top-k merge.
        candidates = sum(min(3, sh.rows) for sh in kernel.shard_set.shards)
        merge = len(queries) * FEFET_45NM.host_topk_latency(candidates)
        assert report.query_latency_ns == pytest.approx(
            max(r.query_latency_ns for r in shard_reports) + merge
        )
        # Setup: machines program in parallel.
        assert report.setup_latency_ns == pytest.approx(
            max(r.setup_latency_ns for r in shard_reports)
        )
        # Energy: N machines burn N machines' worth.
        for key in ("search", "read", "merge", "write", "standby"):
            assert getattr(report.energy, key) == pytest.approx(
                sum(getattr(r.energy, key) for r in shard_reports)
            ), key
        merge_energy = len(queries) * FEFET_45NM.host_topk_energy(candidates)
        assert report.energy.host == pytest.approx(
            sum(r.energy.host for r in shard_reports) + merge_energy
        )
        # Allocation and work counts sum; queries is the batch size.
        assert report.banks_used == sum(r.banks_used for r in shard_reports)
        assert report.subarrays_used == sum(
            r.subarrays_used for r in shard_reports
        )
        assert report.searches == sum(r.searches for r in shard_reports)
        assert report.queries == len(queries)
        assert report.throughput_qps > 0

    def test_setup_charged_once_across_batches(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (30, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel = compile_dot(
            dot_kernel, stored, (1, 64), spec=dse_spec(16), num_shards=2
        )
        kernel.run_batch(queries)
        write_first = kernel.last_report.energy.write
        writes = [m.energy.write for m in kernel.session().machines]
        kernel.run_batch(queries)
        assert kernel.last_report.energy.write == pytest.approx(write_first)
        assert [
            m.energy.write for m in kernel.session().machines
        ] == writes  # no re-programming

    def test_aggregate_view_spans_all_machines(self, dot_kernel, rng):
        """The session's machine view feeds utilization/format_report."""
        from repro.simulator.analysis import format_report, utilization

        stored = rng.choice([-1.0, 1.0], (30, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel = compile_dot(
            dot_kernel, stored, (1, 64), spec=dse_spec(16), num_shards=2
        )
        kernel.run_batch(queries)
        view = kernel.last_machine
        machines = view.machines
        assert view.subarrays_used == sum(m.subarrays_used for m in machines)
        assert view.chip_area_mm2() == pytest.approx(
            sum(m.chip_area_mm2() for m in machines)
        )
        stats = utilization(view)
        assert stats.subarrays_allocated == view.subarrays_used
        assert "mm^2" in format_report(kernel.last_report, view)

    def test_aggregate_reports_requires_input(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_aggregate_rejects_mismatched_specs(self, rng):
        """Reports from two different presets must not silently sum:
        maxing latencies / adding energies across machine models would
        fabricate a system that does not exist."""
        patterns = rng.choice([0.0, 1.0], (8, 64))
        small = PatternMatcher(patterns, dse_spec(16))
        big = PatternMatcher(patterns, paper_spec(rows=64, cols=64))
        small.lookup(patterns[0])
        big.lookup(patterns[0])
        with pytest.raises(ValueError, match="ArchSpec"):
            aggregate_reports([small.report(), big.report()])
        # Same-preset reports still aggregate (and carry the spec).
        twin = PatternMatcher(patterns, dse_spec(16))
        twin.lookup(patterns[0])
        merged = aggregate_reports([small.report(), twin.report()])
        assert merged.spec == dse_spec(16)
        # Legacy reports without a spec stay permissive.
        from repro.simulator.metrics import ExecutionReport

        merged = aggregate_reports([small.report(), ExecutionReport()])
        assert merged.spec == dse_spec(16)


# --------------------------------------------------------------------------
# Sharded pattern matching (runtime-library usage mode)
# --------------------------------------------------------------------------
class TestShardedPatternMatcher:
    def test_matches_single_machine_matcher(self, rng):
        patterns = rng.choice([0.0, 1.0], (50, 64))
        queries = np.vstack([patterns[7], patterns[33], rng.choice([0.0, 1.0], 64)])
        spec = dse_spec(16)
        single = PatternMatcher(patterns, spec)
        sharded = ShardedPatternMatcher(patterns, spec, num_shards=3)
        assert sharded.num_shards == 3
        for threshold in (0.0, 3.0):
            expected = single.lookup_batch(queries, threshold)
            got = sharded.lookup_batch(queries, threshold)
            for e, g in zip(expected, got):
                np.testing.assert_array_equal(e.indices, g.indices)
                np.testing.assert_array_equal(e.distances, g.distances)
                assert e.first == g.first

    def test_auto_shards_past_capacity(self, rng):
        patterns = rng.choice([0.0, 1.0], (80, 1024))
        capped = replace(dse_spec(16), banks=1)
        sharded = ShardedPatternMatcher(patterns, capped)
        assert sharded.num_shards >= 2
        result = sharded.lookup(patterns[63], threshold=0.0)
        assert 63 in result.indices
        # Reference semantics on an uncapped machine.
        single = PatternMatcher(patterns, dse_spec(16))
        expected = single.lookup(patterns[63], threshold=0.0)
        np.testing.assert_array_equal(result.indices, expected.indices)

    def test_report_aggregates(self, rng):
        patterns = rng.choice([0.0, 1.0], (48, 64))
        spec = dse_spec(16)
        sharded = ShardedPatternMatcher(patterns, spec, num_shards=2)
        queries = rng.choice([0.0, 1.0], (5, 64))
        sharded.lookup_batch(queries, threshold=2.0)
        report = sharded.report()
        shard_reports = [m.report() for m in sharded.shards]
        assert report.queries == 5
        assert report.banks_used == sum(r.banks_used for r in shard_reports)
        assert report.query_latency_ns > max(
            r.query_latency_ns for r in shard_reports
        )
        assert report.energy.write == pytest.approx(
            sum(r.energy.write for r in shard_reports)
        )


# --------------------------------------------------------------------------
# CLI plumbing
# --------------------------------------------------------------------------
class TestCliShards:
    def test_explicit_shards(self, capsys):
        from repro.cli import main

        assert main(["--shards", "2", "--patterns", "8", "--dims", "128",
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded across 2 machines" in out

    def test_bank_cap_overflow_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["--banks", "1", "--patterns", "256", "--dims", "1024",
                     "--shards", "1", "--queries", "2"]) == 1
        err = capsys.readouterr().err
        assert "shard" in err

    def test_bank_cap_auto_shards(self, capsys):
        from repro.cli import main

        assert main(["--banks", "1", "--patterns", "256", "--dims", "1024",
                     "--queries", "2"]) == 0
        out = capsys.readouterr().out
        assert "sharded across 2 machines" in out

    def test_dump_ir_overflow_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["--banks", "1", "--patterns", "256", "--dims", "1024",
                     "--queries", "2", "--dump-ir", "cam"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "banks" in err

    def test_dump_ir_cam_prints_shard_modules(self, capsys):
        from repro.cli import main

        assert main(["--banks", "1", "--patterns", "256", "--dims", "1024",
                     "--queries", "2", "--dump-ir", "cam",
                     "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "// shard 0 (rows 0..127)" in out
        assert "// shard 1 (rows 128..255)" in out
        assert out.count("cam.write_value") >= 2

    def test_more_shards_than_patterns_errors_cleanly(self, capsys):
        from repro.cli import main

        assert main(["--patterns", "4", "--dims", "128", "--queries", "2",
                     "--shards", "8"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "cannot split" in err
