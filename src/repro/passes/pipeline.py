"""Textual pass-pipeline specifications (à la ``mlir-opt``).

``build_pipeline_from_spec("torch-to-cim,cim-fuse-ops,...", arch)`` turns a
comma-separated pass list into a :class:`PassManager`.  Pass names match
each pass's ``NAME``; passes that need the architecture receive it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.arch.spec import ArchSpec

from .pass_manager import PassManager


class PipelineError(ValueError):
    """Unknown pass name or missing architecture."""


def _registry() -> Dict[str, Callable]:
    # Imported lazily to avoid import cycles (transforms import passes).
    from repro.transforms.canonicalize import CanonicalizePass, CSEPass
    from repro.transforms.cim_fusion import CimFuseOpsPass
    from repro.transforms.cim_to_cam import CimToCamPass
    from repro.transforms.cim_to_loops import CimToLoopsPass
    from repro.transforms.partitioning import CimPartitionPass
    from repro.transforms.similarity_matching import SimilarityMatchingPass
    from repro.transforms.torch_to_cim import TorchToCimPass
    from repro.transforms.optimizations import resolve_optimization

    def needs_arch(factory):
        factory.needs_arch = True
        return factory

    return {
        "torch-to-cim": lambda arch: TorchToCimPass(),
        "cim-fuse-ops": lambda arch: CimFuseOpsPass(),
        "cim-similarity-match": lambda arch: SimilarityMatchingPass(),
        "canonicalize": lambda arch: CanonicalizePass(),
        "cse": lambda arch: CSEPass(),
        "cim-to-loops": lambda arch: CimToLoopsPass(),
        "cim-partition": needs_arch(
            lambda arch: CimPartitionPass(
                arch, resolve_optimization(arch).use_density
            )
        ),
        "cim-to-cam": needs_arch(lambda arch: CimToCamPass(arch)),
    }


def available_passes() -> list:
    """Names accepted by :func:`build_pipeline_from_spec`."""
    return sorted(_registry())


def build_pipeline_from_spec(
    spec: str, arch: Optional[ArchSpec] = None, verify_each: bool = True
) -> PassManager:
    """Parse ``"pass1,pass2,..."`` into a ready-to-run PassManager."""
    registry = _registry()
    pm = PassManager(verify_each=verify_each)
    for raw in spec.split(","):
        name = raw.strip()
        if not name:
            continue
        factory = registry.get(name)
        if factory is None:
            raise PipelineError(
                f"unknown pass {name!r}; available: {available_passes()}"
            )
        if getattr(factory, "needs_arch", False) and arch is None:
            raise PipelineError(f"pass {name!r} requires an ArchSpec")
        pm.add(factory(arch))
    return pm
