"""Fig. 9 — iso-capacity analysis: fixed 2^16 cells per array.

The subarray size varies from 256×256 (1 subarray/array) to 16×16
(256 subarrays/array) while each array always holds 65 536 cells; mats
per bank and arrays per mat stay at 4×4.  Paper claims asserted:

* iso-base energy stays within a moderate band across subarray sizes;
* total execution time varies moderately (paper: 58 µs → 150 µs for the
  full test set, ≈2.6×), growing with column count;
* the density configurations cut power substantially (paper: ~1.75×
  energy improvement for density at small/mid sizes and a "significant
  decrease in power").
"""

import pytest

from repro.arch import iso_capacity_spec

from harness import MNIST_QUERIES, print_series

SIZES = (16, 32, 64, 128, 256)
CONFIGS = ("latency", "density", "power+density")
LABELS = {
    "latency": "iso-base",
    "density": "iso-density",
    "power+density": "iso-density+power",
}


@pytest.fixture(scope="module")
def sweep(hdc_1bit):
    return {
        (target, n): hdc_1bit.run(iso_capacity_spec(n, target))
        for target in CONFIGS
        for n in SIZES
    }


def test_fig9a_latency(sweep):
    rows = [
        (
            LABELS[t],
            [sweep[(t, n)].query_latency_ns * MNIST_QUERIES * 1e-3
             for n in SIZES],  # µs for the full test set
        )
        for t in CONFIGS
    ]
    print_series("Fig. 9a: latency (µs, 10k queries)",
                 [f"{n}x{n}" for n in SIZES], rows)
    base = [sweep[("latency", n)].query_latency_ns for n in SIZES]
    # Execution time grows with column count but stays within a moderate
    # range (paper: 58 µs → 150 µs, ≈2.6×).
    assert base == sorted(base)
    assert base[-1] / base[0] < 4.0


def test_fig9b_power(sweep):
    rows = [
        (LABELS[t], [sweep[(t, n)].power_mw for n in SIZES])
        for t in CONFIGS
    ]
    print_series("Fig. 9b: power (mW)", [f"{n}x{n}" for n in SIZES], rows)
    for n in SIZES[1:]:  # at 16x16 density placement equals base
        base = sweep[("latency", n)].power_mw
        # Density and density+power cut power significantly.
        assert sweep[("density", n)].power_mw < 0.7 * base
        assert sweep[("power+density", n)].power_mw < \
            sweep[("density", n)].power_mw * 1.01


def test_fig9_iso_base_energy_band(sweep):
    """Iso-base energy stays within a moderate band (paper: nearly
    constant; our component model varies by the per-subarray readout
    share, documented in EXPERIMENTS.md)."""
    energy = [sweep[("latency", n)].energy.query_total for n in SIZES]
    assert max(energy) / min(energy) < 6.0


def test_fig9_density_energy_improvement(sweep):
    """Paper: ~1.75× average energy improvement for the density configs
    at small/mid subarray sizes."""
    for n in (32, 64):
        base = sweep[("latency", n)].energy.query_total
        dens = sweep[("density", n)].energy.query_total
        assert base / dens > 1.2


def test_capacity_invariant():
    for n in SIZES:
        assert iso_capacity_spec(n).cells_per_array == 1 << 16


def test_bench_iso_point(benchmark, hdc_1bit):
    benchmark.pedantic(
        lambda: hdc_1bit.run(iso_capacity_spec(64, "density")),
        rounds=3, iterations=1, warmup_rounds=1,
    )
