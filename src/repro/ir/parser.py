"""Parser for the generic textual IR form produced by the printer.

Supports full round-trips: ``parse_module(print_module(m))`` reconstructs an
isomorphic module.  The grammar is the generic MLIR operation form::

    op        ::= [results `=`] `"` name `"` `(` operands `)`
                  [`(` region (`, ` region)* `)`] [attr-dict] `:` fn-type
    region    ::= `{` block* `}`
    block     ::= [`^` id `(` args `)` `:`] op*
"""

from __future__ import annotations

from typing import Dict, List

from .attributes import parse_attribute
from .block import Block, Region
from .module import ModuleOp
from .operation import Operation, lookup_op_class
from .types import FunctionType, Type, parse_type
from .value import Value


class ParseError(ValueError):
    """Raised on malformed IR text, with position context."""


class _Scanner:
    """Character-level scanner with balanced-delimiter helpers."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> ParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        snippet = self.text[self.pos : self.pos + 30].replace("\n", "\\n")
        return ParseError(f"line {line}: {message} (at {snippet!r})")

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if c in " \t\n\r":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl < 0 else nl
            else:
                break

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def accept(self, token: str) -> bool:
        if self.startswith(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.accept(token):
            raise self.error(f"expected {token!r}")

    def identifier(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "._-$"
        ):
            self.pos += 1
        if start == self.pos:
            raise self.error("expected identifier")
        return self.text[start : self.pos]

    def string_literal(self) -> str:
        self.skip_ws()
        if not self.accept('"'):
            raise self.error("expected string literal")
        out = []
        while self.pos < len(self.text):
            c = self.text[self.pos]
            self.pos += 1
            if c == "\\":
                out.append(self.text[self.pos])
                self.pos += 1
            elif c == '"':
                return "".join(out)
            else:
                out.append(c)
        raise self.error("unterminated string literal")

    def value_name(self) -> str:
        self.skip_ws()
        if not self.accept("%"):
            raise self.error("expected value name")
        return "%" + self.identifier()

    def balanced(self, open_ch: str, close_ch: str) -> str:
        """Consume ``open_ch`` ... matching ``close_ch``; return the body."""
        self.skip_ws()
        self.expect(open_ch)
        depth, start, in_str = 1, self.pos, False
        while self.pos < len(self.text):
            c = self.text[self.pos]
            if in_str:
                if c == "\\":
                    self.pos += 1
                elif c == '"':
                    in_str = False
            elif c == '"':
                in_str = True
            elif c == open_ch:
                depth += 1
            elif c == close_ch:
                depth -= 1
                if depth == 0:
                    body = self.text[start : self.pos]
                    self.pos += 1
                    return body
            self.pos += 1
        raise self.error(f"unbalanced {open_ch!r}")


class _Parser:
    def __init__(self, text: str):
        self.scanner = _Scanner(text)
        self.values: Dict[str, Value] = {}

    # ------------------------------------------------------------ top level
    def parse_operation(self) -> Operation:
        sc = self.scanner
        result_names: List[str] = []
        if sc.peek() == "%":
            result_names.append(sc.value_name())
            while sc.accept(","):
                result_names.append(sc.value_name())
            sc.expect("=")
        name = sc.string_literal()
        sc.expect("(")
        operand_names: List[str] = []
        if not sc.accept(")"):
            operand_names.append(sc.value_name())
            while sc.accept(","):
                operand_names.append(sc.value_name())
            sc.expect(")")
        operands = [self._resolve(n) for n in operand_names]

        regions: List[Region] = []
        if sc.startswith("({") or sc.startswith("( {"):
            sc.expect("(")
            regions.append(self.parse_region())
            while sc.accept(","):
                regions.append(self.parse_region())
            sc.expect(")")

        attributes = {}
        if sc.peek() == "{":
            body = sc.balanced("{", "}")
            attributes = _parse_attr_dict(body)

        sc.expect(":")
        fn_type = self._parse_signature()
        if len(fn_type.inputs) != len(operands):
            raise sc.error(
                f"operand count mismatch for {name}: "
                f"{len(operands)} operands, {len(fn_type.inputs)} types"
            )
        for v, t in zip(operands, fn_type.inputs):
            if v.type != t:
                raise sc.error(
                    f"operand type mismatch for {name}: {v.type} != {t}"
                )

        cls = lookup_op_class(name)
        op = Operation.__new__(cls)
        Operation.__init__(
            op,
            name=name,
            operands=operands,
            result_types=list(fn_type.results),
            attributes=attributes,
            regions=0,
        )
        for region in regions:
            region.parent_op = op
            op.regions.append(region)
        if len(result_names) != len(op.results):
            raise sc.error(
                f"result count mismatch for {name}: "
                f"{len(result_names)} names, {len(op.results)} results"
            )
        for rname, res in zip(result_names, op.results):
            self.values[rname] = res
        return op

    def parse_region(self) -> Region:
        sc = self.scanner
        sc.expect("{")
        region = Region()
        block = Block()
        started = False
        while True:
            if sc.accept("}"):
                if started or block.operations or region.empty:
                    region.append(block)
                return region
            if sc.peek() == "^":
                if started or block.operations:
                    region.append(block)
                block = self._parse_block_header()
                started = True
                continue
            started = started or True
            block.append(self.parse_operation())

    def _parse_block_header(self) -> Block:
        sc = self.scanner
        sc.expect("^")
        sc.identifier()
        block = Block()
        if sc.accept("("):
            if not sc.accept(")"):
                while True:
                    vname = sc.value_name()
                    sc.expect(":")
                    ty = self._parse_single_type()
                    arg = block.add_argument(ty)
                    self.values[vname] = arg
                    if not sc.accept(","):
                        break
                sc.expect(")")
        sc.expect(":")
        return block

    # -------------------------------------------------------------- helpers
    def _resolve(self, name: str) -> Value:
        if name not in self.values:
            raise self.scanner.error(f"use of undefined value {name}")
        return self.values[name]

    def _parse_signature(self) -> FunctionType:
        sc = self.scanner
        inputs_body = sc.balanced("(", ")")
        inputs = (
            [parse_type(p) for p in _split_top(inputs_body)] if inputs_body.strip() else []
        )
        sc.expect("->")
        if sc.peek() == "(":
            outs_body = sc.balanced("(", ")")
            outputs = (
                [parse_type(p) for p in _split_top(outs_body)]
                if outs_body.strip()
                else []
            )
        else:
            outputs = [self._parse_single_type()]
        return FunctionType(inputs, outputs)

    def _parse_single_type(self) -> Type:
        """Scan one type spelling (no top-level spaces) and parse it."""
        sc = self.scanner
        sc.skip_ws()
        start = sc.pos
        depth = 0
        while sc.pos < len(sc.text):
            c = sc.text[sc.pos]
            if c in "<(":
                depth += 1
            elif c in ">)":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0 and c in " \t\n\r,:{}":
                break
            sc.pos += 1
        text = sc.text[start : sc.pos]
        if not text:
            raise sc.error("expected type")
        return parse_type(text)


def _split_top(text: str) -> List[str]:
    """Split comma-separated items at nesting depth zero."""
    parts, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "<(":
            depth += 1
        elif c == ")" or (c == ">" and (i == 0 or text[i - 1] != "-")):
            depth -= 1
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    if text[start:].strip():
        parts.append(text[start:])
    return [p.strip() for p in parts]


def _parse_attr_dict(body: str) -> Dict[str, object]:
    """Parse ``name = attr, name = attr`` from an attribute-dict body."""
    from .attributes import _split_commas

    attrs: Dict[str, object] = {}
    for entry in _split_commas(body):
        if not entry.strip():
            continue
        if "=" not in entry:
            raise ParseError(f"malformed attribute entry: {entry!r}")
        key, value = entry.split("=", 1)
        attrs[key.strip()] = _parse_attr_value(value.strip())
    return attrs


def _parse_attr_value(text: str):
    """Parse an attribute value, trying attribute then type spellings."""
    try:
        return parse_attribute(text)
    except ValueError:
        from .attributes import TypeAttr

        return TypeAttr(parse_type(text))


def parse_module(text: str) -> ModuleOp:
    """Parse textual IR whose top-level op is ``builtin.module``."""
    parser = _Parser(text)
    op = parser.parse_operation()
    parser.scanner.skip_ws()
    if parser.scanner.pos != len(parser.scanner.text):
        raise parser.scanner.error("trailing text after module")
    if not isinstance(op, ModuleOp):
        raise ParseError(f"expected builtin.module, got {op.name}")
    return op


def parse_operation(text: str) -> Operation:
    """Parse a single (possibly nested) operation from text."""
    parser = _Parser(text)
    return parser.parse_operation()
