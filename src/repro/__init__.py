"""C4CAM reproduction: a compiler for CAM-based in-memory accelerators.

Public entry points:

* :class:`repro.compiler.C4CAMCompiler` -- end-to-end TorchScript-to-CAM
  compilation and simulated execution.
* :mod:`repro.frontend` -- the mini-torch tracing frontend.
* :mod:`repro.arch` -- architecture specifications and technology models.
* :mod:`repro.simulator` -- the CAM functional/energy simulator substrate.
* :mod:`repro.runtime` -- the interpreter, batched query sessions,
  sharded multi-machine sessions, the replicated async serving layer
  and multi-tenant bank placement.

See ``docs/architecture.md`` for the layer-by-layer tour and
``docs/execution-model.md`` for the serving semantics.
"""

__version__ = "1.0.0"
