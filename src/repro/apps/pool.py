"""TenantPool: named similarity stores co-resident on one CAM fleet.

The runtime-library face of multi-tenant bank placement
(:mod:`repro.runtime.placement`): register named stored-pattern
matrices, open the pool once, and query any tenant — all stores share
one machine fleet instead of each monopolizing its own.  Under the hood
every tenant becomes the paper's Fig. 4a dot-similarity kernel, compiled
through :meth:`repro.compiler.C4CAMCompiler.compile_many`, so results
are bitwise identical to compiling each store alone and accounting is
per-tenant (each store charged for only its banks).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.simulator.metrics import ExecutionReport


def _dot_similarity_model(stored: np.ndarray, k: int, largest: bool):
    """The standard traced dot-similarity module over ``stored``."""
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=largest)

    return DotSimilarity()


class TenantPool:
    """Several named pattern stores packed onto one shared machine fleet.

    Usage::

        pool = TenantPool(spec)
        pool.add("faces", face_prototypes, k=1)
        pool.add("spam", spam_signatures, k=3)
        pool.open()                       # place + program everything
        values, indices = pool.run("faces", queries)
        print(pool.report("faces").summary())   # that tenant's banks only
        print(pool.report().summary())          # the whole fleet, once

    ``max_machines`` caps the fleet (over-packing raises
    :class:`~repro.runtime.placement.PlacementError` naming the tenant);
    ``num_replicas`` replicates the whole fleet for throughput; and
    :meth:`serve` opens the tenant-aware async engine
    (``submit(query, tenant=name)``).
    """

    def __init__(
        self,
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
        max_machines: Optional[int] = None,
        num_replicas: int = 1,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
    ):
        self.spec = spec
        self.tech = tech
        self.max_machines = max_machines
        self.num_replicas = num_replicas
        self.noise_sigma = noise_sigma
        self.noise_seed = noise_seed
        self._stores: Dict[str, tuple] = {}
        self._kernel = None

    # ------------------------------------------------------------- tenants
    @property
    def tenant_ids(self) -> List[str]:
        return list(self._stores)

    @property
    def num_tenants(self) -> int:
        return len(self._stores)

    @property
    def is_open(self) -> bool:
        return self._kernel is not None

    def add(
        self,
        tenant_id: str,
        stored: np.ndarray,
        k: int = 1,
        largest: bool = True,
    ) -> "TenantPool":
        """Register one tenant: a ``P×D`` store answering top-``k``
        dot-similarity queries.  Returns ``self`` for chaining."""
        if self._kernel is not None:
            raise RuntimeError(
                "the pool is already open; reset() before adding tenants"
            )
        if tenant_id in self._stores:
            raise ValueError(f"duplicate tenant id {tenant_id!r}")
        stored = np.atleast_2d(np.asarray(stored, dtype=np.float32))
        if not 1 <= k <= stored.shape[0]:
            raise ValueError(
                f"tenant {tenant_id!r}: k={k} out of range for "
                f"{stored.shape[0]} stored rows"
            )
        self._stores[tenant_id] = (stored, int(k), bool(largest))
        return self

    # ------------------------------------------------------------ lifecycle
    def open(self):
        """Compile, place and program every tenant; idempotent.

        Returns the underlying
        :class:`~repro.compiler.MultiTenantKernel`.
        """
        if self._kernel is None:
            if not self._stores:
                raise RuntimeError("the pool has no tenants; add() some")
            from repro.compiler import C4CAMCompiler
            from repro.frontend import placeholder

            compiler = C4CAMCompiler(self.spec, self.tech)
            self._kernel = compiler.compile_many(
                [
                    _dot_similarity_model(stored, k, largest)
                    for stored, k, largest in self._stores.values()
                ],
                [
                    [placeholder((1, stored.shape[1]))]
                    for stored, _k, _largest in self._stores.values()
                ],
                tenant_ids=list(self._stores),
                noise_sigma=self.noise_sigma,
                noise_seed=self.noise_seed,
                max_machines=self.max_machines,
                num_replicas=self.num_replicas,
            )
        return self._kernel

    def reset(self) -> None:
        """Close the pool; the next :meth:`open` re-places and
        re-programs (tenants may be added again before that)."""
        self._kernel = None

    @property
    def placement(self):
        """The bank-granular placement plan (opens the pool)."""
        return self.open().placement

    # ------------------------------------------------------------- queries
    def run(self, tenant_id: str, queries: np.ndarray) -> List[np.ndarray]:
        """Answer a ``B×D`` batch for ``tenant_id``; returns
        ``[values, indices]`` — bitwise identical to the store compiled
        alone on a private machine."""
        return self.open().run_batch(tenant_id, queries)

    def report(self, tenant_id: Optional[str] = None) -> ExecutionReport:
        """One tenant's accumulated lane, or the whole fleet's report."""
        return self.open().report(tenant_id)

    def serve(
        self,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
    ):
        """The tenant-aware async engine over the shared fleet
        (``submit(queries, tenant=...)``)."""
        return self.open().serve(
            max_batch=max_batch, max_wait=max_wait, time_scale=time_scale
        )

    def cluster(self, **cluster_kwargs):
        """A live :class:`~repro.runtime.cluster.Cluster` over the
        registered stores — the *dynamic* counterpart of :meth:`open`.

        Every registered store is compiled and admitted as its own
        tenant; the returned cluster then supports runtime
        ``admit``/``evict`` (with defragmenting re-placement),
        ``submit(queries, tenant=name, priority=, deadline=)`` and
        queue-depth autoscaling.  Keyword arguments configure the
        cluster (``max_machines`` defaults to the pool's).  The pool
        itself stays closed — the cluster owns its machines.
        """
        if not self._stores:
            raise RuntimeError("the pool has no tenants; add() some")
        from repro.compiler import C4CAMCompiler
        from repro.frontend import placeholder

        cluster_kwargs.setdefault("max_machines", self.max_machines)
        compiler = C4CAMCompiler(self.spec, self.tech)
        return compiler.compile_cluster(
            [
                _dot_similarity_model(stored, k, largest)
                for stored, k, largest in self._stores.values()
            ],
            [
                [placeholder((1, stored.shape[1]))]
                for stored, _k, _largest in self._stores.values()
            ],
            tenant_ids=list(self._stores),
            noise_sigma=self.noise_sigma,
            noise_seed=self.noise_seed,
            **cluster_kwargs,
        )
