"""``memref`` dialect: buffer-semantics memory ops.

The ``cim-to-cam`` conversion bufferizes tensors into memrefs (paper
§III-D2: "The cim to cam conversion pass also performs bufferization of
tensors"); the ``cam`` device ops then operate on memrefs.
"""

from __future__ import annotations

from typing import Sequence

from repro.ir.attributes import ArrayAttr, IntegerAttr
from repro.ir.operation import Operation, register_op
from repro.ir.types import MemRefType, TensorType
from repro.ir.value import Value


def _int_array(values: Sequence[int]) -> ArrayAttr:
    return ArrayAttr([IntegerAttr(int(v)) for v in values])


@register_op
class AllocOp(Operation):
    """Allocate an uninitialised buffer of a static shape."""

    OP_NAME = "memref.alloc"

    def __init__(self, result_type: MemRefType):
        if not isinstance(result_type, MemRefType):
            raise ValueError("memref.alloc result must be a memref type")
        super().__init__(result_types=[result_type])


@register_op
class DeallocOp(Operation):
    """Release a buffer produced by ``memref.alloc``."""

    OP_NAME = "memref.dealloc"
    HAS_SIDE_EFFECTS = True

    def __init__(self, buffer: Value):
        super().__init__(operands=[buffer])


@register_op
class CopyOp(Operation):
    """Copy the contents of one buffer into another of equal shape."""

    OP_NAME = "memref.copy"
    HAS_SIDE_EFFECTS = True

    def __init__(self, source: Value, dest: Value):
        super().__init__(operands=[source, dest])

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def dest(self) -> Value:
        return self.operands[1]


@register_op
class SubviewOp(Operation):
    """Static subview of a buffer (offsets/sizes/strides attributes).

    Dynamic offsets are passed as trailing ``offset_operands`` (index
    values); a ``-1`` in ``static_offsets`` marks the dynamic positions,
    matching MLIR's convention.
    """

    OP_NAME = "memref.subview"

    def __init__(
        self,
        source: Value,
        offsets: Sequence[int],
        sizes: Sequence[int],
        strides: Sequence[int] = None,
        offset_operands: Sequence[Value] = (),
    ):
        src_type = source.type
        if not isinstance(src_type, MemRefType):
            raise ValueError("subview source must be a memref")
        strides = list(strides) if strides is not None else [1] * len(sizes)
        result_type = MemRefType(list(sizes), src_type.element_type)
        super().__init__(
            operands=[source, *offset_operands],
            result_types=[result_type],
            attributes={
                "static_offsets": _int_array(offsets),
                "static_sizes": _int_array(sizes),
                "static_strides": _int_array(strides),
            },
        )

    @property
    def source(self) -> Value:
        return self.operands[0]

    @property
    def offsets(self) -> list:
        return [e.value for e in self.attributes["static_offsets"]]

    @property
    def sizes(self) -> list:
        return [e.value for e in self.attributes["static_sizes"]]


@register_op
class ToMemrefOp(Operation):
    """Bufferize a tensor value into a fresh read-only buffer."""

    OP_NAME = "memref.to_memref"

    def __init__(self, tensor: Value):
        ttype = tensor.type
        if not isinstance(ttype, TensorType):
            raise ValueError("to_memref operand must be a tensor")
        super().__init__(
            operands=[tensor],
            result_types=[MemRefType(ttype.shape, ttype.element_type)],
        )


@register_op
class ToTensorOp(Operation):
    """Read a buffer back into a tensor value.

    ``result_type`` may reshape to any tensor with the same element count
    (used when the bufferized layout differs from the SSA-level shape,
    e.g. a ``1×k`` buffer feeding a rank-1 ``k`` tensor).
    """

    OP_NAME = "memref.to_tensor"

    def __init__(self, buffer: Value, result_type: TensorType = None):
        mtype = buffer.type
        if not isinstance(mtype, MemRefType):
            raise ValueError("to_tensor operand must be a memref")
        if result_type is None:
            result_type = TensorType(mtype.shape, mtype.element_type)
        elif result_type.num_elements() != mtype.num_elements():
            raise ValueError(
                f"to_tensor reshape changes element count: "
                f"{mtype} -> {result_type}"
            )
        super().__init__(operands=[buffer], result_types=[result_type])


@register_op
class FillOp(Operation):
    """Fill a buffer with one constant scalar (used to zero accumulators)."""

    OP_NAME = "memref.fill"
    HAS_SIDE_EFFECTS = True

    def __init__(self, buffer: Value, value: float = 0.0):
        from repro.ir.attributes import FloatAttr

        super().__init__(
            operands=[buffer], attributes={"value": FloatAttr(float(value))}
        )

    @property
    def value(self) -> float:
        return self.attributes["value"].value


@register_op
class LoadOp(Operation):
    """Load one element at dynamic indices."""

    OP_NAME = "memref.load"

    def __init__(self, buffer: Value, indices: Sequence[Value]):
        mtype = buffer.type
        super().__init__(
            operands=[buffer, *indices],
            result_types=[mtype.element_type],
        )


@register_op
class StoreOp(Operation):
    """Store one element at dynamic indices."""

    OP_NAME = "memref.store"
    HAS_SIDE_EFFECTS = True

    def __init__(self, value: Value, buffer: Value, indices: Sequence[Value]):
        super().__init__(operands=[value, buffer, *indices])
