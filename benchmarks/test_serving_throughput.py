"""Replicated async serving throughput (2 replicas vs. 1 synchronous).

Before this layer the runtime served one synchronous batch at a time
from a single copy of the store: a client submitted a batch, waited for
the device, then submitted the next — the machine idled through every
round trip and there was exactly one machine.  The serving layer
replicates the store (``compile(num_replicas=R)``) and decouples issue
from completion (``kernel.serve()``), so queued work keeps every replica
busy back-to-back.

Device time is simulated; the engine's ``time_scale`` knob holds each
replica for its micro-batch's simulated latency (here ~8 ms wall per
batch), reproducing the fixed-latency-device economics the async-memory
papers exploit.  With service time dominating host overhead, 2 replicas
under an open-loop queued workload must clear **>= 2x** the wall-clock
throughput of the synchronous single-copy loop — the replication win
(2x machines) compounding with async pipelining (no idle round trips).

Asserted: the >= 2x wall-clock floor, a matching >= 2x *simulated*
aggregate-throughput ratio from the deployment report (deterministic),
and bitwise-identical results to a direct ``run_batch``.
"""

import time

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder

from harness import print_series

# Wall-clock-sensitive: excluded from the deterministic CI tier
# (`-m "not benchmark"`); the benchmarks-smoke job runs it with floors.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

PATTERNS = 16
DIMS = 1024
ROWS_PER_REQUEST = 8     # one client request = one micro-batch
REQUESTS = 14
SERVICE_S = 0.005        # wall-clock hold per micro-batch (simulated)
ATTEMPTS = 3             # wall-clock measurement retries (CI jitter)


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, 1, largest=True)

    return DotSimilarity()


@pytest.fixture(scope="module")
def serving_workload():
    rng = np.random.default_rng(7)
    stored = rng.choice([-1.0, 1.0], (PATTERNS, DIMS)).astype(np.float32)
    queries = rng.choice(
        [-1.0, 1.0], (REQUESTS * ROWS_PER_REQUEST, DIMS)
    ).astype(np.float32)
    compiler = C4CAMCompiler(paper_spec(rows=32, cols=32))
    single = compiler.compile(_dot_model(stored), [placeholder((1, DIMS))])
    duo = compiler.compile(
        _dot_model(stored), [placeholder((1, DIMS))], num_replicas=2
    )
    # Warm both deployments (programs the machines) and calibrate the
    # wall pace so one ROWS_PER_REQUEST micro-batch holds a replica for
    # SERVICE_S seconds.
    single.run_batch(queries[:ROWS_PER_REQUEST])
    per_batch_ns = single.last_report.query_latency_ns
    duo.run_batch(queries[:ROWS_PER_REQUEST])
    duo.session().reset()
    return dict(
        stored=stored,
        queries=queries,
        single=single,
        duo=duo,
        time_scale=SERVICE_S / per_batch_ns,
    )


def _requests(queries):
    return np.split(queries, REQUESTS)


def _closed_loop_sync(kernel, queries, time_scale) -> float:
    """The pre-serving model: one batch in flight, wait, repeat."""
    with kernel.serve(
        max_batch=ROWS_PER_REQUEST, max_wait=0.0, time_scale=time_scale
    ) as engine:
        t0 = time.perf_counter()
        for request in _requests(queries):
            engine.submit(request).result(timeout=60)
        return time.perf_counter() - t0


def _open_loop_async(kernel, queries, time_scale):
    """The serving model: queue everything, let the replicas drain it."""
    with kernel.serve(
        max_batch=ROWS_PER_REQUEST, max_wait=0.0, time_scale=time_scale
    ) as engine:
        t0 = time.perf_counter()
        futures = [engine.submit(r) for r in _requests(queries)]
        parts = [f.result(timeout=60) for f in futures]
        wall = time.perf_counter() - t0
    return wall, parts


def test_two_replicas_double_throughput(serving_workload):
    """2 paced replicas under queued load >= 2x the sync single copy."""
    single, duo = serving_workload["single"], serving_workload["duo"]
    queries = serving_workload["queries"]
    time_scale = serving_workload["time_scale"]
    total = len(queries)

    # Deterministic half: the deployment report's aggregate throughput.
    wall_async, parts = _open_loop_async(duo, queries, time_scale)
    deployment = duo.session().report()
    assert deployment.queries == total
    sim_ratio = (
        deployment.throughput_qps / single.last_report.throughput_qps
    )
    # Balanced lanes serve concurrently: the simulated aggregate rate is
    # exactly two machines' worth.
    assert sim_ratio >= 1.99, f"simulated ratio only {sim_ratio:.2f}x"

    # Functional half: serving returned exactly what run_batch returns.
    direct_v, direct_i = single.run_batch(queries)
    np.testing.assert_array_equal(np.vstack([p[0] for p in parts]), direct_v)
    np.testing.assert_array_equal(np.vstack([p[1] for p in parts]), direct_i)

    # Wall-clock half: retry a few times so a scheduler hiccup in one
    # run cannot fail the floor; the ratio is structural (14 serialized
    # round trips vs 7 paced batches per replica), not a lucky timing.
    speedup = 0.0
    for _ in range(ATTEMPTS):
        wall_sync = _closed_loop_sync(single, queries, time_scale)
        duo.session().reset()
        wall_async, _parts = _open_loop_async(duo, queries, time_scale)
        speedup = wall_sync / wall_async
        if speedup >= 2.0:
            break

    print_series(
        f"serving throughput ({REQUESTS} x {ROWS_PER_REQUEST}-row "
        f"requests, {SERVICE_S * 1e3:.0f} ms device service)",
        ["wall s", "queries/s"],
        [
            ("sync, 1 copy", [wall_sync, total / wall_sync]),
            ("async, 2 replicas", [wall_async, total / wall_async]),
            ("speedup", [speedup, speedup]),
        ],
    )
    print(
        f"simulated aggregate throughput: {deployment.throughput_qps:.3e} "
        f"q/s ({sim_ratio:.2f}x one machine)"
    )
    assert speedup >= 2.0, f"only {speedup:.2f}x over synchronous serving"


def test_replica_lanes_balance_under_load(serving_workload):
    """The least-loaded router splits a queued workload evenly."""
    duo = serving_workload["duo"]
    queries = serving_workload["queries"]
    duo.session().reset()
    _wall, _parts = _open_loop_async(
        duo, queries, serving_workload["time_scale"]
    )
    lanes = duo.session().lane_reports()
    assert sorted(lane.queries for lane in lanes) == [
        len(queries) // 2, len(queries) // 2
    ]
