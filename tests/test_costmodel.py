"""Cost-model calibration: predictions pinned to measured sim reports.

Covers :mod:`repro.runtime.costmodel` — the
:class:`~repro.runtime.costmodel.PlacementCost` composition rules must
reproduce the simulator's own accounting within tolerance: solo batch
latency composes linearly per query, co-resident tenants pay the
:func:`~repro.simulator.metrics.combine_serial_reports` serialization
penalty, sharded tenants pay the host merge hop — across tcam and acam
presets.  Plus the scoring surface the cost packer ranks on: hot
co-residents cost more than spread ones, deadline misses are penalized,
and hints validate.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.costmodel import (
    PlacementCost,
    TenantProfile,
    TrafficHint,
    profiles_from_reports,
)

#: Relative tolerance for calibration asserts.  The sim is
#: deterministic and the model mirrors its combiners exactly, so the
#: only slack needed is floating-point accumulation order.
TOL = 1e-9

PRESETS = {
    "tcam": replace(paper_spec(32, 32, cam_type="tcam"), banks=2),
    "acam": replace(paper_spec(32, 32, cam_type="acam"), banks=2),
}


def compile_dot(dot_kernel, stored, spec, k=1, **kw):
    return C4CAMCompiler(spec).compile(
        dot_kernel(stored, k=k), [placeholder((1, stored.shape[1]))], **kw
    )


def bipolar(rng, rows, dims=64):
    return rng.choice([-1.0, 1.0], (rows, dims)).astype(np.float32)


# --------------------------------------------------------------------------
# Hints and profiles
# --------------------------------------------------------------------------
class TestTrafficHint:
    def test_validates(self):
        with pytest.raises(ValueError, match="rate"):
            TrafficHint("t", rate_qps=-1.0)
        with pytest.raises(ValueError, match="batch"):
            TrafficHint("t", batch_rows=0)

    def test_defaults_neutral(self):
        hint = TrafficHint("t")
        assert hint.rate_qps == 1.0
        assert hint.batch_rows == 1
        assert hint.priority == 0
        assert hint.deadline_s is None


class TestTenantProfile:
    def test_from_report(self, dot_kernel, rng):
        kernel = compile_dot(dot_kernel, bipolar(rng, 8), PRESETS["tcam"])
        kernel.run_batch(bipolar(rng, 4))
        report = kernel.last_report
        profile = TenantProfile.from_report("t", report)
        assert profile.tenant_id == "t"
        assert profile.per_query_latency_ns == pytest.approx(
            report.per_query_latency_ns, rel=TOL
        )
        assert profile.per_query_energy_pj == pytest.approx(
            report.per_query_energy_pj, rel=TOL
        )
        assert profile.setup_latency_ns == report.setup_latency_ns
        assert profile.banks == report.banks_used
        assert profile.queries_observed == report.queries

    def test_profiles_from_reports(self, dot_kernel, rng):
        kernel = compile_dot(dot_kernel, bipolar(rng, 8), PRESETS["tcam"])
        kernel.run_batch(bipolar(rng, 2))
        profiles = profiles_from_reports({"a": kernel.last_report})
        assert set(profiles) == {"a"}
        assert profiles["a"].tenant_id == "a"

    def test_hints_must_be_profiled(self):
        profile = TenantProfile(tenant_id="a", per_query_latency_ns=10.0)
        with pytest.raises(ValueError, match="unprofiled"):
            PlacementCost([profile], hints=[TrafficHint("b")])


# --------------------------------------------------------------------------
# Calibration: solo, co-resident, sharded — tcam and acam
# --------------------------------------------------------------------------
@pytest.mark.parametrize("preset", sorted(PRESETS))
class TestCalibration:
    def test_solo_latency_and_energy(self, dot_kernel, rng, preset):
        """A profile from one measured batch predicts another batch
        size exactly (sim latency is linear in queries)."""
        spec = PRESETS[preset]
        kernel = compile_dot(dot_kernel, bipolar(rng, 8), spec, k=2)
        kernel.run_batch(bipolar(rng, 3))
        model = PlacementCost(
            [TenantProfile.from_report("t", kernel.last_report)]
        )
        kernel.reset(reprogram=True)
        queries = bipolar(rng, 7)
        kernel.run_batch(queries)
        measured = kernel.last_report
        assert model.predict_query_latency_ns("t", 7) == pytest.approx(
            measured.query_latency_ns, rel=TOL
        )
        assert model.predict_energy_pj("t", 7) == pytest.approx(
            measured.energy.query_total, rel=TOL
        )
        assert model.calibration_error("t", measured) < 1e-6

    def test_co_resident_serialization(self, dot_kernel, rng, preset):
        """Two tenants on one machine: the machine's busy time is the
        *sum* of their batch latencies (combine_serial_reports)."""
        spec = PRESETS[preset]
        kernels = {
            tid: compile_dot(dot_kernel, bipolar(rng, rows), spec)
            for tid, rows in (("a", 8), ("b", 12))
        }
        batches = {"a": bipolar(rng, 3), "b": bipolar(rng, 5)}
        profiles = {}
        for tid, kernel in kernels.items():
            kernel.run_batch(batches[tid])
            profiles[tid] = TenantProfile.from_report(
                tid, kernel.last_report
            )
        model = PlacementCost(profiles)
        from repro.simulator.metrics import combine_serial_reports

        machine = combine_serial_reports(
            [kernels["a"].last_report, kernels["b"].last_report]
        )
        assert model.predict_serial_latency_ns(
            {"a": 3, "b": 5}
        ) == pytest.approx(machine.query_latency_ns, rel=TOL)

    def test_sharded_merge_hop(self, dot_kernel, rng, preset):
        """A sharded batch: max over shards plus the host top-k hop —
        exactly the ShardedSession aggregation."""
        spec = PRESETS[preset]
        kernel = compile_dot(
            dot_kernel, bipolar(rng, 24), spec, k=2, num_shards=2
        )
        assert kernel.num_shards == 2
        queries = bipolar(rng, 4)
        kernel.run_batch(queries)
        measured = kernel.last_report
        session = kernel.session()
        shard_latencies = [
            shard_session.last_report.query_latency_ns
            for shard_session in session.sessions
        ]
        model = PlacementCost(
            [TenantProfile.from_report("t", measured)],
            tech=kernel.tech,
        )
        # The host hop re-ranks the *concatenated* shard candidates:
        # each shard contributes min(k, shard_rows) columns.
        candidates = 2 * len(session.sessions)
        predicted = model.predict_sharded_latency_ns(
            shard_latencies, queries=4, candidates=candidates
        )
        assert predicted == pytest.approx(
            measured.query_latency_ns, rel=TOL
        )


# --------------------------------------------------------------------------
# Scoring
# --------------------------------------------------------------------------
def _hot_cold_model():
    profiles = [
        TenantProfile(tenant_id="hot1", per_query_latency_ns=100.0),
        TenantProfile(tenant_id="hot2", per_query_latency_ns=100.0),
        TenantProfile(tenant_id="cold1", per_query_latency_ns=100.0),
        TenantProfile(tenant_id="cold2", per_query_latency_ns=100.0),
    ]
    hints = [
        TrafficHint("hot1", rate_qps=40_000.0, batch_rows=4),
        TrafficHint("hot2", rate_qps=40_000.0, batch_rows=4),
        TrafficHint("cold1", rate_qps=10.0),
        TrafficHint("cold2", rate_qps=10.0),
    ]
    return PlacementCost(profiles, hints=hints)


class TestScoring:
    def test_spreading_hot_tenants_is_cheaper(self):
        model = _hot_cold_model()
        co_packed = model.score_groups(
            [["hot1", "hot2"], ["cold1", "cold2"]]
        )
        spread = model.score_groups(
            [["hot1", "cold1"], ["hot2", "cold2"]]
        )
        assert spread.total < co_packed.total
        # The hot tenants' interference is what the co-pack pays for.
        assert (
            co_packed.interference_ns["hot1"]
            > spread.interference_ns["hot1"]
        )

    def test_interference_zero_when_alone(self):
        model = _hot_cold_model()
        solo = model.score_groups(
            [["hot1"], ["hot2"], ["cold1"], ["cold2"]]
        )
        for tid in ("hot1", "hot2", "cold1", "cold2"):
            assert solo.interference_ns[tid] == pytest.approx(0.0)

    def test_slo_violation_penalized_and_reported(self):
        profiles = [
            TenantProfile(tenant_id="a", per_query_latency_ns=1000.0)
        ]
        strict = PlacementCost(
            profiles,
            hints=[TrafficHint("a", rate_qps=100.0, deadline_s=1e-7)],
        )
        loose = PlacementCost(
            profiles,
            hints=[TrafficHint("a", rate_qps=100.0, deadline_s=1.0)],
        )
        missed = strict.score_groups([["a"]])
        met = loose.score_groups([["a"]])
        assert missed.slo_violations == ("a",)
        assert met.slo_violations == ()
        assert missed.total > met.total * 100

    def test_has_traffic_and_with_hints(self):
        profiles = [
            TenantProfile(tenant_id="a", per_query_latency_ns=10.0)
        ]
        silent = PlacementCost(
            profiles, hints=[TrafficHint("a", rate_qps=0.0)]
        )
        assert not silent.has_traffic
        loud = silent.with_hints([TrafficHint("a", rate_qps=5.0)])
        assert loud.has_traffic
        assert loud.profiles == silent.profiles

    def test_amortized_setup_decays_with_rate(self):
        profiles = [
            TenantProfile(
                tenant_id="a",
                per_query_latency_ns=10.0,
                setup_latency_ns=1e6,
            )
        ]
        rare = PlacementCost(
            profiles, hints=[TrafficHint("a", rate_qps=1.0)]
        )
        busy = PlacementCost(
            profiles, hints=[TrafficHint("a", rate_qps=1000.0)]
        )
        assert busy.amortized_setup_ns("a") < rare.amortized_setup_ns("a")

    def test_score_matches_score_groups_on_plan(self, dot_kernel, rng):
        from repro.runtime.placement import plan_placement, tenant_demand

        spec = PRESETS["tcam"]
        kernels = {
            tid: compile_dot(dot_kernel, bipolar(rng, rows), spec)
            for tid, rows in (("a", 8), ("b", 12))
        }
        profiles = {}
        for tid, kernel in kernels.items():
            kernel.run_batch(bipolar(rng, 2))
            profiles[tid] = TenantProfile.from_report(
                tid, kernel.last_report
            )
        model = PlacementCost(
            profiles, hints=[TrafficHint("a", 10.0), TrafficHint("b", 5.0)]
        )
        demands = [
            tenant_demand(tid, kernels[tid].query_programs[0].plan, spec)
            for tid in sorted(kernels)
        ]
        plan = plan_placement(demands, spec)
        by_plan = model.score(plan)
        by_groups = model.score_groups([
            [a.tenant_id for a in plan.machine_tenants(m)]
            for m in range(plan.num_machines)
        ])
        assert by_plan.total == pytest.approx(by_groups.total, rel=TOL)

    def test_describe_readable(self):
        model = _hot_cold_model()
        text = model.score_groups([["hot1", "cold1"]]).describe()
        assert "hot1" in text
