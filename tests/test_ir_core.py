"""Unit tests for Values, Operations, Blocks and Regions."""

import pytest

from repro.dialects import arith as arith_d
from repro.dialects import func as func_d
from repro.ir.block import Block, Region
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation, lookup_op_class, register_op
from repro.ir.types import FunctionType, f32, index
from repro.ir.value import BlockArgument, OpResult


def make_func(in_types=(), out_types=()):
    m = ModuleOp()
    f = func_d.FuncOp("test", FunctionType(list(in_types), list(out_types)))
    m.append(f)
    return m, f


class TestOperationBasics:
    def test_generic_construction(self):
        op = Operation("foo.bar", result_types=[index])
        assert op.name == "foo.bar"
        assert op.dialect == "foo"
        assert op.num_results == 1
        assert isinstance(op.results[0], OpResult)

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Operation()

    def test_single_result_property(self):
        op = Operation("t.x", result_types=[index])
        assert op.result is op.results[0]

    def test_result_property_multi_raises(self):
        op = Operation("t.x", result_types=[index, index])
        with pytest.raises(ValueError):
            _ = op.result

    def test_operand_type_check(self):
        with pytest.raises(TypeError):
            Operation("t.x", operands=["not a value"])

    def test_attributes_coerced(self):
        op = Operation("t.x", attributes={"n": 3, "s": "hi"})
        assert op.attributes["n"].value == 3
        assert op.attributes["s"].value == "hi"


class TestUseLists:
    def test_uses_tracked(self):
        c = arith_d.ConstantOp(1)
        add = arith_d.AddIOp(c.result, c.result)
        assert len(c.result.uses) == 2
        assert list(c.result.users()) == [add]

    def test_replace_all_uses_with(self):
        a = arith_d.ConstantOp(1)
        b = arith_d.ConstantOp(2)
        add = arith_d.AddIOp(a.result, a.result)
        a.result.replace_all_uses_with(b.result)
        assert not a.result.has_uses
        assert add.operands[0] is b.result
        assert add.operands[1] is b.result

    def test_replace_with_self_is_noop(self):
        a = arith_d.ConstantOp(1)
        arith_d.AddIOp(a.result, a.result)
        a.result.replace_all_uses_with(a.result)
        assert len(a.result.uses) == 2

    def test_set_operand(self):
        a = arith_d.ConstantOp(1)
        b = arith_d.ConstantOp(2)
        add = arith_d.AddIOp(a.result, a.result)
        add.set_operand(0, b.result)
        assert add.operands[0] is b.result
        assert len(a.result.uses) == 1

    def test_drop_all_operands(self):
        a = arith_d.ConstantOp(1)
        add = arith_d.AddIOp(a.result, a.result)
        add.drop_all_operands()
        assert add.num_operands == 0
        assert not a.result.has_uses


class TestErasure:
    def test_erase_with_uses_raises(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        b.create(arith_d.AddIOp, c.result, c.result)
        with pytest.raises(RuntimeError):
            c.erase()

    def test_erase_removes_from_block(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        assert len(f.body) == 1
        c.erase()
        assert len(f.body) == 0
        assert c.parent_block is None

    def test_replace_with(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        add = b.create(arith_d.AddIOp, c1.result, c1.result)
        add.replace_with([c2.result])
        assert add.parent_block is None

    def test_replace_with_count_mismatch(self):
        c = arith_d.ConstantOp(1)
        with pytest.raises(ValueError):
            c.replace_with([])


class TestMovement:
    def test_move_before(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        c2.move_before(c1)
        assert f.body.operations == [c2, c1]

    def test_move_after(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        c1.move_after(c2)
        assert f.body.operations == [c2, c1]


class TestBlocksAndRegions:
    def test_block_arguments(self):
        blk = Block([index, f32])
        assert len(blk.arguments) == 2
        assert isinstance(blk.arguments[0], BlockArgument)
        assert blk.arguments[1].type == f32

    def test_add_argument(self):
        blk = Block()
        arg = blk.add_argument(index)
        assert arg.index == 0 and arg.block is blk

    def test_double_adoption_rejected(self):
        blk1, blk2 = Block(), Block()
        op = arith_d.ConstantOp(1)
        blk1.append(op)
        with pytest.raises(RuntimeError):
            blk2.append(op)

    def test_region_entry_block(self):
        r = Region()
        with pytest.raises(ValueError):
            _ = r.entry_block
        blk = r.append(Block())
        assert r.entry_block is blk

    def test_parent_chain(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        assert c.parent_block is f.body
        assert c.parent_op is f
        assert f.parent_op is m

    def test_terminator_detection(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        assert f.body.terminator is None
        b.create(func_d.ReturnOp, [])
        assert f.body.terminator is not None


class TestWalkAndClone:
    def test_walk_preorder(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        b.create(arith_d.ConstantOp, 1)
        names = [op.name for op in m.walk()]
        assert names == ["builtin.module", "func.func", "arith.constant"]

    def test_walk_postorder(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        b.create(arith_d.ConstantOp, 1)
        names = [op.name for op in m.walk(post_order=True)]
        assert names == ["arith.constant", "func.func", "builtin.module"]

    def test_clone_is_deep(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        b.create(arith_d.AddIOp, c.result, c.result)
        m2 = m.clone()
        ops = list(m2.walk())
        assert len(ops) == len(list(m.walk()))
        for o1, o2 in zip(m.walk(), m2.walk()):
            assert o1.name == o2.name
            assert o1 is not o2 or o1 is m  # all distinct
        # mutating the clone leaves the original intact
        clone_add = [o for o in m2.walk() if o.name == "arith.addi"][0]
        clone_add.erase()
        assert any(o.name == "arith.addi" for o in m.walk())

    def test_clone_remaps_internal_uses(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        b.create(arith_d.AddIOp, c.result, c.result)
        m2 = m.clone()
        c2, add2 = list(m2.functions())[0].body.operations
        assert add2.operands[0] is c2.result


class TestRegistry:
    def test_lookup_registered(self):
        assert lookup_op_class("arith.constant") is arith_d.ConstantOp

    def test_lookup_unknown_returns_generic(self):
        assert lookup_op_class("nope.nope") is Operation

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            @register_op
            class Dup(Operation):
                OP_NAME = "arith.constant"

    def test_register_requires_dotted_name(self):
        with pytest.raises(ValueError):
            @register_op
            class Bad(Operation):
                OP_NAME = "nodot"


class TestModuleOp:
    def test_lookup_symbol(self):
        m, f = make_func()
        assert m.lookup_symbol("test") is f
        assert m.lookup_symbol("missing") is None

    def test_functions_iterator(self):
        m, f = make_func()
        assert list(m.functions()) == [f]
