"""Evaluation utilities: sweeps, comparisons and table export.

The design-space exploration of paper §IV-C is a grid of (architecture ×
optimization target) points.  This module runs such grids over any
similarity kernel, returns structured results and exports CSV — the
plumbing behind the examples and benchmark harness.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.compiler import C4CAMCompiler
from repro.simulator.metrics import ExecutionReport


@dataclass(frozen=True)
class SweepPoint:
    """One (architecture, target) measurement."""

    label: str
    rows: int
    cols: int
    target: str
    report: ExecutionReport

    @property
    def latency_ns(self) -> float:
        return self.report.per_query_latency_ns

    @property
    def energy_pj(self) -> float:
        return self.report.per_query_energy_pj

    @property
    def power_mw(self) -> float:
        return self.report.power_mw

    @property
    def edp(self) -> float:
        return self.report.edp


@dataclass
class SweepResult:
    """All points of one sweep, with lookup and export helpers."""

    points: List[SweepPoint] = field(default_factory=list)

    def add(self, point: SweepPoint) -> None:
        self.points.append(point)

    def get(self, target: str, rows: int, cols: int) -> SweepPoint:
        for p in self.points:
            if (p.target, p.rows, p.cols) == (target, rows, cols):
                return p
        raise KeyError(f"no sweep point ({target}, {rows}x{cols})")

    def series(self, target: str, metric: str) -> List[float]:
        """Metric values for one target, in insertion order."""
        return [
            getattr(p, metric) for p in self.points if p.target == target
        ]

    def targets(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.target not in seen:
                seen.append(p.target)
        return seen

    def to_csv(self) -> str:
        """CSV with one row per point (label, geometry, metrics)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(
            ["label", "rows", "cols", "target", "latency_ns",
             "energy_pj", "power_mw", "edp_njs", "subarrays", "banks"]
        )
        for p in self.points:
            writer.writerow([
                p.label, p.rows, p.cols, p.target,
                f"{p.latency_ns:.4f}", f"{p.energy_pj:.4f}",
                f"{p.power_mw:.6f}", f"{p.edp:.6e}",
                p.report.subarrays_used, p.report.banks_used,
            ])
        return buf.getvalue()

    def ratio(self, target: str, baseline: str, metric: str) -> List[float]:
        """Per-size ratios of a target's metric against a baseline's."""
        num = self.series(target, metric)
        den = self.series(baseline, metric)
        if len(num) != len(den):
            raise ValueError("sweep series have different lengths")
        return [n / d for n, d in zip(num, den)]


KernelFactory = Callable[[], Tuple[object, Sequence]]
"""Returns (traceable model, example inputs) — e.g. ``HDCModel.kernel``."""


def run_sweep(
    kernel_factory: KernelFactory,
    inputs: Sequence[np.ndarray],
    specs: Iterable[Tuple[str, ArchSpec]],
    tech: TechnologyModel = FEFET_45NM,
) -> SweepResult:
    """Compile and execute the kernel on every (label, spec) point."""
    result = SweepResult()
    for label, spec in specs:
        model, example = kernel_factory()
        kernel = C4CAMCompiler(spec, tech).compile(model, example)
        kernel(*inputs)
        result.add(
            SweepPoint(
                label=label,
                rows=spec.rows,
                cols=spec.cols,
                target=spec.optimization_target,
                report=kernel.last_report,
            )
        )
    return result


def dse_grid(
    sizes: Sequence[int] = (16, 32, 64, 128, 256),
    targets: Sequence[str] = ("latency", "power", "density", "power+density"),
) -> List[Tuple[str, ArchSpec]]:
    """The paper's Fig. 8 grid as (label, spec) pairs."""
    from repro.arch.presets import dse_spec

    return [
        (f"{target}/{n}x{n}", dse_spec(n, target))
        for target in targets
        for n in sizes
    ]


def format_table(
    result: SweepResult,
    metric: str,
    sizes: Sequence[int],
    title: str = "",
) -> str:
    """Fixed-width table of one metric: rows = targets, cols = sizes."""
    lines = []
    if title:
        lines.append(f"=== {title} ===")
    header = f"{'config':>16}" + "".join(f"{n:>12}" for n in sizes)
    lines.append(header)
    for target in result.targets():
        values = result.series(target, metric)
        cells = "".join(f"{v:>12.4g}" for v in values)
        lines.append(f"{target:>16}" + cells)
    return "\n".join(lines)
