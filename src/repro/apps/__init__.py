"""Benchmark applications: HDC and KNN, pattern matching, multi-tenant
store pools, plus synthetic datasets."""

from .datasets import (
    Dataset,
    pad_features,
    pad_rows,
    synthetic_mnist,
    synthetic_pneumonia,
)
from .hdc import HDCEncoder, HDCModel, train_hdc
from .knn import KNNModel, build_knn
from .matching import MatchResult, PatternMatcher, ShardedPatternMatcher
from .pool import TenantPool

__all__ = [
    "Dataset",
    "HDCEncoder",
    "HDCModel",
    "KNNModel",
    "MatchResult",
    "PatternMatcher",
    "ShardedPatternMatcher",
    "TenantPool",
    "build_knn",
    "pad_features",
    "pad_rows",
    "synthetic_mnist",
    "synthetic_pneumonia",
    "train_hdc",
]
