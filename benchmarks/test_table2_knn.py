"""Table II — EDP and power for KNN execution (cam-based vs cam-power).

Paper values (Pneumonia, absolute magnitudes testbed-specific):

    EDP (nJ·s): cam-based 0.75 → 0.05, cam-power 1.32 → 0.23 (16→256)
    POWER (W):  cam-based 44.1 → 0.86, cam-power 25.2 → 0.19

Asserted shapes: EDP and power both fall as subarrays grow; cam-power has
*higher* EDP but *lower* power than cam-based at every size; the paper
notes KNN magnitudes far exceed HDC because the dataset needs many banks.
"""

import pytest

from repro.arch import dse_spec

from harness import print_series

SIZES = (16, 32, 64, 128, 256)
CONFIGS = ("latency", "power")
LABELS = {"latency": "cam-based", "power": "cam-power"}


@pytest.fixture(scope="module")
def sweep(knn_workload):
    return {
        (target, n): knn_workload.run(
            dse_spec(n, target).with_subarray(n, n)
        )
        for target in CONFIGS
        for n in SIZES
    }


def test_table2_edp_and_power(sweep):
    rows = []
    for target in CONFIGS:
        rows.append((
            f"EDP {LABELS[target]}",
            [sweep[(target, n)].edp * 1e9 for n in SIZES],  # nJ*s scale
        ))
    for target in CONFIGS:
        rows.append((
            f"P(mW) {LABELS[target]}",
            [sweep[(target, n)].power_mw for n in SIZES],
        ))
    print_series("Table II: KNN EDP and power",
                 [f"{n}x{n}" for n in SIZES], rows)

    # cam-based EDP and power fall monotonically with subarray size.
    based_edp = [sweep[("latency", n)].edp for n in SIZES]
    assert based_edp == sorted(based_edp, reverse=True)
    for target in CONFIGS:
        power = [sweep[(target, n)].power_mw for n in SIZES]
        assert power == sorted(power, reverse=True)
        # EDP trends strongly downward overall (our model's cam-power EDP
        # upticks slightly at 256x256 where serialization dominates; the
        # paper's decreases throughout - see EXPERIMENTS.md).
        edp = [sweep[(target, n)].edp for n in SIZES]
        assert edp[-1] < 0.7 * edp[0]
        assert edp[:4] == sorted(edp[:4], reverse=True)

    for n in SIZES:
        based = sweep[("latency", n)]
        pwr = sweep[("power", n)]
        # cam-power trades EDP for power at every size (Table II rows).
        assert pwr.edp > based.edp
        assert pwr.power_mw < based.power_mw


def test_knn_dwarfs_hdc(sweep, hdc_1bit):
    """Paper §IV-C1: KNN energy/latency far exceed HDC (dataset size)."""
    knn = sweep[("latency", 32)]
    hdc = hdc_1bit.run(dse_spec(32))
    assert knn.energy.query_total > 10 * hdc.energy.query_total
    assert knn.subarrays_used >= 4 * hdc.subarrays_used
    assert knn.banks_used >= 4 * hdc.banks_used


def test_power_ratio_range(sweep):
    """cam-power power share roughly halves and keeps improving with N
    (paper: 0.57x at 16x16 → 0.22x at 256x256)."""
    ratios = [
        sweep[("power", n)].power_mw / sweep[("latency", n)].power_mw
        for n in SIZES
    ]
    assert all(0.1 < r < 0.8 for r in ratios)
    assert ratios[-1] < ratios[0]


def test_bench_knn_point(benchmark, knn_workload):
    benchmark.pedantic(
        lambda: knn_workload.run(dse_spec(128)),
        rounds=3, iterations=1, warmup_rounds=1,
    )
