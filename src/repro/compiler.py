"""C4CAM end-to-end compiler driver.

Glues the whole flow of paper Fig. 3 together::

    TorchScript (mini-torch trace)
      └─ import_graph                 (PyTorch MLIR converter)
         └─ torch-to-cim              (per-op execute blocks)
            └─ cim-fuse-ops           (merge execute blocks)
               └─ cim-similarity-match (Algorithm 1)
                  └─ cim-partition    (compulsory partitioning plan)
                     └─ cim-to-cam    (bufferize + hierarchy mapping)
                        └─ Interpreter over a CamMachine (simulator)

Typical usage::

    from repro.compiler import C4CAMCompiler
    from repro.arch import paper_spec

    compiler = C4CAMCompiler(paper_spec(rows=32, cols=64))
    kernel = compiler.compile(model, example_inputs=[...])
    outputs = kernel(queries)
    print(kernel.last_report.summary())

Execution model — program once, query many.  The CAM is a
program-once / query-many device: the first execution of a kernel opens
a cached :class:`~repro.runtime.session.QuerySession` that allocates the
hierarchy and programs every stored-pattern tile; subsequent calls
stream their queries against the live machine without re-programming.
``kernel(queries)`` therefore accepts *any* batch size (not only the
traced one), ``kernel.run_batch(Q)`` makes the batched entry point
explicit, and ``kernel.reset()`` drops the session for a from-scratch
machine.  Per-batch reports charge the one-time setup (write)
energy/latency separately from the query clock and expose
``throughput_qps``; see :mod:`repro.runtime.session` for the amortized
timing semantics.  Construct with ``cache_session=False`` to restore the
legacy fresh-machine-per-call behaviour (used as the baseline in
``benchmarks/test_batch_throughput.py``).

Capacity and sharding.  A bank-capped :class:`~repro.arch.spec.ArchSpec`
bounds what one machine stores; a kernel that overflows it raises
:class:`~repro.transforms.partitioning.CapacityError` (required vs.
available rows, never silent truncation).  ``compile(num_shards=...)``
instead splits the stored rows across N independently programmed
machines served by a :class:`~repro.runtime.sharding.ShardedSession`:
``num_shards=None`` (the default) auto-shards exactly when the store
overflows, an explicit count forces the split, and ``num_shards=1``
forces single-machine compilation (raising on overflow).  Sharded
results are bitwise identical to one unbounded machine; reports sum
energy/area across shards and take max-over-shards latency plus the
cross-shard merge (see :mod:`repro.runtime.sharding`).

Replication and serving.  ``compile(num_replicas=R)`` programs R
independent copies of the whole (possibly sharded) store — replicas
clone the compiled session without recompiling — and routes every batch
to the least-loaded copy
(:class:`~repro.runtime.serving.ReplicatedSession`); ``kernel.serve()``
opens the asynchronous micro-batching front door
(:class:`~repro.runtime.serving.ServingEngine`): submit single queries
or small batches, receive futures whose results are bitwise identical
to a direct ``run_batch`` on the same rows.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

import repro.dialects  # noqa: F401  (registers all dialects)
from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.dialects import cim as cim_d
from repro.frontend import import_graph, trace
from repro.frontend.torch_api import Graph, Tensor
from repro.ir.context import load_all_dialects
from repro.ir.module import ModuleOp
from repro.ir.printer import print_module
from repro.ir.value import BlockArgument
from repro.passes.pass_manager import PassManager
from repro.runtime.cluster import Cluster
from repro.runtime.executor import Interpreter
from repro.runtime.placement import (
    MultiTenantSession,
    PlacementPlan,
    TenantProgram,
    plan_placement,
    tenant_demand,
)
from repro.runtime.serving import ReplicatedSession, ServingEngine
from repro.runtime.session import QueryProgram, QuerySession, SessionError
from repro.runtime.sharding import (
    ShardedSession,
    ShardSet,
    build_shard_set,
    plan_shard_count,
)
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport
from repro.transforms import (
    CapacityError,
    CimFuseOpsPass,
    CimPartitionPass,
    CimToCamPass,
    SimilarityMatchingPass,
    TorchToCimPass,
    check_plan_capacity,
    compute_partition_plan,
    plan_of,
    resolve_optimization,
)

load_all_dialects()


def build_pipeline(spec: ArchSpec, lower_to_cam: bool = True) -> PassManager:
    """The standard C4CAM pass pipeline for ``spec``."""
    config = resolve_optimization(spec)
    pm = PassManager()
    pm.add(TorchToCimPass())
    pm.add(CimFuseOpsPass())
    pm.add(SimilarityMatchingPass())
    pm.add(CimPartitionPass(spec, use_density=config.use_density))
    if lower_to_cam:
        pm.add(CimToCamPass(spec, config))
    return pm


def _find_shardable_similarity(
    module: ModuleOp,
    parameters: Sequence[np.ndarray],
    func_name: str = "forward",
) -> Optional[dict]:
    """The single row-shardable similarity kernel of ``func_name``.

    Sharding slices the stored parameter by rows and recompiles each
    slice, so the traced function must *be* the similarity kernel: one
    ``cim.execute { cim.similarity }`` block whose results the function
    returns directly, whose stored operand is a captured parameter and
    whose query operand is the *only* traced input (sharded kernels are
    called with exactly one query batch).  Returns the kernel facts
    (stored array, cim-level metric/k/largest, shapes) or ``None`` when
    the model has any other structure.
    """
    func = module.lookup_symbol(func_name)
    if func is None:
        return None
    candidates = []
    for op in func.body.operations:
        if isinstance(op, cim_d.ExecuteOp):
            body = list(op.body.operations)
            if len(body) == 2 and isinstance(body[0], cim_d.SimilarityOp):
                candidates.append((op, body[0]))
    if len(candidates) != 1:
        return None
    execute, sim = candidates[0]
    terminator = next(
        (op for op in func.body.operations if op.name == "func.return"), None
    )
    if terminator is None:
        return None
    if list(terminator.operands) != list(execute.results):
        return None
    if not isinstance(sim.stored, BlockArgument) or not isinstance(
        sim.query, BlockArgument
    ):
        return None
    stored_outer = execute.inputs[sim.stored.index]
    query_outer = execute.inputs[sim.query.index]
    args = list(func.body.arguments)
    n_inputs = len(args) - len(parameters)
    if n_inputs != 1:
        return None
    if not (
        isinstance(stored_outer, BlockArgument)
        and any(stored_outer is arg for arg in args)
        and stored_outer.index >= n_inputs
    ):
        return None
    if not (
        isinstance(query_outer, BlockArgument)
        and any(query_outer is arg for arg in args)
        and query_outer.index < n_inputs
    ):
        return None
    stored = parameters[stored_outer.index - n_inputs]
    if tuple(stored.shape) != tuple(sim.stored.type.shape):
        return None
    query_type = sim.query.type
    return {
        "stored": stored,
        "metric": sim.metric,
        "k": sim.k,
        "largest": sim.largest,
        "patterns": sim.stored.type.shape[0],
        "features": sim.stored.type.shape[-1],
        "queries": query_type.shape[0] if query_type.rank == 2 else 1,
    }


class CompiledKernel:
    """A compiled, executable kernel bound to an architecture.

    Machine-lowered kernels execute through a cached
    :class:`~repro.runtime.session.QuerySession` (program once, query
    many); ``cache_session=False`` forces the legacy behaviour of a
    fresh machine and a full interpreter walk per call.  A kernel
    compiled with a :class:`~repro.runtime.sharding.ShardSet` keeps its
    ``module`` at the cim level and executes through a
    :class:`~repro.runtime.sharding.ShardedSession` instead — one
    programmed machine per stored-row shard, merged transparently.
    """

    def __init__(
        self,
        module: ModuleOp,
        spec: ArchSpec,
        tech: TechnologyModel,
        parameters: Sequence[np.ndarray],
        func_name: str = "forward",
        uses_machine: bool = True,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        query_programs: Sequence[QueryProgram] = (),
        cache_session: bool = True,
        shard_set: Optional[ShardSet] = None,
        num_replicas: int = 1,
        fused: bool = True,
    ):
        self.module = module
        self.spec = spec
        self.tech = tech
        self.parameters = list(parameters)
        self.func_name = func_name
        self.uses_machine = uses_machine
        self.noise_sigma = noise_sigma
        self.noise_seed = noise_seed
        self.query_programs = list(query_programs)
        self.cache_session = cache_session
        self.shard_set = shard_set
        self.num_replicas = num_replicas
        #: Serve batches through the traced FusedPlan fast path (the
        #: unfused per-stage walk stays available as the differential
        #: oracle via ``fused=False``).
        self.fused = bool(fused)
        self.last_report: Optional[ExecutionReport] = None
        self.last_machine: Optional[CamMachine] = None
        self._session: Optional[QuerySession] = None
        self._initial_state = None   # store snapshot at first open
        self._program_serves_function: Optional[bool] = None
        # Device noise decorrelates across calls: every execution draws a
        # fresh child seed from one deterministic SeedSequence, so equal
        # noise_seed still reproduces the same call-by-call realizations.
        self._noise_seq = np.random.SeedSequence(noise_seed)

    @property
    def num_shards(self) -> int:
        """Machines serving this kernel (1 unless compiled sharded)."""
        return self.shard_set.num_shards if self.shard_set else 1

    @property
    def _sessionable(self) -> bool:
        """True when calls can stream through a cached QuerySession.

        Beyond having exactly one lowered similarity program, the traced
        function must return exactly that program's (values, indices) —
        a model that reorders or post-processes the similarity outputs
        takes the full interpreter walk, which reproduces its dataflow.
        Sharded kernels are always session-served: their shard modules
        are built to return the program results directly.
        """
        if self.shard_set is not None:
            return self.uses_machine
        if self._program_serves_function is None:
            func = self.module.lookup_symbol(self.func_name)
            self._program_serves_function = (
                len(self.query_programs) == 1
                and func is not None
                and self.query_programs[0].matches_function(func)
            )
        return (
            self.uses_machine
            and self.cache_session
            and self._program_serves_function
        )

    def _open_session(self) -> QuerySession:
        if self.shard_set is not None:
            base = ShardedSession(
                self.shard_set,
                self.spec,
                self.tech,
                func_name=self.func_name,
                noise_sigma=self.noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
                fused=self.fused,
            )
            return self._replicate(base)
        if not self.uses_machine or len(self.query_programs) != 1:
            raise SessionError(
                "batched sessions need a machine-lowered kernel with "
                "exactly one similarity program"
            )
        _ = self._sessionable  # populate the cached structural check
        if not self._program_serves_function:
            raise SessionError(
                "the traced function does not return the similarity "
                "program's (values, indices) directly; run it through "
                "__call__ so the interpreter reproduces its dataflow"
            )
        base = QuerySession(
            self.module,
            self.spec,
            self.tech,
            self.parameters,
            self.query_programs[0],
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=self._noise_seq.spawn(1)[0],
            fused=self.fused,
        )
        return self._replicate(base)

    def _replicate(self, base):
        """Wrap the base session in R programmed replicas when asked."""
        if self.num_replicas <= 1:
            return base
        return ReplicatedSession(base, self.num_replicas)

    def session(self) -> QuerySession:
        """The cached query session, opened (machine programmed) lazily.

        With ``cache_session=False`` a *fresh* session is returned per
        call — the kernel keeps no machine state between executions."""
        if not self.cache_session:
            return self._open_session()
        if self._session is None:
            self._session = self._open_session()
            if hasattr(self._session, "store_state"):
                self._initial_state = self._session.store_state()
        return self._session

    def reset(self, reprogram: bool = True) -> None:
        """Return the kernel to its compiled state.

        ``reprogram=True`` (default) drops the cached session: the next
        call re-allocates and re-programs a fresh machine (and restarts
        the noise sequence) — the full re-deployment.

        ``reprogram=False`` keeps the live machine and instead *restores*
        the compiled store through the incremental mutation path: only
        rows that actually differ from the compiled parameters are
        rewritten, so resetting an unchanged store charges **zero**
        additional row writes (where the old path re-charged the full
        programming pass).  Query-side state and accounting clear either
        way.  Requires a cached, mutation-capable session; falls back to
        the full re-program when there is nothing to restore.
        """
        if not reprogram and self._session is not None \
                and self._initial_state is not None:
            self._session.restore(self._initial_state)
            self._session.reset()
            self.last_report = None
            return
        self._session = None
        self._initial_state = None
        self.last_report = None
        self.last_machine = None
        self._noise_seq = np.random.SeedSequence(self.noise_seed)

    # ------------------------------------------------------------ mutations
    # Live-store mutations (see repro.runtime.session): they require the
    # cached session path, so interpreter-only kernels and
    # cache_session=False kernels raise SessionError on first use.
    def _mutable_session(self):
        if not self.cache_session:
            raise SessionError(
                "store mutations need the cached session "
                "(cache_session=True): a fresh-machine-per-call kernel "
                "forgets every mutation on the next call"
            )
        return self.session()

    @property
    def pattern_count(self) -> int:
        """Live stored patterns on the kernel's session."""
        return self._mutable_session().pattern_count

    def row_ids(self) -> List[int]:
        """Ids of the live patterns in rank order."""
        return self._mutable_session().row_ids()

    def insert(self, patterns) -> List[int]:
        """Append patterns to the live store; returns their stable ids.

        Incremental: only the new rows are written (per-row write
        energy), never a full re-program.  While a :meth:`serve` engine
        is running, mutate through ``engine.mutate(...)`` instead so the
        write serializes against in-flight batches.
        """
        return self._mutable_session().insert(patterns)

    def delete(self, ids) -> None:
        """Tombstone stored patterns by id (masked out of every query
        until compaction reclaims their rows)."""
        self._mutable_session().delete(ids)

    def update(self, pattern_id: int, pattern) -> None:
        """Rewrite one stored pattern in place."""
        self._mutable_session().update(pattern_id, pattern)

    def compact(self) -> int:
        """Defragment the live store; returns rows moved."""
        return self._mutable_session().compact()

    def run_batch(self, queries: np.ndarray) -> List[np.ndarray]:
        """Answer a ``B×D`` query batch on the live session machine(s).

        Setup (pattern programming) is charged once per session; the
        batch report (``last_report``) accounts ``B ×`` the structural
        per-query latency and exposes ``throughput_qps``.  Sharded
        kernels fan the batch out to every shard machine and merge —
        their report sums energy over shards and takes max-over-shards
        latency plus the cross-shard merge.
        """
        session = self.session()
        outputs = session.run_batch(queries)
        self.last_report = session.last_report
        self.last_machine = session.machine
        return outputs

    def serve(
        self,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
    ) -> ServingEngine:
        """An async serving engine over this kernel's live session(s).

        Opens (or reuses) the cached session — replicated across
        ``num_replicas`` machines when compiled with
        ``compile(num_replicas=...)`` — and returns a
        :class:`~repro.runtime.serving.ServingEngine`: ``submit()``
        single queries or small batches, get per-request futures whose
        results are bitwise identical to :meth:`run_batch` on the same
        rows.  Shut the engine down (or use it as a context manager)
        when done; the kernel's session stays programmed afterwards.
        """
        if not self._sessionable:
            raise SessionError(
                "serving requires a session-served kernel (a machine-"
                "lowered model returning its similarity results directly)"
            )
        return ServingEngine(
            self.session(),
            max_batch=max_batch,
            max_wait=max_wait,
            time_scale=time_scale,
        )

    def __call__(self, *inputs: np.ndarray) -> List[np.ndarray]:
        """Execute the kernel; returns the kernel outputs.

        Captured module parameters (e.g. the stored patterns) are
        appended automatically, matching the traced signature.  With a
        cached session (the default for machine-lowered kernels) the
        stored patterns are programmed on the first call only and any
        query-batch size is accepted; otherwise the machine is rebuilt
        and re-programmed per call and inputs must match the traced
        shapes.
        """
        if self.shard_set is not None:
            # Sharded kernels keep their module at the cim level; the
            # interpreter walk cannot reproduce the machine path, so
            # every execution goes through the shard sessions.
            if len(inputs) != 1:
                raise SessionError(
                    "a sharded kernel takes exactly one query batch"
                )
            return self.run_batch(inputs[0])
        if self._sessionable and len(inputs) == 1:
            return self.run_batch(inputs[0])
        machine = None
        if self.uses_machine:
            machine = CamMachine(
                self.spec,
                self.tech,
                noise_sigma=self.noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
            )
        interpreter = Interpreter(self.module, machine)
        all_inputs = list(inputs) + self.parameters
        outputs, report = interpreter.run_function(self.func_name, all_inputs)
        self.last_report = report
        self.last_machine = machine
        return outputs

    def mlir(self) -> str:
        """The compiled module as textual IR."""
        return print_module(self.module)


class MultiTenantKernel:
    """K compiled kernels co-resident on one shared machine fleet.

    Built by :meth:`C4CAMCompiler.compile_many`: each tenant is an
    independently compiled similarity kernel; the placement
    (:class:`~repro.runtime.placement.PlacementPlan`, computed at
    compile time) packs their bank demands onto shared machines with
    first-fit-decreasing.  The first execution opens a cached
    :class:`~repro.runtime.placement.MultiTenantSession` that programs
    every tenant once; ``run_batch(tenant_id, Q)`` then serves any
    tenant with results bitwise identical to that tenant compiled and
    served alone.  ``num_replicas > 1`` replicates the *whole fleet*
    for throughput, and :meth:`serve` opens the async micro-batching
    engine with tenant-aware ``submit(queries, tenant=...)``.
    """

    def __init__(
        self,
        tenants: Sequence[TenantProgram],
        spec: ArchSpec,
        tech: TechnologyModel,
        placement: PlacementPlan,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        max_machines: Optional[int] = None,
        num_replicas: int = 1,
        fused: bool = True,
    ):
        self.tenants = list(tenants)
        self.spec = spec
        self.tech = tech
        self.placement = placement
        self.noise_sigma = noise_sigma
        self.noise_seed = noise_seed
        self.max_machines = max_machines
        self.num_replicas = num_replicas
        self.fused = bool(fused)
        self.last_report: Optional[ExecutionReport] = None
        self._session = None
        self._noise_seq = np.random.SeedSequence(noise_seed)

    @property
    def tenant_ids(self) -> List[str]:
        return [tenant.tenant_id for tenant in self.tenants]

    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    @property
    def num_machines(self) -> int:
        """Fleet machines per replica (from the placement plan)."""
        return self.placement.num_machines

    def session(self):
        """The cached multi-tenant session (replicated when asked),
        opened — all tenants placed and programmed — lazily."""
        if self._session is None:
            base = MultiTenantSession(
                self.tenants,
                self.spec,
                self.tech,
                max_machines=self.max_machines,
                placement=self.placement,
                noise_sigma=self.noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
                fused=self.fused,
            )
            if self.num_replicas > 1:
                base = ReplicatedSession(base, self.num_replicas)
            self._session = base
        return self._session

    def reset(self) -> None:
        """Evict and re-place: the next call re-programs fresh machines
        (and restarts the noise sequence)."""
        self._session = None
        self.last_report = None
        self._noise_seq = np.random.SeedSequence(self.noise_seed)

    def run_batch(
        self, tenant_id: str, queries: np.ndarray
    ) -> List[np.ndarray]:
        """Serve a ``B×D`` batch for ``tenant_id`` on the shared fleet.

        Bitwise identical (noise disabled) to the tenant compiled alone
        via :meth:`C4CAMCompiler.compile` and run on a private machine.
        """
        session = self.session()
        if isinstance(session, ReplicatedSession):
            outputs = session.run_batch(queries, tenant=tenant_id)
        else:
            outputs = session.run_batch(tenant_id, queries)
        self.last_report = session.last_report
        return outputs

    def report(self, tenant_id: Optional[str] = None) -> ExecutionReport:
        """Accumulated accounting: one tenant's lane, or the fleet.

        Per-tenant reports charge only that tenant's banks (dynamic
        energy by attribution, standby scoped to its slice); the fleet
        report counts the shared fabric once and sums the tenants —
        tenant energies add up exactly to the fleet energy.
        """
        session = self.session()
        if tenant_id is not None:
            return session.tenant_report(tenant_id)
        return session.report()

    def serve(
        self,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
    ) -> ServingEngine:
        """The async front door over the multi-tenant fleet.

        ``submit(queries, tenant=...)`` names the kernel each request
        belongs to; the dispatcher coalesces only same-tenant requests
        into micro-batches, so one engine multiplexes every colocated
        kernel.  Futures resolve bitwise identically to
        :meth:`run_batch` on the same rows.
        """
        return ServingEngine(
            self.session(),
            max_batch=max_batch,
            max_wait=max_wait,
            time_scale=time_scale,
        )


class C4CAMCompiler:
    """The user-facing compiler: trace, lower, and execute on a CAM."""

    def __init__(self, spec: ArchSpec, tech: TechnologyModel = FEFET_45NM):
        self.spec = spec
        self.tech = tech

    def import_torchscript(self, fn: Callable, example_inputs) -> tuple:
        """Trace ``fn`` and import it to torch-dialect IR.

        Returns ``(module, parameter_arrays)``.
        """
        graph = fn if isinstance(fn, Graph) else trace(fn, example_inputs)
        imported = import_graph(graph)
        return imported.module, imported.parameter_arrays

    def compile(
        self,
        fn: Callable,
        example_inputs: Sequence[Tensor],
        lower_to_cam: bool = True,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        cache_session: bool = True,
        num_shards: Optional[int] = None,
        num_replicas: int = 1,
        fused: bool = True,
    ) -> CompiledKernel:
        """Full pipeline: trace → torch IR → cim → cam.

        With ``lower_to_cam=False`` the kernel stays at the cim level and
        executes on the host reference path (useful for validation).
        ``noise_sigma`` enables device-variation modeling: Gaussian
        sensing noise on every match-line score (accuracy studies); the
        realization decorrelates across calls while staying reproducible
        for a fixed ``noise_seed``.  ``cache_session=False`` disables the
        program-once query session and re-programs the machine per call.

        ``num_shards`` controls multi-machine sharding of the stored
        rows: ``None`` (default) auto-shards exactly when the store
        overflows a bank-capped spec, an explicit count ``> 1`` forces
        that many machines, and ``1`` forces single-machine compilation —
        overflowing it raises
        :class:`~repro.transforms.partitioning.CapacityError`.

        ``num_replicas`` adds the throughput axis: R independently
        programmed copies of the whole (possibly sharded) store served
        through a :class:`~repro.runtime.serving.ReplicatedSession` —
        batches route to the least-loaded replica, results stay bitwise
        identical, and reports aggregate the concurrent deployment
        (``kernel.session().report()``).  Combine with
        :meth:`CompiledKernel.serve` for the async micro-batching front
        door.  Replication compiles *once*: replicas clone the session's
        artifacts and only re-program their own machines.

        ``fused`` (default on) serves batches through the traced
        :class:`~repro.runtime.fused.FusedPlan` — bitwise identical to
        the per-stage session walk, which ``fused=False`` retains as
        the differential oracle.
        """
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1 (or None for auto)")
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        if not lower_to_cam and num_shards not in (None, 1):
            raise ValueError(
                "num_shards requires lower_to_cam=True: the host "
                "reference path has no machines to shard across"
            )
        if not lower_to_cam and num_replicas != 1:
            raise ValueError(
                "num_replicas requires lower_to_cam=True: the host "
                "reference path has no machines to replicate"
            )
        module, params = self.import_torchscript(fn, example_inputs)
        # Stage 1: lower to the cim level (fused similarity + plan).
        build_pipeline(self.spec, lower_to_cam=False).run(module)
        if not lower_to_cam:
            return CompiledKernel(
                module,
                self.spec,
                self.tech,
                params,
                uses_machine=False,
                noise_sigma=noise_sigma,
                noise_seed=noise_seed,
                cache_session=cache_session,
            )
        # Stage 2: decide the machine count, then lower to cam.
        config = resolve_optimization(self.spec)
        shard_set = None
        if num_shards != 1:
            kernel_info = _find_shardable_similarity(module, params)
            if kernel_info is not None:
                count = plan_shard_count(
                    kernel_info["patterns"],
                    kernel_info["features"],
                    kernel_info["queries"],
                    self.spec,
                    config.use_density,
                    num_shards,
                )
                if count > 1:
                    shard_set = build_shard_set(
                        kernel_info["stored"],
                        kernel_info["queries"],
                        kernel_info["metric"],
                        kernel_info["k"],
                        kernel_info["largest"],
                        self.spec,
                        config,
                        num_shards=count,
                    )
            elif num_shards is not None:
                raise SessionError(
                    "num_shards > 1 requires a model that is exactly one "
                    "similarity kernel returning its (values, indices) "
                    "directly"
                )
        programs: List[QueryProgram] = []
        if shard_set is None:
            # Surface overflows as CapacityError here (PassManager wraps
            # in-pass exceptions into PassError).
            for func in module.functions():
                for op in func.walk():
                    if isinstance(op, cim_d.SimilarityOp):
                        check_plan_capacity(
                            plan_of(op), self.spec, config.use_density
                        )
            cam = CimToCamPass(self.spec, config)
            PassManager([cam]).run(module)
            programs = list(cam.programs)
        kernel = CompiledKernel(
            module,
            self.spec,
            self.tech,
            params,
            uses_machine=True,
            noise_sigma=noise_sigma,
            noise_seed=noise_seed,
            query_programs=programs,
            cache_session=cache_session,
            shard_set=shard_set,
            num_replicas=num_replicas,
            fused=fused,
        )
        if num_replicas > 1 and not kernel._sessionable:
            raise SessionError(
                "num_replicas > 1 requires a session-served kernel: the "
                "traced function must return its similarity (values, "
                "indices) directly (and cache_session must stay enabled)"
            )
        return kernel

    def compile_many(
        self,
        models: Sequence[Callable],
        example_inputs: Sequence[Sequence[Tensor]],
        tenant_ids: Optional[Sequence[str]] = None,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        max_machines: Optional[int] = None,
        num_replicas: int = 1,
        fused: bool = True,
    ) -> MultiTenantKernel:
        """Compile several kernels for co-residency on one machine fleet.

        Each model is lowered independently (same pipeline as
        :meth:`compile`) and must be exactly one similarity kernel
        returning its ``(values, indices)`` directly — the same
        structural contract sharding and replication demand, since every
        tenant is served through the shared-machine session path.  The
        tenants' bank demands are then packed onto shared machines by
        :func:`~repro.runtime.placement.plan_placement`
        (first-fit-decreasing; ``max_machines=None`` grows the fleet on
        demand) — over-packing raises
        :class:`~repro.runtime.placement.PlacementError` (a
        :class:`~repro.transforms.partitioning.CapacityError`) at
        *compile time*, naming the tenant and its bank demand.

        ``num_replicas`` replicates the whole multi-tenant fleet for
        throughput; combine with :meth:`MultiTenantKernel.serve` for
        tenant-aware async serving.
        """
        if len(models) != len(example_inputs):
            raise ValueError(
                f"{len(models)} models but {len(example_inputs)} example "
                f"input sets"
            )
        if not models:
            raise ValueError("compile_many needs at least one model")
        if tenant_ids is None:
            tenant_ids = [f"tenant{i}" for i in range(len(models))]
        elif len(tenant_ids) != len(models):
            raise ValueError(
                f"{len(models)} models but {len(tenant_ids)} tenant ids"
            )
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        config = resolve_optimization(self.spec)
        # Stage 1: lower every tenant to the cim level and collect its
        # placement demand, so over-packing fails before any cam-level
        # work (and with the tenant named, not a bare kernel overflow).
        staged = []
        for tenant_id, fn, example in zip(tenant_ids, models, example_inputs):
            module, params = self.import_torchscript(fn, example)
            build_pipeline(self.spec, lower_to_cam=False).run(module)
            info = _find_shardable_similarity(module, params)
            if info is None:
                raise SessionError(
                    f"tenant {tenant_id!r} is not placeable: multi-tenant "
                    "kernels must be exactly one similarity kernel "
                    "returning its (values, indices) directly"
                )
            plan = compute_partition_plan(
                info["patterns"],
                info["features"],
                info["queries"],
                self.spec,
                config.use_density,
            )
            staged.append((tenant_id, module, params, plan))
        placement = plan_placement(
            [tenant_demand(tid, plan, self.spec) for tid, _, _, plan in staged],
            self.spec,
            max_machines,
        )
        # Stage 2: lower each placeable tenant to cam.
        tenants = []
        for tenant_id, module, params, _plan in staged:
            cam = CimToCamPass(self.spec, config)
            PassManager([cam]).run(module)
            if len(cam.programs) != 1:
                raise SessionError(
                    f"tenant {tenant_id!r} lowered to {len(cam.programs)} "
                    "similarity programs; expected exactly one"
                )
            tenants.append(
                TenantProgram(
                    tenant_id=tenant_id,
                    module=module,
                    parameters=list(params),
                    program=cam.programs[0],
                )
            )
        return MultiTenantKernel(
            tenants,
            self.spec,
            self.tech,
            placement,
            noise_sigma=noise_sigma,
            noise_seed=noise_seed,
            max_machines=max_machines,
            num_replicas=num_replicas,
            fused=fused,
        )

    def compile_cluster(
        self,
        models: Sequence[Callable],
        example_inputs: Sequence[Sequence[Tensor]],
        tenant_ids: Optional[Sequence[str]] = None,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        **cluster_kwargs,
    ) -> Cluster:
        """Compile several kernels and admit them into a live
        :class:`~repro.runtime.cluster.Cluster` control plane.

        Unlike :meth:`compile_many` (a *static* co-resident fleet), the
        returned cluster supports runtime ``admit``/``evict`` with
        defragmenting re-placement, ``submit(..., priority=,
        deadline=)`` dispatch and queue-depth autoscaling — and a
        kernel too large for one machine joins as a sharded tenant
        spanning machines.  Keyword arguments
        (``max_machines``, ``autoscale_max_lanes``, ``time_scale``, …)
        configure the :class:`~repro.runtime.cluster.Cluster`.
        """
        if len(models) != len(example_inputs):
            raise ValueError(
                f"{len(models)} models but {len(example_inputs)} example "
                f"input sets"
            )
        if not models:
            raise ValueError("compile_cluster needs at least one model")
        if tenant_ids is not None and len(tenant_ids) != len(models):
            raise ValueError(
                f"{len(models)} models but {len(tenant_ids)} tenant ids"
            )
        kernels = [
            self.compile(
                fn, example, noise_sigma=noise_sigma, noise_seed=noise_seed
            )
            for fn, example in zip(models, example_inputs)
        ]
        return Cluster.from_kernels(
            kernels,
            tenant_ids=tenant_ids,
            spec=self.spec,
            tech=self.tech,
            noise_sigma=noise_sigma,
            noise_seed=noise_seed,
            **cluster_kwargs,
        )

    def autotune_cluster(
        self,
        models: Sequence[Callable],
        example_inputs: Sequence[Sequence[Tensor]],
        trace,
        presets=None,
        **kwargs,
    ):
        """Traffic-driven design-space search for a serving fleet.

        ``trace`` is a :class:`~repro.runtime.autotune.TrafficTrace`
        naming the tenants; ``models`` and ``example_inputs`` align
        with ``trace.tenant_ids``.  ``presets`` maps candidate names to
        :class:`~repro.arch.spec.ArchSpec`\\ s (default: just this
        compiler's spec).  Returns the
        :class:`~repro.runtime.autotune.AutotuneResult` — its ``plan``
        and ``kernels`` rebuild the winning fleet via
        :meth:`~repro.runtime.cluster.Cluster.from_plan`.  Remaining
        keyword arguments pass through to
        :func:`~repro.runtime.autotune.autotune` (``policies``,
        ``lane_options``, ``shard_options``, ``max_machines``, ...).
        """
        from repro.runtime.autotune import autotune

        order = trace.tenant_ids
        if len(models) != len(order):
            raise ValueError(
                f"{len(models)} models but the trace names "
                f"{len(order)} tenant(s)"
            )
        if len(example_inputs) != len(models):
            raise ValueError(
                f"{len(models)} models but {len(example_inputs)} example "
                f"input sets"
            )
        kwargs.setdefault("tech", self.tech)
        return autotune(
            dict(zip(order, models)),
            dict(zip(order, example_inputs)),
            trace,
            presets=presets if presets else {"compiler-spec": self.spec},
            **kwargs,
        )

    def reference(
        self, fn: Callable, example_inputs: Sequence[Tensor]
    ) -> CompiledKernel:
        """The un-lowered torch-IR kernel (numpy golden model)."""
        module, params = self.import_torchscript(fn, example_inputs)
        return CompiledKernel(
            module, self.spec, self.tech, params, uses_machine=False
        )
