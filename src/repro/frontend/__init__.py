"""C4CAM front end: tracing mini-torch API + importer to the torch dialect."""

from . import torch_api as torch
from .importer import ImportedFunction, import_graph
from .torch_api import Graph, Module, Node, Tensor, TraceError, placeholder, trace

__all__ = [
    "Graph",
    "ImportedFunction",
    "Module",
    "Node",
    "Tensor",
    "TraceError",
    "import_graph",
    "placeholder",
    "torch",
    "trace",
]
