"""The top-level ``builtin.module`` container operation."""

from __future__ import annotations

from typing import Iterator, Optional

from .block import Block
from .operation import Operation, register_op


@register_op
class ModuleOp(Operation):
    """Top-level container holding functions (and other symbol ops).

    The module has a single region with a single block and no terminator,
    like MLIR's ``builtin.module``.
    """

    OP_NAME = "builtin.module"

    def __init__(self):
        super().__init__(regions=1)
        self.regions[0].append(Block())

    @property
    def body(self) -> Block:
        """The single block holding the module's top-level ops."""
        return self.regions[0].entry_block

    def append(self, op: Operation) -> Operation:
        """Add a top-level operation (usually a function)."""
        return self.body.append(op)

    def functions(self) -> Iterator[Operation]:
        """Iterate over contained ``func.func`` operations."""
        for op in self.body:
            if op.name == "func.func":
                yield op

    def lookup_symbol(self, name: str) -> Optional[Operation]:
        """Find a top-level op whose ``sym_name`` attribute equals ``name``."""
        from .attributes import StringAttr

        for op in self.body:
            sym = op.attributes.get("sym_name")
            if isinstance(sym, StringAttr) and sym.value == name:
                return op
        return None

    def verify(self) -> None:
        if len(self.regions) != 1 or len(self.regions[0]) != 1:
            raise ValueError("builtin.module must have exactly one block")
