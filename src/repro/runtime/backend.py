"""The :class:`ExecutionBackend` protocol: one contract, every mode.

PRs 1-4 grew four sibling execution layers — batched sessions
(:class:`~repro.runtime.session.QuerySession`), sharded capacity
(:class:`~repro.runtime.sharding.ShardedSession`), replicated throughput
(:class:`~repro.runtime.serving.ReplicatedSession`) and multi-tenant
placement (:class:`~repro.runtime.placement.MultiTenantSession`) — each
re-implementing width validation, setup accounting, lane bookkeeping and
lifecycle hooks.  This module is the shared floor they now all stand on:

* :class:`ExecutionBackend` — the protocol every execution mode
  implements.  ``run_batch(queries, tenant=None)`` is the one query
  entry point (single-tenant backends require ``tenant=None``;
  multi-tenant backends require a tenant id), ``report()`` the
  accumulated deployment accounting, ``clone()`` an independently
  programmed copy, ``query_width(tenant)`` the feature dimension a
  submit must match, ``capacity_hints()`` the silicon footprint a
  control plane sizes placement decisions with, and ``setup_report()``
  the zero-query baseline a lane charges once.
* :class:`LaneStats` — serialized per-lane traffic totals, shared by
  replica lanes, tenant lanes and cluster lanes.
* The serving error taxonomy: :class:`SessionError` (the module-level
  base every layer raises) and :class:`ClusterShutdown` (delivered to
  futures stranded by an evicted tenant or an aborting engine, so
  clients can tell a control-plane decision from a device failure).

Anything that implements this protocol can be served by the
:class:`~repro.runtime.serving.ServingEngine`, replicated by
:class:`~repro.runtime.serving.ReplicatedSession`, and placed, scaled
and evicted by the :class:`~repro.runtime.cluster.Cluster` control
plane — the per-request path choice mirroring hybrid data-plane designs
("A Tale of Two Paths") where the system picks a path per request, not
per deployment.

The protocol's load-bearing contract is **bitwise identity**: with
noise disabled, ``run_batch`` must return the same bits for the same
queries no matter which backend serves them — batched vs. sequential,
sharded vs. one oversized machine, replicated vs. direct, colocated
vs. private, before vs. after a cluster re-placement, and (since PR 9)
fused vs. the per-stage session walk.  Every backend serves through a
traced :class:`~repro.runtime.fused.FusedPlan` by default
(``fused=True``), and the identity extends to accounting: a fused
batch charges the identical energy/latency the unfused walk would.
The differential suites under ``tests/`` assert all of it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.simulator.metrics import EnergyBreakdown, ExecutionReport

__all__ = [
    "ClusterShutdown",
    "ExecutionBackend",
    "LaneStats",
    "SessionError",
]


class SessionError(RuntimeError):
    """The request cannot be served by this execution backend."""


class ClusterShutdown(SessionError):
    """The control plane retired the backend before serving the request.

    Delivered to still-pending futures when a tenant is evicted from a
    :class:`~repro.runtime.cluster.Cluster` or a
    :class:`~repro.runtime.serving.ServingEngine` shuts down with
    ``abort=True`` — a deliberate lifecycle decision, not a device
    failure, so clients can resubmit elsewhere instead of treating the
    store as broken.
    """


class ExecutionBackend:
    """The protocol every execution mode implements.

    Subclasses provide:

    * :meth:`run_batch` — answer one ``B×D`` query batch, returning
      ``[values, indices]`` and recording a per-batch
      :attr:`last_report`.  Single-tenant backends require
      ``tenant=None``; multi-tenant backends require a tenant id.
    * :meth:`report` — the accumulated deployment report.
    * :meth:`clone` — an independent copy sharing every compiled
      artifact but programming fresh machines.
    * :meth:`reset` — drop query-side state; patterns survive.
    * :meth:`query_width` — the feature dimension queries must match.
    * :meth:`setup_report` — the zero-query programming baseline.

    The base class supplies the tenant-validation helpers and the
    generic :meth:`capacity_hints` so control planes (the serving
    engine, the cluster) never introspect concrete session types.
    """

    #: Per-batch report of the most recent :meth:`run_batch`.
    last_report: Optional[ExecutionReport] = None

    # ------------------------------------------------------------- queries
    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        raise NotImplementedError

    # ------------------------------------------------------------ lifecycle
    def clone(self, noise_seed=None) -> "ExecutionBackend":
        raise NotImplementedError(
            f"{type(self).__name__} does not support clone()"
        )

    def reset(self) -> None:
        raise NotImplementedError

    # -------------------------------------------------------------- widths
    def query_width(self, tenant: Optional[str] = None) -> Optional[int]:
        """The feature dimension ``tenant``'s queries must have.

        ``None`` means the backend cannot tell (the first request pins
        it).  Single-tenant backends ignore ``tenant=None`` and raise on
        an explicit tenant id; multi-tenant backends require one.
        """
        self._require_no_tenant(tenant)
        return None

    def tenant_widths(self) -> Optional[Dict[str, int]]:
        """Per-tenant query widths, or ``None`` for single-tenant
        backends (the discriminator control planes branch on)."""
        return None

    @property
    def is_multi_tenant(self) -> bool:
        return self.tenant_widths() is not None

    def _require_no_tenant(self, tenant: Optional[str]) -> None:
        if tenant is not None:
            raise SessionError(
                f"{type(self).__name__} is single-tenant; do not pass a "
                f"tenant id (got {tenant!r})"
            )

    # -------------------------------------------------------------- report
    def report(self) -> ExecutionReport:
        raise NotImplementedError

    def setup_report(self) -> ExecutionReport:
        """A zero-query report of the backend's programming cost and
        silicon — the baseline a lane charges exactly once."""
        raise NotImplementedError

    def capacity_hints(self) -> Dict[str, int]:
        """The backend's silicon footprint, for placement decisions.

        ``machines`` is the physical machine count, the ``*_used``
        fields the allocated hierarchy (tenant-scoped for a colocated
        backend), ``replicas`` the concurrent serving lanes.
        """
        machines = getattr(self, "machines", None)
        return {
            "machines": len(machines) if machines is not None else 1,
            "replicas": getattr(self, "num_replicas", 1),
            "banks_used": getattr(self, "banks_used", 0),
            "mats_used": getattr(self, "mats_used", 0),
            "arrays_used": getattr(self, "arrays_used", 0),
            "subarrays_used": getattr(self, "subarrays_used", 0),
        }


class LaneStats:
    """Serialized totals of one backend's traffic (its "lane").

    The accumulation shape shared by replica lanes (one per copy in a
    :class:`~repro.runtime.serving.ReplicatedSession`), tenant lanes
    (one per tenant in a
    :class:`~repro.runtime.placement.MultiTenantSession`) and cluster
    lanes (one per tenant replica in a
    :class:`~repro.runtime.cluster.Cluster`): query work folds in per
    batch, the one-time setup baseline is charged once via the
    backend's :meth:`ExecutionBackend.setup_report`.

    ``charge_setup=False`` starts a lane whose backend *survived* an
    accounting-epoch boundary without re-programming (a cluster
    defragmentation that only rebuilt other machines): the lane keeps
    its silicon footprint but re-charges neither write energy nor setup
    latency — summing epoch reports then counts each programming pass
    exactly once.

    The setup baseline is *live*, not a snapshot: mutable stores keep
    writing after the lane opens (incremental inserts, deletes and
    compaction moves), and those per-row charges must show up in the
    lane's report.  The lane therefore re-reads
    :meth:`ExecutionBackend.setup_report` on every :meth:`report` and,
    for a ``charge_setup=False`` lane, subtracts the programming already
    billed to earlier epochs.
    """

    def __init__(self, backend, charge_setup: bool = True):
        self._backend = backend
        if charge_setup:
            self._setup_offset_ns = 0.0
            self._write_offset_pj = 0.0
            self._rows_offset = 0
        else:
            snapshot = backend.setup_report()
            self._setup_offset_ns = snapshot.setup_latency_ns
            self._write_offset_pj = snapshot.energy.write
            self._rows_offset = snapshot.rows_written
        self.latency_ns = 0.0
        self.queries = 0
        self.searches = 0
        self.cycles = 0
        self.energy = EnergyBreakdown()

    @property
    def base(self) -> ExecutionReport:
        """The lane's current setup baseline (live, offsets deducted)."""
        base = self._backend.setup_report()
        if self._setup_offset_ns or self._write_offset_pj or self._rows_offset:
            energy = EnergyBreakdown(**base.energy.as_dict())
            energy.write = max(0.0, energy.write - self._write_offset_pj)
            base = replace(
                base,
                setup_latency_ns=max(
                    0.0, base.setup_latency_ns - self._setup_offset_ns
                ),
                energy=energy,
                rows_written=max(0, base.rows_written - self._rows_offset),
            )
        return base

    def add(self, report: ExecutionReport) -> None:
        """Fold one batch report into the lane.

        Batch reports each re-state the session's one-time setup (write)
        cost; the lane charges it once via :attr:`base` instead.
        """
        self.latency_ns += report.query_latency_ns
        self.queries += report.queries
        self.searches += report.searches
        self.cycles += report.search_cycles
        for key, value in report.energy.as_dict().items():
            if key != "write":
                setattr(self.energy, key, getattr(self.energy, key) + value)

    def report(self) -> ExecutionReport:
        base = self.base
        energy = EnergyBreakdown(**self.energy.as_dict())
        energy.write = base.energy.write
        return ExecutionReport(
            query_latency_ns=self.latency_ns,
            setup_latency_ns=base.setup_latency_ns,
            energy=energy,
            banks_used=base.banks_used,
            mats_used=base.mats_used,
            arrays_used=base.arrays_used,
            subarrays_used=base.subarrays_used,
            searches=self.searches,
            search_cycles=self.cycles,
            rows_written=base.rows_written,
            queries=self.queries,
            spec=base.spec,
        )
