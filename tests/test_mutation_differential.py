"""Randomized mutation-sequence differential testing.

The mutable-store layer promises that a session which has lived through
an arbitrary interleaving of ``insert`` / ``delete`` / ``update`` /
``compact`` and queries is *bitwise identical*, on every query, to a
fresh session rebuilt from the surviving patterns (noise disabled).
Tombstones, slot reuse, growth banks, shard splits and cluster
re-placements must all be invisible in the results.

This suite drives randomized mutation schedules against a shadow store
(a plain dict of id -> row) and checks the promise on every query, for
all four execution paths:

1. **per-call interpreter** — the rebuilt-survivors kernel with
   ``cache_session=False`` (fresh machine + full IR walk per query);
2. **query session** — ``CompiledKernel`` mutations on one live machine;
3. **sharded session** — mutations across shard machines, including
   splits when the tail shard overflows a bank-capped spec;
4. **cluster** — mutations through the multi-tenant control plane,
   including growth re-placements.

Adversarial schedules ride along: tie-heavy ±1 stores where ranking is
decided purely by the id-order tie-break, all-tombstone stores (every
row deleted -> empty results, then refilled), and mutate-during-serve
schedules where mutations interleave with in-flight micro-batches.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.arch.technology import FEFET_45NM
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.cluster import Cluster
from repro.runtime.sharding import ShardedSession, build_shard_set

FEATURES = 8
BATCH = 3


def _spec(banks=None):
    """An analog-CAM geometry, so dot scores are true dot products
    (binary TCAM cells would collapse float data to match counts and
    make every differential assertion vacuous)."""
    spec = paper_spec(rows=8, cols=8, cam_type="acam")
    return spec if banks is None else replace(spec, banks=banks)


def _dot_model(stored, k):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _compile(stored, k, spec, **kw):
    stored = np.asarray(stored, dtype=np.float32)
    return C4CAMCompiler(spec).compile(
        _dot_model(stored, k), [placeholder((1, FEATURES))], **kw
    )


def _make_sharded(stored, k, spec, num_shards=None):
    shard_set = build_shard_set(
        np.asarray(stored, dtype=np.float32), 1, "dot", k, True, spec,
        num_shards=num_shards,
    )
    return ShardedSession(shard_set, spec, FEFET_45NM)


def _survivors(live):
    """The oracle store: surviving rows in ascending-id order."""
    return np.array([live[g] for g in sorted(live)], dtype=np.float32)


def _rows(rng, n, tie_heavy=False):
    if tie_heavy:
        return rng.choice([-1.0, 1.0], (n, FEATURES)).astype(np.float32)
    return rng.standard_normal((n, FEATURES)).astype(np.float32)


def _queries(rng, tie_heavy=False):
    return _rows(rng, BATCH, tie_heavy)


def _mutate_randomly(rng, store, live, n_ops, k, check, tie_heavy=False,
                     max_live=20):
    """Drive ``n_ops`` random mutations against ``store`` and the shadow
    ``live`` dict, calling ``check()`` on every query op and once at the
    end.  Deletes never drop the store below ``k`` rows (the oracle
    kernel needs k <= patterns); the all-tombstone schedule exercises
    that separately."""
    ops = ["insert", "delete", "update", "compact", "query"]
    weights = [0.3, 0.2, 0.15, 0.1, 0.25]
    for _ in range(n_ops):
        op = rng.choice(ops, p=weights)
        if op == "insert":
            if len(live) >= max_live:
                continue
            rows = _rows(rng, int(rng.integers(1, 3)), tie_heavy)
            ids = store.insert(rows)
            assert len(set(ids)) == len(rows)
            assert not set(ids) & set(live), "ids must never be reused"
            for gid, row in zip(ids, rows):
                live[gid] = row
        elif op == "delete":
            deletable = len(live) - k
            if deletable <= 0:
                continue
            count = int(rng.integers(1, deletable + 1))
            victims = list(
                rng.choice(sorted(live), size=count, replace=False)
            )
            store.delete(victims)
            for gid in victims:
                del live[int(gid)]
        elif op == "update":
            gid = int(rng.choice(sorted(live)))
            row = _rows(rng, 1, tie_heavy)[0]
            store.update(gid, row)
            live[gid] = row
        elif op == "compact":
            store.compact()
        else:
            check()
        assert store.pattern_count == len(live)
        assert store.row_ids() == sorted(live)
    check()


# --------------------------------------------------------------------------
# Path 2: query session (via the kernel mutation API)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(80))
def test_query_session_matches_rebuilt(seed):
    """Mutated single-machine session == fresh session over survivors."""
    rng = np.random.default_rng(10_000 + seed)
    spec = _spec()
    n0 = int(rng.integers(6, 14))
    k = int(rng.integers(1, 4))
    stored = _rows(rng, n0)
    kernel = _compile(stored, k, spec)
    live = {i: stored[i] for i in range(n0)}

    def check():
        queries = _queries(rng)
        got = kernel.run_batch(queries)
        want = _compile(_survivors(live), k, spec).run_batch(queries)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    _mutate_randomly(rng, kernel, live, n_ops=8, k=k, check=check)


@pytest.mark.parametrize("seed", range(20))
def test_query_session_matches_interpreter(seed):
    """Path 1 x path 2: the mutated session must equal the per-call
    interpreter walk over the surviving patterns."""
    rng = np.random.default_rng(20_000 + seed)
    spec = _spec()
    n0 = int(rng.integers(6, 12))
    k = int(rng.integers(1, 4))
    stored = _rows(rng, n0)
    kernel = _compile(stored, k, spec)
    live = {i: stored[i] for i in range(n0)}

    def check():
        queries = _queries(rng)
        got = kernel.run_batch(queries)
        percall = _compile(_survivors(live), k, spec, cache_session=False)
        values, indices = zip(*(percall(q[None, :]) for q in queries))
        assert np.array_equal(got[0], np.vstack(values))
        assert np.array_equal(got[1], np.vstack(indices))

    _mutate_randomly(rng, kernel, live, n_ops=6, k=k, check=check)


@pytest.mark.parametrize("seed", range(25))
def test_tie_heavy_schedules(seed):
    """±1 stores: nearly every score ties, so any slot-order leak in the
    mutation layer breaks the lowest-id tie-break instantly."""
    rng = np.random.default_rng(30_000 + seed)
    spec = _spec()
    n0 = int(rng.integers(6, 14))
    k = int(rng.integers(1, 4))
    uniques = _rows(rng, 3, tie_heavy=True)
    stored = uniques[rng.integers(0, 3, n0)]
    kernel = _compile(stored, k, spec)
    live = {i: stored[i] for i in range(n0)}

    def check():
        queries = uniques[rng.integers(0, 3, BATCH)]
        got = kernel.run_batch(queries)
        want = _compile(_survivors(live), k, spec).run_batch(queries)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    _mutate_randomly(rng, kernel, live, n_ops=8, k=k, check=check,
                     tie_heavy=True)


@pytest.mark.parametrize("seed", range(10))
def test_all_tombstone_then_refill(seed):
    """Deleting every pattern yields (B, 0) results on both the plain
    and the sharded path; refilling restores full identity."""
    rng = np.random.default_rng(40_000 + seed)
    spec = _spec()
    n0 = int(rng.integers(4, 8))
    k = 2
    stored = _rows(rng, n0)
    kernel = _compile(stored, k, spec)
    sharded = _make_sharded(stored, k, spec, num_shards=2)
    queries = _queries(rng)

    for store in (kernel, sharded):
        store.delete(list(range(n0)))
        assert store.pattern_count == 0
        values, indices = store.run_batch(queries)
        assert values.shape == (BATCH, 0)
        assert indices.shape == (BATCH, 0)

    refill = _rows(rng, n0)
    live = {}
    ids = kernel.insert(refill)
    sharded_ids = sharded.insert(refill)
    assert ids == sharded_ids, "refill ids must match across paths"
    for gid, row in zip(ids, refill):
        live[gid] = row
    want = _compile(_survivors(live), k, spec).run_batch(queries)
    for store in (kernel, sharded):
        got = store.run_batch(queries)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


# --------------------------------------------------------------------------
# Path 3: sharded session (splits included)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(40))
def test_sharded_matches_rebuilt(seed):
    """Mutated shard group == freshly sharded survivors.  The spec caps
    banks, so insert-heavy schedules overflow the tail shard and split
    — the rebuilt oracle auto-shards, proving results are independent of
    the shard layout the mutations happened to produce."""
    rng = np.random.default_rng(50_000 + seed)
    spec = _spec(banks=2)
    n0 = int(rng.integers(6, 10))
    k = int(rng.integers(1, 4))
    stored = _rows(rng, n0)
    session = _make_sharded(stored, k, spec, num_shards=2)
    live = {i: stored[i] for i in range(n0)}

    def check():
        queries = _queries(rng)
        got = session.run_batch(queries)
        want = _make_sharded(_survivors(live), k, spec).run_batch(queries)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    _mutate_randomly(rng, session, live, n_ops=8, k=k, check=check,
                     max_live=28)


def test_sharded_split_preserves_identity():
    """Deterministic split coverage: insert until the shard count grows,
    then compare against the auto-sharded rebuild."""
    rng = np.random.default_rng(99)
    spec = _spec(banks=2)
    stored = _rows(rng, 8)
    session = _make_sharded(stored, 3, spec, num_shards=2)
    live = {i: stored[i] for i in range(8)}
    before = session.num_shards
    for _ in range(300):
        row = _rows(rng, 1)[0]
        live[session.insert(row)[0]] = row
        if session.num_shards > before:
            break
    assert session.num_shards > before, "insert flood never split a shard"
    queries = _queries(rng)
    got = session.run_batch(queries)
    want = _make_sharded(_survivors(live), 3, spec).run_batch(queries)
    assert np.array_equal(got[0], want[0])
    assert np.array_equal(got[1], want[1])


# --------------------------------------------------------------------------
# Path 4: cluster (growth re-placement included)
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(15))
def test_cluster_matches_rebuilt(seed):
    """Mutations through the cluster control plane: per-tenant identity
    against solo rebuilds, and the untouched tenant never drifts."""
    rng = np.random.default_rng(60_000 + seed)
    spec = _spec(banks=4)
    k = int(rng.integers(1, 4))
    stored_a = _rows(rng, int(rng.integers(6, 12)))
    stored_b = _rows(rng, int(rng.integers(6, 12)))
    compiler = C4CAMCompiler(spec)
    kernel_a = _compile(stored_a, k, spec)
    kernel_b = _compile(stored_b, k, spec)
    cluster = Cluster(spec, max_machines=4)
    try:
        cluster.admit(kernel_a, tenant_id="a")
        cluster.admit(kernel_b, tenant_id="b")
        live = {i: stored_a[i] for i in range(stored_a.shape[0])}
        queries = _queries(rng)
        want_b = _compile(stored_b, k, spec).run_batch(queries)

        class _TenantStore:
            """Adapts the tenant-addressed cluster API to the generic
            mutation driver."""

            def insert(self, rows):
                return cluster.insert(rows, tenant="a")

            def delete(self, ids):
                cluster.delete(ids, tenant="a")

            def update(self, gid, row):
                cluster.update(gid, row, tenant="a")

            def compact(self):
                return cluster.compact(tenant="a")

            @property
            def pattern_count(self):
                return cluster.pattern_count(tenant="a")

            def row_ids(self):
                return cluster.row_ids(tenant="a")

        def check():
            batch = _queries(rng)
            got = cluster.run_batch(batch, tenant="a")
            want = _compile(_survivors(live), k, spec).run_batch(batch)
            assert np.array_equal(got[0], want[0])
            assert np.array_equal(got[1], want[1])
            got_b = cluster.run_batch(queries, tenant="b")
            assert np.array_equal(got_b[0], want_b[0])
            assert np.array_equal(got_b[1], want_b[1])

        _mutate_randomly(rng, _TenantStore(), live, n_ops=6, k=k,
                         check=check)
    finally:
        cluster.shutdown()


def test_cluster_growth_replaces_not_evicts():
    """Deterministic growth coverage: flood one tenant with inserts
    until its banks overflow — the cluster must re-place (defragment),
    keep both tenants admitted, and stay bitwise identical."""
    rng = np.random.default_rng(7)
    spec = _spec(banks=4)
    k = 3
    stored_a = _rows(rng, 10)
    stored_b = _rows(rng, 8)
    cluster = Cluster(spec, max_machines=4)
    try:
        cluster.admit(_compile(stored_a, k, spec), tenant_id="a")
        cluster.admit(_compile(stored_b, k, spec), tenant_id="b")
        live = {i: stored_a[i] for i in range(10)}
        defrags = cluster.defrag_count
        for _ in range(200):
            row = _rows(rng, 1)[0]
            live[cluster.insert(row, tenant="a")[0]] = row
            if cluster.defrag_count > defrags:
                break
        assert cluster.defrag_count > defrags, \
            "insert flood never triggered a growth re-placement"
        assert set(cluster.tenant_ids) == {"a", "b"}
        queries = _queries(rng)
        got = cluster.run_batch(queries, tenant="a")
        want = _compile(_survivors(live), k, spec).run_batch(queries)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])
        got_b = cluster.run_batch(queries, tenant="b")
        want_b = _compile(stored_b, k, spec).run_batch(queries)
        assert np.array_equal(got_b[0], want_b[0])
        assert np.array_equal(got_b[1], want_b[1])
    finally:
        cluster.shutdown()


# --------------------------------------------------------------------------
# Mutate-during-serve schedules
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_mutate_during_serve(seed):
    """Mutations interleaved with in-flight micro-batches: a request
    submitted before the mutation barrier sees the old or the new store
    (never a torn mix); every request after the barrier sees exactly
    the new store."""
    rng = np.random.default_rng(70_000 + seed)
    spec = _spec()
    k = 2
    n0 = 8
    stored = _rows(rng, n0)
    kernel = _compile(stored, k, spec, num_replicas=2)
    live = {i: stored[i] for i in range(n0)}
    queries = _queries(rng)
    want_old = _compile(_survivors(live), k, spec).run_batch(queries)

    with kernel.serve(max_batch=2, max_wait=0.0) as engine:
        in_flight = [engine.submit(queries) for _ in range(4)]
        new_rows = _rows(rng, 2)

        def mutate(backend):
            ids = backend.insert(new_rows)
            backend.delete([0])
            return ids

        results = engine.mutate(mutate)
        # Deterministic id assignment keeps every replica's id space
        # identical — the barrier returns one id list per backend.
        assert all(r == results[0] for r in results)
        for gid, row in zip(results[0], new_rows):
            live[gid] = row
        del live[0]
        want_new = _compile(_survivors(live), k, spec).run_batch(queries)

        # Post-barrier requests see exactly the mutated store.
        after = engine.submit(queries).result(timeout=30)
        assert np.array_equal(after[0], want_new[0])
        assert np.array_equal(after[1], want_new[1])

        # Pre-barrier requests were served whole, before or after.
        for future in in_flight:
            values, indices = future.result(timeout=30)
            old = np.array_equal(values, want_old[0]) and np.array_equal(
                indices, want_old[1]
            )
            new = np.array_equal(values, want_new[0]) and np.array_equal(
                indices, want_new[1]
            )
            assert old or new, "in-flight request saw a torn store"


# --------------------------------------------------------------------------
# FusedPlan invalidation: mutations interleaved with fused batches
# --------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(20))
def test_fused_invalidation_matches_unfused_oracle(seed):
    """Random mutation schedules interleaved with fused ``run_batch``:
    every mutation must drop the cached :class:`FusedPlan`, and every
    rebuilt plan must stay bitwise identical — results, candidate
    values and the full energy/latency accounting — to the retained
    unfused session walk driven through the same schedule."""
    rng = np.random.default_rng(654_000 + seed)
    k = int(rng.integers(1, 4))
    stored = _rows(rng, int(rng.integers(k + 2, 10)))
    fused_kernel = _compile(stored, k, _spec())
    oracle_kernel = _compile(stored, k, _spec(), fused=False)
    fused, oracle = fused_kernel.session(), oracle_kernel.session()
    live = {gid: row for gid, row in zip(fused.row_ids(), stored)}
    mutations = 0

    def check():
        queries = _queries(rng)
        rf = fused.run_batch(queries)
        ro = oracle.run_batch(queries)
        np.testing.assert_array_equal(rf[0], ro[0])
        np.testing.assert_array_equal(rf[1], ro[1])
        np.testing.assert_array_equal(fused.last_values, oracle.last_values)
        ef, eo = fused.last_report.energy, oracle.last_report.energy
        for field in ("search", "read", "merge", "host", "write"):
            assert getattr(ef, field) == getattr(eo, field), field
        assert (
            fused.last_report.query_latency_ns
            == oracle.last_report.query_latency_ns
        )
        assert fused.last_report.searches == oracle.last_report.searches

    class _Tandem:
        """Apply every mutation to both sessions, keeping them in step."""

        def insert(self, rows):
            ids = fused.insert(rows)
            assert oracle.insert(rows) == ids
            # Any mutation must invalidate the cached plan.
            assert fused._fused_plan is None
            return ids

        def delete(self, ids):
            fused.delete(ids)
            oracle.delete(ids)
            assert fused._fused_plan is None

        def update(self, gid, row):
            fused.update(gid, row)
            oracle.update(gid, row)
            assert fused._fused_plan is None

        def compact(self):
            fused.compact()
            oracle.compact()
            assert fused._fused_plan is None

        @property
        def pattern_count(self):
            assert fused.pattern_count == oracle.pattern_count
            return fused.pattern_count

        def row_ids(self):
            assert fused.row_ids() == oracle.row_ids()
            return fused.row_ids()

    _mutate_randomly(rng, _Tandem(), live, 30, k, check)
    assert fused.fused_runs == fused.batches_run > 0
    assert oracle.fused_runs == 0


def test_store_state_snapshots_survive_fusion():
    """``store_state()`` of a fused session restores onto a fresh
    session (fused or not) with bitwise-identical serving."""
    rng = np.random.default_rng(13)
    stored = _rows(rng, 8)
    kernel = _compile(stored, 2, _spec())
    session = kernel.session()
    queries = _queries(rng)
    session.run_batch(queries)          # build + use the plan
    session.insert(_rows(rng, 2))
    session.delete([0, 3])
    expected = session.run_batch(queries)
    state = session.store_state()
    for fused in (True, False):
        fresh = _compile(stored, 2, _spec(), fused=fused).session()
        fresh.restore(state)
        got = fresh.run_batch(queries)
        np.testing.assert_array_equal(got[0], expected[0])
        np.testing.assert_array_equal(got[1], expected[1])
