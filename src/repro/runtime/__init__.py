"""Runtime: the IR interpreter, batched query sessions and host
reference semantics."""

from .executor import ExecutionError, Interpreter
from .session import QueryProgram, QuerySession, SessionError
from . import values

__all__ = [
    "ExecutionError",
    "Interpreter",
    "QueryProgram",
    "QuerySession",
    "SessionError",
    "values",
]
