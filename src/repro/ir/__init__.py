"""Mini-MLIR intermediate representation.

This package provides the IR substrate C4CAM is built on: SSA values,
typed operations with nested regions, a dialect/op registry, textual
printing and parsing, verification, builders and traversal utilities.
"""

from .attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    as_attribute,
    parse_attribute,
)
from .block import Block, Region
from .builder import InsertionPoint, OpBuilder
from .context import Context, global_context, load_all_dialects
from .module import ModuleOp
from .operation import Operation, lookup_op_class, register_op, registered_ops
from .parser import ParseError, parse_module, parse_operation
from .printer import print_module, print_operation
from .traversal import count, first, parent_of_type, walk
from .types import (
    DYNAMIC,
    BoolType,
    CamIdType,
    DeviceHandleType,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    ShapedType,
    TensorType,
    Type,
    f16,
    f32,
    f64,
    i1,
    i8,
    i32,
    i64,
    index,
    none,
    parse_type,
)
from .value import BlockArgument, OpResult, Use, Value
from .verifier import VerificationError, verify

__all__ = [
    "ArrayAttr", "Attribute", "BoolAttr", "FloatAttr", "IntegerAttr",
    "StringAttr", "SymbolRefAttr", "TypeAttr", "UnitAttr", "as_attribute",
    "parse_attribute", "Block", "Region", "InsertionPoint", "OpBuilder",
    "Context", "global_context", "load_all_dialects", "ModuleOp",
    "Operation", "lookup_op_class", "register_op", "registered_ops",
    "ParseError", "parse_module", "parse_operation", "print_module",
    "print_operation", "count", "first", "parent_of_type", "walk",
    "DYNAMIC", "BoolType", "CamIdType", "DeviceHandleType", "FloatType",
    "FunctionType", "IndexType", "IntegerType", "MemRefType", "NoneType",
    "ShapedType", "TensorType", "Type", "f16", "f32", "f64", "i1", "i8",
    "i32", "i64", "index", "none", "parse_type", "BlockArgument",
    "OpResult", "Use", "Value", "VerificationError", "verify",
]
