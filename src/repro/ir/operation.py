"""The generic :class:`Operation` and the op-class registry.

Every IR node is an ``Operation``: it has a dotted name (``dialect.op``),
typed operands and results, an attribute dictionary, and nested regions.
Dialect modules subclass ``Operation``, set ``OP_NAME`` and register the
class so the parser and builders can construct strongly-typed instances.

The design intentionally mirrors MLIR:

* operands are SSA :class:`~repro.ir.value.Value`\\ s with maintained
  use-lists;
* results are :class:`~repro.ir.value.OpResult`\\ s owned by the op;
* regions contain blocks, blocks contain operations — giving the nested,
  verifiable structure the C4CAM passes rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type as PyType

from .attributes import Attribute, as_attribute
from .types import Type
from .value import OpResult, Value

_OP_REGISTRY: Dict[str, PyType["Operation"]] = {}


def register_op(cls: PyType["Operation"]) -> PyType["Operation"]:
    """Class decorator: register ``cls`` under its ``OP_NAME``."""
    name = getattr(cls, "OP_NAME", None)
    if not name or "." not in name:
        raise ValueError(f"{cls.__name__} must define a dotted OP_NAME")
    if name in _OP_REGISTRY and _OP_REGISTRY[name] is not cls:
        raise ValueError(f"duplicate registration for op {name!r}")
    _OP_REGISTRY[name] = cls
    return cls


def lookup_op_class(name: str) -> PyType["Operation"]:
    """Return the registered class for ``name`` or the generic Operation."""
    return _OP_REGISTRY.get(name, Operation)


def registered_ops() -> Dict[str, PyType["Operation"]]:
    """A copy of the op registry (name -> class)."""
    return dict(_OP_REGISTRY)


class Operation:
    """A generic IR operation.

    Parameters
    ----------
    name:
        Dotted operation name, e.g. ``"cim.execute"``.  Subclasses with an
        ``OP_NAME`` may omit it.
    operands:
        SSA values consumed by the operation.
    result_types:
        Types of the produced results.
    attributes:
        Mapping of attribute name to :class:`Attribute` (plain Python values
        are coerced via :func:`~repro.ir.attributes.as_attribute`).
    regions:
        Number of (initially empty) regions, or a list of Region objects.
    """

    OP_NAME: Optional[str] = None

    # Traits, in the MLIR sense.  Subclasses may override.
    IS_TERMINATOR = False
    HAS_SIDE_EFFECTS = False

    def __init__(
        self,
        name: Optional[str] = None,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, object]] = None,
        regions: int = 0,
    ):
        from .block import Region

        self.name: str = name or type(self).OP_NAME or ""
        if not self.name:
            raise ValueError("operation requires a name")
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, t) for i, t in enumerate(result_types)
        ]
        self.attributes: Dict[str, Attribute] = {
            k: as_attribute(v) for k, v in (attributes or {}).items()
        }
        if isinstance(regions, int):
            self.regions: List[Region] = [Region(self) for _ in range(regions)]
        else:
            self.regions = list(regions)
            for r in self.regions:
                r.parent_op = self
        self.parent_block = None  # set by Block.insert/append
        for v in operands:
            self._append_operand(v)

    # ---------------------------------------------------------------- utils
    @property
    def dialect(self) -> str:
        """Dialect prefix of the op name."""
        return self.name.split(".", 1)[0]

    @property
    def operands(self) -> Sequence[Value]:
        """Read-only view of the operand list (use set_operand to mutate)."""
        return tuple(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    @property
    def num_results(self) -> int:
        return len(self.results)

    @property
    def result(self) -> OpResult:
        """The single result (raises if the op has 0 or >1 results)."""
        if len(self.results) != 1:
            raise ValueError(f"{self.name} has {len(self.results)} results")
        return self.results[0]

    @property
    def parent_op(self) -> Optional["Operation"]:
        """The operation whose region contains this op, if any."""
        block = self.parent_block
        if block is None or block.parent_region is None:
            return None
        return block.parent_region.parent_op

    @property
    def parent_region(self):
        block = self.parent_block
        return None if block is None else block.parent_region

    # ------------------------------------------------------------- operands
    def _append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise TypeError(
                f"operand of {self.name} must be a Value, got {value!r}"
            )
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(self, index)

    def _set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old._remove_use(self, index)
        self._operands[index] = value
        value.uses.append(_use_at(self, index))

    def set_operand(self, index: int, value: Value) -> None:
        """Replace the ``index``-th operand with ``value``."""
        self._set_operand(index, value)

    def drop_all_operands(self) -> None:
        """Remove all operands, updating use lists."""
        for i, v in enumerate(self._operands):
            v._remove_use(self, i)
        self._operands.clear()

    # -------------------------------------------------------------- erasure
    def erase(self) -> None:
        """Remove this op from its block and drop its operand uses.

        The op must have no remaining uses of its results.
        """
        for r in self.results:
            if r.has_uses:
                raise RuntimeError(
                    f"cannot erase {self.name}: result #{r.index} still has uses"
                )
        self.drop_all_operands()
        for region in self.regions:
            for block in list(region.blocks):
                for op in list(block.operations):
                    op.drop_all_operands()
        if self.parent_block is not None:
            self.parent_block._remove(self)
            self.parent_block = None

    def replace_with(self, values: Sequence[Value]) -> None:
        """Replace all result uses with ``values`` and erase the op."""
        if len(values) != len(self.results):
            raise ValueError(
                f"replacement count mismatch: {len(values)} != {len(self.results)}"
            )
        for res, val in zip(self.results, values):
            res.replace_all_uses_with(val)
        self.erase()

    # ------------------------------------------------------------- movement
    def move_before(self, other: "Operation") -> None:
        """Detach this op and reinsert it immediately before ``other``."""
        if self.parent_block is not None:
            self.parent_block._remove(self)
        other.parent_block.insert_before(other, self)

    def move_after(self, other: "Operation") -> None:
        """Detach this op and reinsert it immediately after ``other``."""
        if self.parent_block is not None:
            self.parent_block._remove(self)
        other.parent_block.insert_after(other, self)

    # ------------------------------------------------------------ traversal
    def walk(self, post_order: bool = False):
        """Yield this op and every nested op (pre-order by default)."""
        if not post_order:
            yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    yield from op.walk(post_order=post_order)
        if post_order:
            yield self

    # -------------------------------------------------------------- cloning
    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this operation.

        ``value_map`` maps old values to new ones; operands found in the map
        are remapped, others are reused as-is.  Results and nested block
        arguments are added to the map so that uses inside cloned regions
        resolve to the cloned definitions.
        """
        from .block import Block

        value_map = value_map if value_map is not None else {}
        cls = type(self)
        new = Operation.__new__(cls)
        Operation.__init__(
            new,
            name=self.name,
            operands=[value_map.get(v, v) for v in self._operands],
            result_types=[r.type for r in self.results],
            attributes=dict(self.attributes),
            regions=0,
        )
        for old_res, new_res in zip(self.results, new.results):
            value_map[old_res] = new_res
        from .block import Region

        for region in self.regions:
            new_region = Region(new)
            new.regions.append(new_region)
            for block in region.blocks:
                new_block = Block([a.type for a in block.arguments])
                new_region.append(new_block)
                for old_arg, new_arg in zip(block.arguments, new_block.arguments):
                    value_map[old_arg] = new_arg
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new

    # ---------------------------------------------------------- verification
    def verify(self) -> None:
        """Op-specific structural checks; subclasses override and extend."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"

    def __str__(self) -> str:
        from .printer import print_operation

        return print_operation(self)


def _use_at(op: Operation, index: int):
    from .value import Use

    return Use(op, index)
