"""Unit tests for attributes and their textual round-trips."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    as_attribute,
    parse_attribute,
)
from repro.ir.types import TensorType, f32, i32


class TestAttributeKinds:
    def test_integer(self):
        a = IntegerAttr(42)
        assert a.value == 42
        assert str(a) == "42 : i64"

    def test_integer_width(self):
        assert str(IntegerAttr(7, 32)) == "7 : i32"

    def test_negative_integer(self):
        assert str(IntegerAttr(-2)) == "-2 : i64"

    def test_float(self):
        a = FloatAttr(1.5, 32)
        assert a.value == 1.5
        assert str(a) == "1.5 : f32"

    def test_bool(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"

    def test_string(self):
        assert str(StringAttr("forward")) == '"forward"'

    def test_string_escaping(self):
        assert str(StringAttr('a"b')) == '"a\\"b"'

    def test_type_attr(self):
        assert str(TypeAttr(TensorType([2], f32))) == "tensor<2xf32>"

    def test_array(self):
        a = ArrayAttr([IntegerAttr(1), IntegerAttr(2)])
        assert len(a) == 2
        assert str(a) == "[1 : i64, 2 : i64]"
        assert [e.value for e in a] == [1, 2]

    def test_array_rejects_non_attribute(self):
        with pytest.raises(TypeError):
            ArrayAttr([1, 2])

    def test_symbol_ref(self):
        assert str(SymbolRefAttr("main")) == "@main"

    def test_unit(self):
        assert str(UnitAttr()) == "unit"

    def test_equality_and_hash(self):
        assert IntegerAttr(1) == IntegerAttr(1)
        assert IntegerAttr(1) != IntegerAttr(2)
        assert IntegerAttr(1) != FloatAttr(1.0)
        assert len({StringAttr("x"), StringAttr("x")}) == 1


class TestAsAttribute:
    def test_passthrough(self):
        a = IntegerAttr(3)
        assert as_attribute(a) is a

    def test_bool_before_int(self):
        assert isinstance(as_attribute(True), BoolAttr)

    def test_int(self):
        assert as_attribute(5) == IntegerAttr(5)

    def test_float(self):
        assert as_attribute(2.5) == FloatAttr(2.5)

    def test_str(self):
        assert as_attribute("hi") == StringAttr("hi")

    def test_type(self):
        assert as_attribute(f32) == TypeAttr(f32)

    def test_sequence(self):
        a = as_attribute([1, 2])
        assert isinstance(a, ArrayAttr)

    def test_unsupported(self):
        with pytest.raises(TypeError):
            as_attribute(object())


class TestParseAttribute:
    @pytest.mark.parametrize(
        "text",
        [
            "42 : i64", "-2 : i64", "1.5 : f32", "true", "false",
            '"forward"', "@main", "[1 : i64, 2 : i64]", "unit", "[]",
        ],
    )
    def test_roundtrip(self, text):
        assert str(parse_attribute(text)) == text

    def test_nested_array(self):
        text = "[[1 : i64], [2 : i64]]"
        assert str(parse_attribute(text)) == text

    def test_string_with_comma(self):
        assert parse_attribute('"a,b"') == StringAttr("a,b")

    def test_garbage(self):
        with pytest.raises(ValueError):
            parse_attribute("%%%")
