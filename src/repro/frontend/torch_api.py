"""A tracing mini-``torch``: the TorchScript surface C4CAM consumes.

Users write kernels exactly like the paper's Fig. 4a::

    import repro.frontend.torch as torch

    class DotSimilarity(torch.Module):
        def __init__(self, weight):
            self.weight = torch.tensor(weight)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            values, indices = torch.ops.aten.topk(matmul, 1, largest=False)
            return indices

Calling :func:`trace` records the operations into a :class:`Graph`, which
the importer converts to the ``torch`` dialect.  Only the search-kernel
subset of ATen is supported — including ``norm`` and ``topk``, the two
primitives the paper adds to the MLIR PyTorch front end (§III-C).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


class TraceError(TypeError):
    """An unsupported operation or argument reached the tracer."""


class Node:
    """One traced operation."""

    _counter = 0

    def __init__(
        self,
        op: str,
        inputs: Sequence["Tensor"],
        attrs: Optional[dict] = None,
        out_shapes: Sequence[Tuple[int, ...]] = (),
        out_dtypes: Sequence[str] = (),
    ):
        self.op = op
        self.inputs = list(inputs)
        self.attrs = dict(attrs or {})
        self.out_shapes = [tuple(s) for s in out_shapes]
        self.out_dtypes = list(out_dtypes)
        Node._counter += 1
        self.id = Node._counter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.op}#{self.id})"


class Graph:
    """The result of tracing: placeholders, parameters and nodes."""

    def __init__(self):
        self.placeholders: List["Tensor"] = []
        self.parameters: List["Tensor"] = []
        self.nodes: List[Node] = []
        self.outputs: List["Tensor"] = []

    def add_node(self, node: Node) -> None:
        self.nodes.append(node)


_ACTIVE_GRAPH: Optional[Graph] = None


def _graph() -> Graph:
    if _ACTIVE_GRAPH is None:
        raise TraceError(
            "no active trace; build tensors inside trace()/Module.trace()"
        )
    return _ACTIVE_GRAPH


class Tensor:
    """A traced tensor value: shape + dtype + the node producing it."""

    def __init__(
        self,
        shape: Sequence[int],
        dtype: str = "f32",
        node: Optional[Node] = None,
        output_index: int = 0,
        data: Optional[np.ndarray] = None,
        kind: str = "op",
    ):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.node = node
        self.output_index = output_index
        self.data = data
        self.kind = kind  # placeholder / parameter / op / constant

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def size(self, dim: Optional[int] = None):
        """Shape, or one dimension of it, torch-style."""
        if dim is None:
            return self.shape
        return self.shape[dim]

    # ------------------------------------------------------------- methods
    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        return transpose(self, dim0, dim1)

    def matmul(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    def sub(self, other: "Tensor") -> "Tensor":
        return sub(self, other)

    def div(self, other: "Tensor") -> "Tensor":
        return div(self, other)

    def norm(self, p: int = 2, dim: int = -1, keepdim: bool = False) -> "Tensor":
        return norm(self, p=p, dim=dim, keepdim=keepdim)

    def topk(self, k: int, dim: int = -1, largest: bool = True, sorted: bool = True):
        return topk(self, k, dim=dim, largest=largest, sorted=sorted)

    def __sub__(self, other: "Tensor") -> "Tensor":
        return sub(self, other)

    def __truediv__(self, other: "Tensor") -> "Tensor":
        return div(self, other)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, dtype={self.dtype}, kind={self.kind})"


def tensor(data, dtype: str = "f32") -> Tensor:
    """Create a parameter tensor from concrete data (traced as a capture)."""
    array = np.asarray(data, dtype=np.float32 if dtype == "f32" else np.int64)
    t = Tensor(array.shape, dtype, data=array, kind="parameter")
    if _ACTIVE_GRAPH is not None:
        _ACTIVE_GRAPH.parameters.append(t)
    return t


def _emit(
    op: str,
    inputs: Sequence[Tensor],
    attrs: dict,
    out_shapes: Sequence[Tuple[int, ...]],
    out_dtypes: Sequence[str],
):
    graph = _graph()
    for t in inputs:
        if not isinstance(t, Tensor):
            raise TraceError(f"{op}: expected a traced Tensor, got {type(t)}")
        if t.kind == "parameter" and t not in graph.parameters:
            graph.parameters.append(t)
    node = Node(op, inputs, attrs, out_shapes, out_dtypes)
    graph.add_node(node)
    outs = [
        Tensor(s, d, node=node, output_index=i)
        for i, (s, d) in enumerate(zip(out_shapes, out_dtypes))
    ]
    return outs[0] if len(outs) == 1 else tuple(outs)


# ------------------------------------------------------------ functional API
def transpose(input: Tensor, dim0: int, dim1: int) -> Tensor:
    """Swap two dimensions (``torch.transpose``)."""
    shape = list(input.shape)
    d0, d1 = dim0 % len(shape), dim1 % len(shape)
    shape[d0], shape[d1] = shape[d1], shape[d0]
    return _emit(
        "transpose", [input], {"dim0": dim0, "dim1": dim1},
        [tuple(shape)], [input.dtype],
    )


def matmul(lhs: Tensor, rhs: Tensor) -> Tensor:
    """Matrix multiply (``torch.matmul``)."""
    if lhs.shape[-1] != rhs.shape[0 if rhs.ndim == 1 else -2]:
        raise TraceError(f"matmul shape mismatch: {lhs.shape} x {rhs.shape}")
    shape = lhs.shape[:-1] + (rhs.shape[-1],)
    return _emit("matmul", [lhs, rhs], {}, [shape], [lhs.dtype])


def mm(lhs: Tensor, rhs: Tensor) -> Tensor:
    """2-D matrix multiply (``torch.mm``)."""
    if lhs.ndim != 2 or rhs.ndim != 2:
        raise TraceError("mm requires 2-D tensors")
    return matmul(lhs, rhs)


def sub(lhs: Tensor, rhs: Tensor) -> Tensor:
    """Elementwise broadcast subtraction."""
    shape = _broadcast(lhs.shape, rhs.shape)
    return _emit("sub", [lhs, rhs], {}, [shape], [lhs.dtype])


def div(lhs: Tensor, rhs: Tensor, rhs2: Optional[Tensor] = None) -> Tensor:
    """Elementwise broadcast division.

    The optional third operand divides again (``lhs / rhs / rhs2``) —
    the form the cosine-similarity kernel uses (paper Algorithm 1:
    ``div(v4, v2, v1)``).
    """
    shape = _broadcast(lhs.shape, rhs.shape)
    inputs = [lhs, rhs]
    if rhs2 is not None:
        shape = _broadcast(shape, rhs2.shape)
        inputs.append(rhs2)
    return _emit("div", inputs, {}, [shape], [lhs.dtype])


def norm(
    input: Tensor, p: int = 2, dim: int = -1, keepdim: bool = False
) -> Tensor:
    """Vector p-norm along ``dim`` (the paper's frontend extension)."""
    d = dim % input.ndim
    if keepdim:
        shape = tuple(1 if i == d else s for i, s in enumerate(input.shape))
    else:
        shape = tuple(s for i, s in enumerate(input.shape) if i != d)
    return _emit(
        "norm", [input], {"p": p, "dim": dim, "keepdim": keepdim},
        [shape], [input.dtype],
    )


def topk(
    input: Tensor,
    k: int,
    dim: int = -1,
    largest: bool = True,
    sorted: bool = True,
) -> Tuple[Tensor, Tensor]:
    """Top-k values and indices (the paper's frontend extension)."""
    d = dim % input.ndim
    if not 1 <= k <= input.shape[d]:
        raise TraceError(f"topk k={k} out of range for shape {input.shape}")
    shape = tuple(k if i == d else s for i, s in enumerate(input.shape))
    return _emit(
        "topk", [input],
        {"k": k, "dim": dim, "largest": largest, "sorted": sorted},
        [shape, shape], [input.dtype, "i64"],
    )


def _broadcast(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    out = []
    ra, rb = list(reversed(a)), list(reversed(b))
    for i in range(max(len(ra), len(rb))):
        da = ra[i] if i < len(ra) else 1
        db = rb[i] if i < len(rb) else 1
        if da != db and 1 not in (da, db):
            raise TraceError(f"cannot broadcast {a} and {b}")
        out.append(max(da, db))
    return tuple(reversed(out))


# -------------------------------------------------------------- torch.ops.aten
class _Aten:
    """The ``torch.ops.aten`` namespace used in the paper's example."""

    @staticmethod
    def topk(input: Tensor, k: int, dim: int = -1, largest: bool = True,
             sorted: bool = True):
        return topk(input, k, dim=dim, largest=largest, sorted=sorted)

    @staticmethod
    def norm(input: Tensor, p: int = 2, dim: int = -1, keepdim: bool = False):
        return norm(input, p=p, dim=dim, keepdim=keepdim)


class _Ops:
    aten = _Aten()


ops = _Ops()


# ------------------------------------------------------------------- tracing
class Module:
    """Minimal ``nn.Module`` stand-in: subclass and define ``forward``."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


def trace(fn, example_inputs: Sequence[Tensor]) -> Graph:
    """Trace ``fn`` (a callable or :class:`Module`) into a :class:`Graph`.

    ``example_inputs`` are shape/dtype descriptors created with
    :func:`placeholder` (or plain numpy arrays, converted automatically).
    Captured :func:`tensor` parameters become trailing graph parameters.
    """
    global _ACTIVE_GRAPH
    graph = Graph()
    inputs = []
    for ex in example_inputs:
        if isinstance(ex, Tensor):
            ph = Tensor(ex.shape, ex.dtype, kind="placeholder")
        else:
            arr = np.asarray(ex)
            dtype = "i64" if np.issubdtype(arr.dtype, np.integer) else "f32"
            ph = Tensor(arr.shape, dtype, kind="placeholder")
        inputs.append(ph)
    graph.placeholders = inputs
    previous = _ACTIVE_GRAPH
    _ACTIVE_GRAPH = graph
    try:
        result = fn(*inputs)
    finally:
        _ACTIVE_GRAPH = previous
    outputs = result if isinstance(result, (tuple, list)) else [result]
    for out in outputs:
        if not isinstance(out, Tensor):
            raise TraceError(f"traced function returned non-Tensor: {out!r}")
    graph.outputs = list(outputs)
    return graph


def placeholder(shape: Sequence[int], dtype: str = "f32") -> Tensor:
    """A shape/dtype descriptor for :func:`trace` example inputs."""
    return Tensor(shape, dtype, kind="placeholder")
