"""Traffic-driven design-space autotuner: pick the machine for the load.

The Fig. 8 design-space exploration (``benchmarks/test_fig8_dse.py``)
sweeps arch configurations for one *static* kernel.  A serving fleet
needs the same sweep against its *traffic*: the best subarray geometry,
shard count, lane count and placement policy depend on who is hot, how
big their batches are and what deadlines they carry.  This module runs
that search:

1. describe the offered load as a :class:`TrafficTrace` (one
   :class:`~repro.runtime.costmodel.TrafficHint` per tenant — arrival
   rate, batch rows, priority, deadline; :meth:`TrafficTrace.zipf`
   builds the classic heavy-tailed multi-tenant mix);
2. :func:`autotune` compiles every tenant for each candidate arch
   preset, **probes** one measured batch per tenant to calibrate a
   :class:`~repro.runtime.costmodel.PlacementCost` (predictions are
   anchored to simulator numbers, not guesses), then scores every
   ``preset x shards x lanes x policy`` combination on predicted
   SLO-weighted response;
3. the winner is emitted as a reproducible, JSON-able cluster plan —
   :meth:`~repro.runtime.cluster.Cluster.plan` format — that
   :meth:`~repro.runtime.cluster.Cluster.from_plan` rebuilds bitwise
   identically.

Candidates that violate a deadline SLO rank strictly below feasible
ones; among feasible candidates the lowest predicted cost wins, with
fleet size as the tiebreak (never pay silicon for nothing).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.transforms.partitioning import CapacityError

from .cluster import Cluster
from .costmodel import (
    CostBreakdown,
    PlacementCost,
    TenantProfile,
    TrafficHint,
)
from .placement import plan_placement, tenant_demand

__all__ = [
    "TrafficTrace",
    "Candidate",
    "AutotuneResult",
    "autotune",
]


# ------------------------------------------------------------------ traffic
@dataclass(frozen=True)
class TrafficTrace:
    """The offered load: one traffic hint per tenant.

    A trace is the autotuner's input contract and the soak benchmark's
    arrival generator.  :meth:`zipf` builds the canonical skewed mix —
    a few hot tenants, a long cold tail — and :meth:`arrivals` unrolls
    the trace into a deterministic request timeline (evenly spaced
    per-tenant streams, phase-shifted so tenants interleave instead of
    stampeding), so replays are reproducible without an RNG.
    """

    hints: Tuple[TrafficHint, ...]

    def __post_init__(self):
        if not self.hints:
            raise ValueError("a TrafficTrace needs at least one hint")
        seen = set()
        for hint in self.hints:
            if hint.tenant_id in seen:
                raise ValueError(
                    f"duplicate tenant {hint.tenant_id!r} in trace"
                )
            seen.add(hint.tenant_id)

    @property
    def tenant_ids(self) -> List[str]:
        return [hint.tenant_id for hint in self.hints]

    @property
    def total_qps(self) -> float:
        return sum(hint.rate_qps for hint in self.hints)

    def hint(self, tenant_id: str) -> TrafficHint:
        for hint in self.hints:
            if hint.tenant_id == tenant_id:
                return hint
        raise KeyError(f"no tenant {tenant_id!r} in this trace")

    def as_dict(self) -> Dict[str, TrafficHint]:
        return {hint.tenant_id: hint for hint in self.hints}

    @classmethod
    def zipf(
        cls,
        tenant_ids: Sequence[str],
        total_qps: float = 1000.0,
        skew: float = 1.1,
        batch_rows: int = 1,
        priorities: Optional[Mapping[str, int]] = None,
        deadlines_s: Optional[Mapping[str, float]] = None,
    ) -> "TrafficTrace":
        """A Zipf(``skew``)-distributed rate mix over ``tenant_ids``
        (listed hottest first) summing to ``total_qps``."""
        if not tenant_ids:
            raise ValueError("zipf needs at least one tenant id")
        if total_qps <= 0:
            raise ValueError("total_qps must be positive")
        weights = [
            1.0 / float(rank + 1) ** skew
            for rank in range(len(tenant_ids))
        ]
        scale = total_qps / sum(weights)
        priorities = priorities or {}
        deadlines_s = deadlines_s or {}
        return cls(hints=tuple(
            TrafficHint(
                tenant_id=tid,
                rate_qps=weight * scale,
                batch_rows=batch_rows,
                priority=priorities.get(tid, 0),
                deadline_s=deadlines_s.get(tid),
            )
            for tid, weight in zip(tenant_ids, weights)
        ))

    def arrivals(self, horizon_s: float) -> List[Tuple[float, str]]:
        """The trace unrolled to ``(time_s, tenant_id)`` request
        arrivals over ``[0, horizon_s)``.

        Each tenant issues requests of ``batch_rows`` rows at a uniform
        period (``batch_rows / rate_qps``), phase-offset by its trace
        position — deterministic, so two replays see byte-identical
        timelines.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        out: List[Tuple[float, str]] = []
        count = len(self.hints)
        for index, hint in enumerate(self.hints):
            if hint.rate_qps <= 0:
                continue
            period = hint.batch_rows / hint.rate_qps
            phase = period * (index + 1) / (count + 1)
            t = phase
            while t < horizon_s:
                out.append((t, hint.tenant_id))
                t += period
        out.sort(key=lambda item: (item[0], item[1]))
        return out


# --------------------------------------------------------------- candidates
@dataclass(frozen=True)
class Candidate:
    """One scored point of the serving design space."""

    preset: str
    spec: ArchSpec
    policy: str
    lanes: int
    shards: int
    machines: int
    predicted: CostBreakdown
    slo_violations: Tuple[str, ...]

    @property
    def feasible(self) -> bool:
        """No tenant's predicted response misses its deadline."""
        return not self.slo_violations

    @property
    def sort_key(self) -> tuple:
        """Feasible first, then predicted cost, then fleet size."""
        return (
            len(self.slo_violations),
            self.predicted.total,
            self.machines,
            self.lanes,
            self.shards,
            self.preset,
            self.policy,
        )

    def describe(self) -> str:
        status = "ok" if self.feasible else (
            f"SLO-miss:{','.join(self.slo_violations)}"
        )
        return (
            f"{self.preset} x{self.shards} shard(s) x{self.lanes} "
            f"lane(s) [{self.policy}] -> cost {self.predicted.total:.4g} "
            f"on {self.machines} machine(s) ({status})"
        )


@dataclass
class AutotuneResult:
    """The search outcome: the winner, its plan, and the full ranking.

    ``plan`` is :meth:`Cluster.plan`-shaped (JSON-able); ``kernels``
    are the winner's compiled artifacts keyed by tenant, ready to hand
    to :meth:`Cluster.from_plan` together with ``plan``.
    """

    winner: Candidate
    plan: Optional[dict]
    candidates: List[Candidate]
    kernels: Dict[str, object]
    profiles: Dict[str, TenantProfile]
    skipped: List[Tuple[str, str]]

    def describe(self) -> str:
        lines = [f"winner: {self.winner.describe()}"]
        for candidate in self.candidates[1:]:
            lines.append(f"  then: {candidate.describe()}")
        for name, why in self.skipped:
            lines.append(f"  skipped {name}: {why}")
        return "\n".join(lines)


# ------------------------------------------------------------------- search
def _probe_kernel(kernel, tenant_id: str, hint: TrafficHint,
                  features: int) -> TenantProfile:
    """Calibrate one tenant on one candidate arch: a single measured
    batch at the hinted batch size anchors the profile to simulator
    numbers (latency in the sim is data-independent, so a deterministic
    probe pattern is as good as live queries)."""
    rows = max(1, hint.batch_rows)
    probe = np.linspace(
        -1.0, 1.0, num=rows * features, dtype=np.float64
    ).reshape(rows, features)
    kernel.run_batch(probe)
    return TenantProfile.from_report(tenant_id, kernel.last_report)


def _kernel_features(kernel, example_inputs) -> int:
    width = getattr(kernel, "query_width", None)
    if callable(width):
        value = width()
        if value:
            return int(value)
    shape = getattr(example_inputs[0], "shape", None)
    if shape and len(shape) >= 2:
        return int(shape[-1])
    raise ValueError("cannot infer the query width for the probe batch")


def autotune(
    models: Mapping[str, Callable],
    example_inputs: Mapping[str, Sequence],
    trace: TrafficTrace,
    presets: Mapping[str, ArchSpec],
    policies: Sequence[str] = ("ffd", "cost"),
    lane_options: Sequence[int] = (1,),
    shard_options: Sequence[int] = (1,),
    max_machines: Optional[int] = None,
    tech: TechnologyModel = FEFET_45NM,
    energy_weight: float = 0.0,
    emit_plan: bool = True,
    cluster_kwargs: Optional[dict] = None,
) -> AutotuneResult:
    """Search ``preset x shards x lanes x policy`` for ``trace``.

    ``models`` maps each trace tenant to its traceable model and
    ``example_inputs`` to that model's compile-time example inputs;
    ``presets`` names the candidate :class:`ArchSpec`\\ s.  Presets a
    tenant cannot compile for (capacity overflow) are skipped and
    reported in :attr:`AutotuneResult.skipped`.  With ``emit_plan``
    (default) the winner is realized as a live
    :class:`~repro.runtime.cluster.Cluster` whose :meth:`plan` dict —
    placement pinned to the cost-informed layout — rides back in the
    result next to the winner's compiled kernels.
    """
    order = trace.tenant_ids
    missing = [tid for tid in order if tid not in models]
    if missing:
        raise ValueError(f"no model supplied for tenant(s) {missing}")
    if not presets:
        raise ValueError("autotune needs at least one arch preset")
    for policy in policies:
        if policy not in ("ffd", "cost"):
            raise ValueError(f"unknown placement policy {policy!r}")

    from repro.compiler import C4CAMCompiler

    hints = trace.as_dict()
    candidates: List[Candidate] = []
    skipped: List[Tuple[str, str]] = []
    compiled: Dict[Tuple[str, int], dict] = {}

    for preset_name, spec in presets.items():
        for shards in shard_options:
            label = (
                preset_name if shards == 1
                else f"{preset_name} x{shards} shards"
            )
            compiler = C4CAMCompiler(spec, tech)
            kernels: Dict[str, object] = {}
            profiles: Dict[str, TenantProfile] = {}
            try:
                for tid in order:
                    kernel = compiler.compile(
                        models[tid],
                        example_inputs[tid],
                        num_shards=None if shards == 1 else shards,
                    )
                    features = _kernel_features(
                        kernel, example_inputs[tid]
                    )
                    profiles[tid] = _probe_kernel(
                        kernel, tid, hints[tid], features
                    )
                    kernels[tid] = kernel
            except CapacityError as exc:
                skipped.append((label, str(exc).splitlines()[0]))
                continue
            compiled[(preset_name, shards)] = {
                "kernels": kernels, "profiles": profiles,
            }
            cost_model = PlacementCost(
                profiles, hints=hints, tech=tech,
                energy_weight=energy_weight,
            )
            placed = sorted(
                tid for tid in order
                if getattr(kernels[tid], "shard_set", None) is None
            )
            sharded = [tid for tid in order if tid not in placed]
            groups: List[List[str]] = []
            for policy in policies:
                shared_machines = 0
                if placed:
                    demands = [
                        tenant_demand(
                            tid, kernels[tid].query_programs[0].plan, spec
                        )
                        for tid in placed
                    ]
                    try:
                        pplan = plan_placement(
                            demands, spec, max_machines,
                            policy=policy, cost_model=cost_model,
                        )
                    except CapacityError as exc:
                        skipped.append(
                            (f"{label} [{policy}]",
                             str(exc).splitlines()[0])
                        )
                        continue
                    groups = [
                        [a.tenant_id for a in pplan.machine_tenants(m)]
                        for m in range(pplan.num_machines)
                    ]
                    shared_machines = pplan.num_machines
                else:
                    groups = []
                groups = groups + [[tid] for tid in sharded]
                private = sum(
                    kernels[tid].num_shards for tid in sharded
                )
                for lanes in lane_options:
                    if lanes < 1:
                        raise ValueError("lane counts must be >= 1")
                    if lanes == 1:
                        scored = cost_model
                    else:
                        # R lanes split a tenant's stream evenly; each
                        # lane is a private clone, so the extra silicon
                        # shows up in the machine count below.
                        scored = cost_model.with_hints({
                            tid: dataclasses.replace(
                                hint, rate_qps=hint.rate_qps / lanes
                            )
                            for tid, hint in hints.items()
                        })
                    breakdown = scored.score_groups(groups)
                    machines = (
                        shared_machines + private
                        + (lanes - 1) * len(order)
                    )
                    candidates.append(Candidate(
                        preset=preset_name,
                        spec=spec,
                        policy=policy,
                        lanes=lanes,
                        shards=shards,
                        machines=machines,
                        predicted=breakdown,
                        slo_violations=breakdown.slo_violations,
                    ))

    if not candidates:
        raise ValueError(
            "no feasible autotune candidate; skipped: "
            + "; ".join(f"{name} ({why})" for name, why in skipped)
        )
    candidates.sort(key=lambda c: c.sort_key)
    winner = candidates[0]
    bundle = compiled[(winner.preset, winner.shards)]

    plan_dict = None
    if emit_plan:
        plan_dict = _realize_plan(
            winner, bundle, trace, max_machines, tech,
            cluster_kwargs or {},
        )
    return AutotuneResult(
        winner=winner,
        plan=plan_dict,
        candidates=candidates,
        kernels=dict(bundle["kernels"]),
        profiles=dict(bundle["profiles"]),
        skipped=skipped,
    )


def _realize_plan(
    winner: Candidate,
    bundle: dict,
    trace: TrafficTrace,
    max_machines: Optional[int],
    tech: TechnologyModel,
    cluster_kwargs: dict,
) -> dict:
    """Build the winner as a live cluster, pin the cost-informed
    placement, and capture the reproducible plan dict."""
    kernels = bundle["kernels"]
    cost_model = PlacementCost(
        bundle["profiles"], hints=trace.as_dict(), tech=tech,
    )
    kwargs = dict(cluster_kwargs)
    kwargs.setdefault("max_machines", max_machines)
    kwargs.setdefault("autoscale_max_lanes", max(1, winner.lanes))
    cluster = Cluster(
        winner.spec,
        tech=tech,
        placement_policy=winner.policy,
        traffic_hints=trace.as_dict(),
        **kwargs,
    )
    try:
        for tid in trace.tenant_ids:
            cluster.admit(
                kernels[tid], tenant_id=tid, lanes=winner.lanes
            )
        placed = sorted(
            tid for tid in trace.tenant_ids
            if getattr(kernels[tid], "shard_set", None) is None
        )
        if placed:
            demands = [
                tenant_demand(
                    tid, kernels[tid].query_programs[0].plan, winner.spec
                )
                for tid in placed
            ]
            pplan = plan_placement(
                demands, winner.spec, max_machines,
                policy=winner.policy, cost_model=cost_model,
            )
            cluster.apply_placement([
                {
                    "tenant_id": a.tenant_id,
                    "machine_index": a.machine_index,
                    "bank_offset": a.bank_offset,
                    "banks": a.banks,
                }
                for a in pplan.assignments
            ])
        return cluster.plan()
    finally:
        cluster.shutdown()
