"""Functional model of one CAM subarray.

A subarray stores up to ``rows × cols`` cells.  Patterns are written at a
row offset (selective-search placement stacks several pattern batches in
one subarray); a search computes per-row match scores over a row window
and either latches them or adds them into a local accumulator (the
digital accumulate peripheral the cam-density mapping relies on).

Searches accept either a single query (``C``) or a query batch (``B×C``).
A batched search streams the whole batch through the array: scores are
latched per query into a ``B×rows`` latch bank and read back with
:meth:`SubarrayState.read_batch` — the vectorized path behind
:class:`repro.runtime.session.QuerySession`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .cells import compute_scores, metric_prefers_larger


class SubarrayState:
    """Stored contents and search state of one subarray."""

    def __init__(self, rows: int, cols: int, subarray_id: int):
        self.rows = rows
        self.cols = cols
        self.id = subarray_id
        self._data = np.zeros((rows, cols), dtype=np.float64)
        self._valid = np.zeros(rows, dtype=bool)
        # Latched scores from the most recent (non-accumulating) search
        # or the accumulator contents, indexed by accumulator slot.  The
        # leading axis is the query-batch axis (size 1 for single-query
        # searches, kept 1-D compatible through read()).
        self._scores = np.zeros((1, rows), dtype=np.float64)
        self._scored_rows = 0
        self.writes = 0
        self.searches = 0

    # --------------------------------------------------------------- write
    def write(self, data: np.ndarray, row_offset: int = 0) -> int:
        """Program ``data`` (``r × c``) starting at ``row_offset``.

        Returns the number of rows written.  Raises when the write falls
        outside the physical geometry.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data[None, :]
        r, c = data.shape
        if row_offset < 0 or row_offset + r > self.rows:
            raise ValueError(
                f"write of {r} rows at offset {row_offset} exceeds "
                f"{self.rows}-row subarray"
            )
        if c > self.cols:
            raise ValueError(
                f"write of {c} columns exceeds {self.cols}-column subarray"
            )
        self._data[row_offset : row_offset + r, :c] = data
        self._valid[row_offset : row_offset + r] = True
        self.writes += 1
        return r

    def invalidate(self, row_offset: int = 0, row_count: int = 1) -> int:
        """Tombstone a row window: clear its valid bits and cell contents.

        A tombstoned row behaves exactly like a never-written one — the
        latch path reads it as the metric's no-match value and the
        accumulate path skips it.  Returns how many previously-valid rows
        the window held.  Raises when the window falls outside the
        physical geometry.
        """
        if row_offset < 0 or row_offset + row_count > self.rows:
            raise ValueError(
                f"invalidate of {row_count} rows at offset {row_offset} "
                f"exceeds {self.rows}-row subarray"
            )
        window = slice(row_offset, row_offset + row_count)
        cleared = int(self._valid[window].sum())
        self._valid[window] = False
        self._data[window] = 0.0
        self.writes += 1
        return cleared

    @property
    def valid_rows(self) -> int:
        """Number of rows holding written patterns."""
        return int(self._valid.sum())

    def valid_mask(self, row_begin: int = 0, row_count: int = -1) -> np.ndarray:
        """Copy of the valid bits over a row window.

        The ground truth a :class:`~repro.runtime.fused.FusedPlan`
        validates against before snapshotting stored tiles: a fused
        kernel may only serve rows the machine itself would search.
        """
        if row_count < 0:
            row_count = self.rows - row_begin
        return self._valid[row_begin : row_begin + row_count].copy()

    def stored(self, row_begin: int = 0, row_count: int = -1) -> np.ndarray:
        """The stored pattern window (valid rows only within the window)."""
        if row_count < 0:
            row_count = self.rows - row_begin
        window = self._data[row_begin : row_begin + row_count]
        mask = self._valid[row_begin : row_begin + row_count]
        return window[mask]

    # -------------------------------------------------------------- search
    def _ensure_batch(self, batch: int) -> None:
        """Size the latch bank for ``batch`` concurrent queries."""
        if self._scores.shape[0] != batch:
            self._scores = np.zeros((batch, self.rows), dtype=np.float64)
            self._scored_rows = 0

    def search(
        self,
        query: np.ndarray,
        metric: str,
        row_begin: int = 0,
        row_count: int = -1,
        accumulate: bool = False,
        noise=None,
    ) -> Tuple[np.ndarray, int]:
        """Search ``query`` against the row window.

        ``query`` is one query (``C``) or a batch (``B×C``); scores come
        back with a matching leading batch axis.  Returns
        ``(scores, active_rows)``.  With ``accumulate=True`` the scores
        are added into accumulator slots ``0..n-1`` (used when several
        column-slice batches are stacked in this subarray); otherwise the
        scores are latched at the physical position of their row — a hole
        in the valid mask leaves its latches at the metric's no-match
        value instead of shifting later rows up.  ``noise``, if given, is
        a callable ``shape -> ndarray`` producing additive per-row
        sensing noise (device variation modeling).
        """
        query = np.asarray(query, dtype=np.float64)
        batched = query.ndim > 1
        query = query.reshape(-1, query.shape[-1]) if batched \
            else query.reshape(-1)
        if query.shape[-1] > self.cols:
            raise ValueError(
                f"query of width {query.shape[-1]} exceeds "
                f"{self.cols}-column subarray"
            )
        if row_count < 0:
            row_count = self.rows - row_begin
        if row_begin < 0 or row_begin + row_count > self.rows:
            raise ValueError("search window exceeds subarray geometry")
        mask = self._valid[row_begin : row_begin + row_count]
        stored = self._data[
            row_begin : row_begin + row_count, : query.shape[-1]
        ]
        stored = stored[mask]
        scores = compute_scores(metric, stored, query)
        if noise is not None and scores.size:
            scores = scores + noise(scores.shape)
        n = scores.shape[-1]
        n_queries = scores.shape[0] if batched else 1
        scores_2d = scores if batched else scores[None, :]
        self._ensure_batch(n_queries)
        if accumulate:
            self._scores[:, :n] += scores_2d
            self._scored_rows = max(self._scored_rows, n)
        else:
            # Latch each score at its row's physical position; unwritten
            # rows inside the window must not report a (spurious) best
            # score, so their latches read as the metric's no-match value.
            positions = row_begin + np.flatnonzero(mask)
            window = slice(row_begin, row_begin + row_count)
            no_match = -np.inf if metric_prefers_larger(metric) else np.inf
            self._scores[:, window] = no_match
            self._scores[:, positions] = scores_2d
            self._scored_rows = max(self._scored_rows, row_begin + row_count)
        self.searches += n_queries
        return scores, n

    def read(self, rows: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Read latched scores of the last single query:
        ``(values, local_row_indices)``."""
        values, indices = self.read_batch(rows)
        return values[0], indices

    def read_batch(
        self, rows: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Read the latch bank: ``(B×rows values, local_row_indices)``."""
        n = self._scored_rows if rows is None else rows
        values = self._scores[:, :n].copy()
        indices = np.arange(n, dtype=np.int64)
        return values, indices

    def clear_scores(self) -> None:
        """Reset the accumulator/latches (start of a new query)."""
        if self._scores.shape[0] == 1:
            self._scores[:] = 0.0   # hot path: no reallocation per query
        else:
            self._scores = np.zeros((1, self.rows), dtype=np.float64)
        self._scored_rows = 0
