"""Event trace: a per-operation record of what the machine executed.

Useful for debugging mappings and for the ablation benches — the trace
exposes exactly which subarrays were touched, when, and at what cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One device operation."""

    op: str               # write / search / read / merge / select_topk
    target: str           # e.g. "subarray:17" or "host"
    start_ns: float
    duration_ns: float
    energy_pj: float
    detail: str = ""

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


class Trace:
    """An append-only list of trace events with simple queries."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(
        self,
        op: str,
        target: str,
        start_ns: float,
        duration_ns: float,
        energy_pj: float,
        detail: str = "",
    ) -> None:
        if self.enabled:
            self.events.append(
                TraceEvent(op, target, start_ns, duration_ns, energy_pj, detail)
            )

    def by_op(self, op: str) -> List[TraceEvent]:
        """All events of one operation kind."""
        return [e for e in self.events if e.op == op]

    def total_energy(self, op: Optional[str] = None) -> float:
        """Total traced energy, optionally restricted to one op kind."""
        return sum(e.energy_pj for e in self.events if op is None or e.op == op)

    def makespan(self) -> float:
        """Latest event end time (ns)."""
        return max((e.end_ns for e in self.events), default=0.0)

    def __len__(self) -> int:
        return len(self.events)
