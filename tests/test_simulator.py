"""Simulator tests: cells, subarray, peripherals, machine, metrics, trace."""

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.simulator import (
    AllocationError,
    CamMachine,
    EnergyBreakdown,
    ExecutionReport,
    SubarrayState,
    best_match,
    compute_scores,
    dot_similarity,
    euclidean_sq_distance,
    exact_match,
    hamming_distance,
    metric_prefers_larger,
    priority_encode,
    quantize,
    threshold_match,
)
from repro.simulator.cells import DONT_CARE


class TestCells:
    def test_hamming_basic(self):
        stored = np.array([[1, 0, 1], [0, 0, 0]], dtype=float)
        q = np.array([1, 0, 0], dtype=float)
        assert hamming_distance(stored, q).tolist() == [1.0, 1.0]

    def test_hamming_dont_care(self):
        stored = np.array([[1, DONT_CARE, 1]], dtype=float)
        q = np.array([1, 0, 0], dtype=float)
        assert hamming_distance(stored, q).tolist() == [1.0]

    def test_hamming_bipolar_not_dont_care(self):
        """Regression: bipolar -1 must NOT be treated as a wildcard."""
        stored = np.array([[-1.0, -1.0, 1.0]])
        q = np.array([1.0, -1.0, 1.0])
        assert hamming_distance(stored, q).tolist() == [1.0]

    def test_euclidean(self):
        stored = np.array([[0.0, 0.0], [3.0, 4.0]])
        q = np.array([0.0, 0.0])
        assert euclidean_sq_distance(stored, q).tolist() == [0.0, 25.0]

    def test_euclidean_dont_care_free(self):
        stored = np.array([[DONT_CARE, 3.0]])
        q = np.array([100.0, 3.0])
        assert euclidean_sq_distance(stored, q).tolist() == [0.0]

    def test_dot(self):
        stored = np.array([[1.0, 2.0], [0.0, -1.0]])
        q = np.array([2.0, 1.0])
        assert dot_similarity(stored, q).tolist() == [4.0, -1.0]

    def test_compute_scores_dispatch(self):
        stored = np.array([[1.0, 0.0]])
        q = np.array([1.0, 1.0])
        assert compute_scores("hamming", stored, q)[0] == 1.0
        with pytest.raises(ValueError):
            compute_scores("cosine", stored, q)

    def test_metric_direction(self):
        assert metric_prefers_larger("dot")
        assert not metric_prefers_larger("hamming")
        assert not metric_prefers_larger("euclidean")

    def test_quantize_levels(self):
        x = np.linspace(-1, 1, 11)
        q1 = quantize(x, 1)
        assert set(q1.tolist()) <= {0, 1}
        q2 = quantize(x, 2)
        assert set(q2.tolist()) <= {0, 1, 2, 3}
        assert q2.min() == 0 and q2.max() == 3

    def test_quantize_constant_input(self):
        assert quantize(np.ones(5), 2).tolist() == [0] * 5

    def test_quantize_integer_passthrough(self):
        x = np.array([0, 1, 5], dtype=np.int64)
        assert quantize(x, 2).tolist() == [0, 1, 3]

    def test_quantize_monotone(self):
        x = np.sort(np.random.default_rng(0).standard_normal(50))
        q = quantize(x, 2)
        assert all(q[i] <= q[i + 1] for i in range(len(q) - 1))


class TestPeripherals:
    def test_exact_match_distance(self):
        scores = np.array([0.0, 2.0, 0.0])
        assert exact_match(scores, prefers_larger=False).tolist() == \
            [True, False, True]

    def test_exact_match_similarity(self):
        """Only rows reaching the metric's perfect score match — the
        best-scoring row alone is not an exact match."""
        scores = np.array([5.0, 2.0, 5.0])
        assert exact_match(
            scores, prefers_larger=True, perfect_score=8.0
        ).tolist() == [False, False, False]
        assert exact_match(
            scores, prefers_larger=True, perfect_score=5.0
        ).tolist() == [True, False, True]

    def test_exact_match_similarity_needs_perfect_score(self):
        with pytest.raises(ValueError, match="perfect"):
            exact_match(np.array([1.0]), prefers_larger=True)

    def test_exact_match_empty(self):
        assert exact_match(np.array([]), True).size == 0

    def test_threshold_match(self):
        scores = np.array([1.0, 3.0, 5.0])
        assert threshold_match(scores, 3.0, False).tolist() == \
            [True, True, False]
        assert threshold_match(scores, 3.0, True).tolist() == \
            [False, True, True]

    def test_best_match_order(self):
        scores = np.array([5.0, 1.0, 3.0])
        idx, vals = best_match(scores, 2, prefers_larger=False)
        assert idx.tolist() == [1, 2]
        assert vals.tolist() == [1.0, 3.0]

    def test_best_match_stable_ties(self):
        scores = np.array([2.0, 1.0, 1.0])
        idx, _ = best_match(scores, 2, prefers_larger=False)
        assert idx.tolist() == [1, 2]

    def test_best_match_k_clamped(self):
        idx, _ = best_match(np.array([1.0]), 5, True)
        assert idx.tolist() == [0]

    def test_wta_window_clamps_values(self):
        scores = np.array([0.0, 10.0, 2.0])
        _idx, vals = best_match(scores, 3, False, wta_window=3)
        assert vals.max() <= 3.0

    def test_priority_encode(self):
        assert priority_encode(np.array([False, True, True])) == 1
        assert priority_encode(np.array([False, False])) == -1


class TestSubarray:
    def test_write_and_read_window(self):
        sub = SubarrayState(32, 16, 0)
        data = np.arange(80, dtype=float).reshape(5, 16)
        assert sub.write(data) == 5
        assert sub.valid_rows == 5
        np.testing.assert_array_equal(sub.stored(), data)

    def test_write_offset(self):
        sub = SubarrayState(32, 16, 0)
        sub.write(np.ones((5, 16)), row_offset=10)
        assert sub.valid_rows == 5

    def test_write_bounds(self):
        sub = SubarrayState(8, 16, 0)
        with pytest.raises(ValueError):
            sub.write(np.ones((5, 16)), row_offset=6)
        with pytest.raises(ValueError):
            sub.write(np.ones((2, 32)))

    def test_search_scores(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.array([[1, 1, 0, 0], [1, 1, 1, 1]], dtype=float))
        scores, n = sub.search(np.array([1, 1, 1, 1.0]), "hamming")
        assert n == 2
        assert scores.tolist() == [2.0, 0.0]

    def test_search_1d_query_clip(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.ones((2, 4)))
        with pytest.raises(ValueError):
            sub.search(np.ones(5), "hamming")

    def test_search_window(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.zeros((2, 4)), row_offset=0)
        sub.write(np.ones((2, 4)), row_offset=2)
        scores, n = sub.search(
            np.ones(4), "hamming", row_begin=2, row_count=2
        )
        assert scores.tolist() == [0.0, 0.0]

    def test_accumulate(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.zeros((2, 4)), row_offset=0)
        sub.write(np.ones((2, 4)), row_offset=2)
        sub.search(np.ones(4), "hamming", 0, 2, accumulate=True)
        sub.search(np.ones(4), "hamming", 2, 2, accumulate=True)
        values, idx = sub.read(2)
        assert values.tolist() == [4.0, 4.0]  # 4 mismatches + 0
        assert idx.tolist() == [0, 1]

    def test_clear_scores(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.zeros((2, 4)))
        sub.search(np.ones(4), "hamming", accumulate=True)
        sub.clear_scores()
        assert sub.read(2)[0].tolist() == [0.0, 0.0]

    def test_counters(self):
        sub = SubarrayState(8, 4, 0)
        sub.write(np.zeros((2, 4)))
        sub.search(np.ones(4), "hamming")
        assert sub.writes == 1 and sub.searches == 1


class TestMachine:
    def make_machine(self, **kw):
        return CamMachine(paper_spec(**kw))

    def test_alloc_hierarchy(self):
        m = self.make_machine()
        b = m.alloc_bank()
        mt = m.alloc_mat(b)
        ar = m.alloc_array(mt)
        s = m.alloc_subarray(ar)
        assert (m.banks_used, m.mats_used, m.arrays_used, m.subarrays_used) \
            == (1, 1, 1, 1)
        assert m.subarray(s).rows == 32

    def test_capacity_limits(self):
        spec = paper_spec()
        m = CamMachine(spec)
        b = m.alloc_bank()
        for _ in range(spec.mats_per_bank):
            m.alloc_mat(b)
        with pytest.raises(AllocationError):
            m.alloc_mat(b)

    def test_bank_cap(self):
        from dataclasses import replace

        m = CamMachine(replace(paper_spec(), banks=1))
        m.alloc_bank()
        with pytest.raises(AllocationError):
            m.alloc_bank()

    def test_invalid_parent(self):
        m = self.make_machine()
        with pytest.raises(AllocationError):
            m.alloc_mat(3)

    def test_write_energy_accounted(self):
        m = self.make_machine()
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        d = m.write_value(s, np.ones((10, 32)))
        assert d > 0
        assert m.energy.write > 0

    def test_search_functional_and_counted(self):
        m = self.make_machine()
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        m.write_value(s, np.zeros((4, 32)))
        m.search(s, np.ones(32), metric="hamming")
        vals, idx, _d = m.read(s, 4)
        assert vals.tolist() == [32.0] * 4
        assert m.total_searches == 1

    def test_select_topk(self):
        m = self.make_machine()
        vals, idx, _d = m.select_topk(np.array([3.0, 1.0, 2.0]), 2, False)
        assert idx.tolist() == [1, 2]

    def test_begin_query_clears(self):
        m = self.make_machine()
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        m.write_value(s, np.zeros((4, 32)))
        m.search(s, np.ones(32), accumulate=True)
        m.begin_query()
        vals, _i = m.subarray(s).read(4)
        assert vals.tolist() == [0.0] * 4

    def test_report_counts(self):
        m = self.make_machine()
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        m.write_value(s, np.zeros((4, 32)))
        m.search(s, np.ones(32))
        rep = m.finish(10.0, 5.0)
        assert rep.subarrays_used == 1
        assert rep.searches == 1
        assert rep.setup_latency_ns == 5.0
        assert rep.energy.standby > 0

    def test_power_target_gates_subarrays(self):
        spec = paper_spec(optimization_target="power")
        m = CamMachine(spec)
        arr = m.alloc_array(m.alloc_mat(m.alloc_bank()))
        for _ in range(4):
            m.alloc_subarray(arr)
        assert m.powered_subarrays() == m.arrays_used == 1
        assert m.standby_duty() == pytest.approx(0.25)

    def test_base_target_full_standby(self):
        m = self.make_machine()
        arr = m.alloc_array(m.alloc_mat(m.alloc_bank()))
        for _ in range(4):
            m.alloc_subarray(arr)
        assert m.powered_subarrays() == 4
        assert m.standby_duty() == 1.0

    def test_trace_recording(self):
        m = CamMachine(paper_spec(), trace=True)
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        m.write_value(s, np.ones((2, 32)))
        m.search(s, np.ones(32), at=5.0)
        assert len(m.trace) == 2
        searches = m.trace.by_op("search")
        assert searches[0].start_ns == 5.0
        assert m.trace.total_energy("search") == m.energy.search
        assert m.trace.makespan() >= 5.0


class TestMetrics:
    def test_power_is_energy_over_latency(self):
        rep = ExecutionReport(
            query_latency_ns=10.0,
            energy=EnergyBreakdown(search=100.0),
        )
        assert rep.power_mw == pytest.approx(10.0)

    def test_zero_latency_power(self):
        assert ExecutionReport().power_mw == 0.0

    def test_edp_units(self):
        rep = ExecutionReport(
            query_latency_ns=1e9,  # 1 s
            energy=EnergyBreakdown(search=1e3),  # 1 nJ
        )
        assert rep.edp == pytest.approx(1.0)

    def test_query_energy_excludes_write(self):
        e = EnergyBreakdown(search=10.0, write=100.0)
        assert e.query_total == 10.0
        assert e.total == 110.0

    def test_scaled(self):
        rep = ExecutionReport(
            query_latency_ns=5.0,
            energy=EnergyBreakdown(search=2.0, write=7.0),
            searches=3,
        )
        big = rep.scaled(100)
        assert big.query_latency_ns == 500.0
        assert big.energy.search == 200.0
        assert big.energy.write == 7.0  # programmed once
        assert big.searches == 300
        assert big.queries == 100

    def test_summary_string(self):
        assert "latency=" in ExecutionReport().summary()
