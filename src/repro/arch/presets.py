"""Ready-made architecture specifications used in the paper's evaluation.

Entry points for picking a machine without hand-writing an
:class:`~repro.arch.spec.ArchSpec`:

* :func:`paper_spec` — the evaluation hierarchy (4 mats/bank,
  4 arrays/mat, 8 subarrays/array, banks on demand) with a chosen
  subarray geometry, CAM type and optimization target;
* :func:`validation_spec` — the Fig. 7 accuracy-validation configs
  (32×C subarrays, 1-/2-bit cells);
* :func:`dse_spec` — square N×N subarrays for the Fig. 8 design-space
  exploration;
* :func:`iso_capacity_spec` — Fig. 9's iso-capacity sweep (fixed 2^16
  cells per array, varying subarray size).

All presets default to ``banks=None`` (allocate as many banks as the
workload needs).  Cap ``banks`` via ``dataclasses.replace`` (or the CLI's
``--banks``) to model a finite machine — stores that overflow the cap
raise :class:`~repro.transforms.partitioning.CapacityError` and can be
served by sharding across machines instead (``compile(num_shards=...)``).
"""

from __future__ import annotations

from .spec import ArchSpec

#: The paper's fixed evaluation hierarchy: 4 mats/bank, 4 arrays/mat,
#: 8 subarrays/array, banks allocated on demand (paper §IV-B, §IV-C1).
PAPER_HIERARCHY = dict(
    subarrays_per_array=8,
    arrays_per_mat=4,
    mats_per_bank=4,
    banks=None,
)


def paper_spec(
    rows: int = 32,
    cols: int = 32,
    cam_type: str = "tcam",
    bits_per_cell: int = 1,
    optimization_target: str = "latency",
) -> ArchSpec:
    """The evaluation configuration with an ``rows × cols`` subarray."""
    return ArchSpec(
        rows=rows,
        cols=cols,
        cam_type=cam_type,
        bits_per_cell=bits_per_cell,
        optimization_target=optimization_target,
        **PAPER_HIERARCHY,
    )


def validation_spec(cols: int, bits_per_cell: int = 1) -> ArchSpec:
    """Fig. 7 validation: 32×C arrays, C ∈ {16, 32, 64, 128}."""
    cam_type = "tcam" if bits_per_cell == 1 else "mcam"
    return paper_spec(rows=32, cols=cols, cam_type=cam_type,
                      bits_per_cell=bits_per_cell)


def dse_spec(n: int, optimization_target: str = "latency") -> ArchSpec:
    """Fig. 8 design-space exploration: square N×N subarrays."""
    return paper_spec(rows=n, cols=n, optimization_target=optimization_target)


def iso_capacity_spec(n: int, optimization_target: str = "latency") -> ArchSpec:
    """Fig. 9 iso-capacity: 2^16 cells per array, subarray size N×N.

    The subarray count per array adjusts so each array always holds
    65 536 cells (256×256 → 1 subarray/array ... 16×16 → 256).
    """
    cells = 1 << 16
    per_array = cells // (n * n)
    if per_array * n * n != cells:
        raise ValueError(f"subarray size {n} does not tile 2^16 cells")
    return ArchSpec(
        rows=n,
        cols=n,
        subarrays_per_array=per_array,
        arrays_per_mat=4,
        mats_per_bank=4,
        banks=None,
        optimization_target=optimization_target,
    )
