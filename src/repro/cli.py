"""``python -m repro.cli`` — the c4cam command-line driver.

Mirrors an ``mlir-opt``-style workflow on the built-in HDC workload:

    python -m repro.cli --arch arch.json --dump-ir cam --stats
    python -m repro.cli --rows 64 --cols 64 --target density
    python -m repro.cli --pipeline torch-to-cim,cim-fuse-ops --dump-ir cim
    python -m repro.cli --batch 64 --stats   # one session, 64 queries
    python -m repro.cli --banks 1 --patterns 512 --shards 4  # multi-machine
    python -m repro.cli --replicas 2 --serve --batch 16  # async serving
    python -m repro.cli --tenants 3 --banks 2  # multi-tenant placement
    python -m repro.cli --mutate --patterns 12  # live insert/delete/update

The driver traces the paper's Fig. 4a kernel on synthetic data, runs the
requested pipeline, optionally prints the IR, executes on the simulated
CAM and reports the metrics.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.arch import ArchSpec, paper_spec
from repro.compiler import C4CAMCompiler, CapacityError, build_pipeline
from repro.frontend import placeholder
from repro.ir.printer import print_module
from repro.passes.pass_manager import PassError
from repro.simulator.analysis import format_report


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="c4cam",
        description="Compile and simulate a similarity kernel on a CAM.",
    )
    p.add_argument("--arch", help="architecture JSON file")
    p.add_argument("--rows", type=int, default=32, help="subarray rows")
    p.add_argument("--cols", type=int, default=32, help="subarray columns")
    p.add_argument(
        "--cam-type", default="tcam", choices=("bcam", "tcam", "mcam", "acam")
    )
    p.add_argument("--bits", type=int, default=1, help="bits per cell")
    p.add_argument(
        "--target", default="latency",
        choices=("latency", "power", "density", "power+density"),
        help="optimization target",
    )
    p.add_argument("--patterns", type=int, default=10)
    p.add_argument("--dims", type=int, default=1024)
    p.add_argument("--queries", type=int, default=4)
    p.add_argument(
        "--batch", type=int, metavar="N",
        help="serve N queries through one batched query session "
        "(patterns programmed once; reports amortized throughput)",
    )
    p.add_argument(
        "--banks", type=int, metavar="B",
        help="cap the machine at B banks (default: allocate on demand); "
        "a stored set overflowing the cap auto-shards across machines",
    )
    p.add_argument(
        "--shards", type=int, metavar="N",
        help="shard the stored patterns across N machines "
        "(default: auto — shard only when the store overflows one "
        "machine; 1 forces single-machine and fails on overflow)",
    )
    p.add_argument(
        "--replicas", type=int, metavar="R",
        help="program R independent replicas of the (possibly sharded) "
        "store and route batches to the least-loaded one (throughput, "
        "not capacity)",
    )
    p.add_argument(
        "--tenants", type=int, metavar="K",
        help="colocate K independent kernels (varying store sizes) on "
        "one shared machine fleet via multi-tenant bank placement and "
        "run a per-tenant batch each; reports per-tenant and fleet "
        "metrics (honours --banks for the machine cap and --replicas)",
    )
    p.add_argument(
        "--cluster", type=int, metavar="K",
        help="demo the dynamic cluster control plane: admit K kernels "
        "at runtime, serve a mixed-priority workload (odd tenants "
        "submit at --priority, even at 0), evict the first tenant "
        "(defragmenting re-placement) and re-serve the survivors; "
        "honours --banks and --batch",
    )
    p.add_argument(
        "--autotune", type=int, metavar="K",
        help="demo the traffic-driven autotuner: compile K tenants, "
        "describe a Zipf-skewed traffic trace, search arch preset x "
        "placement policy for the lowest predicted SLO-weighted cost, "
        "emit the winning fleet as a reproducible plan and rebuild it "
        "via Cluster.from_plan (honours --banks as the machine cap)",
    )
    p.add_argument(
        "--priority", type=int, default=1, metavar="P",
        help="priority class the --cluster demo's urgent tenants "
        "submit at (higher dispatches first; default 1)",
    )
    p.add_argument(
        "--mutate", action="store_true",
        help="demo the mutable store: query, then delete the best "
        "match, insert fresh patterns and update one in place — "
        "re-querying on the live machine with per-row write energy "
        "instead of a re-program (honours --banks and --shards)",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="demo the async serving engine: submit the workload as "
        "individual queries through the micro-batching queue and report "
        "the aggregate deployment metrics (honours --batch as the "
        "request count and --replicas)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--dump-ir", choices=("torch", "cim", "cam"),
        help="print the IR after the given stage and exit",
    )
    p.add_argument(
        "--pipeline",
        help="comma-separated custom pass pipeline (overrides --dump-ir)",
    )
    p.add_argument(
        "--stats", action="store_true", help="print detailed metrics"
    )
    return p


def load_spec(args) -> ArchSpec:
    if args.arch:
        spec = ArchSpec.from_json(args.arch)
    else:
        spec = paper_spec(
            rows=args.rows,
            cols=args.cols,
            cam_type=args.cam_type,
            bits_per_cell=args.bits,
            optimization_target=args.target,
        )
    if args.banks is not None:
        from dataclasses import replace

        spec = replace(spec, banks=args.banks)
    return spec


def build_kernel(args):
    import repro.frontend.torch_api as torch

    rng = np.random.default_rng(args.seed)
    stored = rng.choice([-1.0, 1.0], (args.patterns, args.dims)).astype(
        np.float32
    )
    queries = rng.choice([-1.0, 1.0], (args.queries, args.dims)).astype(
        np.float32
    )

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
            return values, indices

    example = [placeholder((args.queries, args.dims))]
    return DotSimilarity(), example, queries


def run_tenants_demo(args, spec: ArchSpec) -> int:
    """``--tenants K``: pack K kernels onto one fleet and query each.

    Tenant ``i`` stores ``patterns + i*patterns//2`` rows (so demands
    differ and the first-fit-decreasing packing is visible), all at
    ``--dims`` features.  Serves ``--batch`` (default ``--queries``)
    queries per tenant — through the tenant-aware async engine with
    ``--serve``, synchronously otherwise — then prints each tenant's
    own accounting and the fleet report.
    """
    from repro.apps import TenantPool

    rng = np.random.default_rng(args.seed)
    pool = TenantPool(spec, num_replicas=args.replicas or 1)
    for i in range(args.tenants):
        patterns = args.patterns + i * (args.patterns // 2)
        stored = rng.choice([-1.0, 1.0], (patterns, args.dims)).astype(
            np.float32
        )
        pool.add(f"tenant{i}", stored, k=1)
    try:
        pool.open()
    except (CapacityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"placed {pool.placement.describe()}")
    n_queries = args.batch or args.queries
    workloads = {
        tid: rng.choice([-1.0, 1.0], (n_queries, args.dims)).astype(
            np.float32
        )
        for tid in pool.tenant_ids
    }
    if args.serve:
        with pool.serve(max_batch=max(1, n_queries // 2)) as engine:
            futures = {
                tid: [engine.submit(q, tenant=tid) for q in queries]
                for tid, queries in workloads.items()
            }
            results = {
                tid: np.vstack([f.result()[1] for f in fs])
                for tid, fs in futures.items()
            }
        stats = engine.stats()
        print(
            f"served {stats['requests_submitted']} requests in "
            f"{stats['batches_dispatched']} micro-batches "
            f"(tenants never coalesce together)"
        )
    else:
        results = {
            tid: pool.run(tid, queries)[1]
            for tid, queries in workloads.items()
        }
    for tid in pool.tenant_ids:
        report = pool.report(tid)
        print(
            f"{tid}: indices {results[tid].ravel().tolist()} | "
            f"{report.queries} queries on {report.banks_used} bank(s), "
            f"{report.energy.total:.2f} pJ, "
            f"{report.throughput_qps:.3e} queries/s"
        )
    fleet = pool.report()
    # Total energy (writes included) so the printed per-tenant figures
    # visibly sum to the fleet figure; summary() below shows the
    # query-only split.
    print(
        f"fleet: {fleet.queries} queries across {fleet.banks_used} "
        f"bank(s) on {pool.open().num_machines} machine(s) x "
        f"{args.replicas or 1} replica(s), {fleet.energy.total:.2f} pJ "
        f"total"
    )
    if args.stats:
        print(format_report(fleet, pool.open().session().machine))
    else:
        print(fleet.summary())
    return 0


def run_cluster_demo(args, spec: ArchSpec) -> int:
    """``--cluster K``: a living fleet — admit, prioritise, evict.

    Compiles K dot-similarity tenants of growing store size, admits
    them into one :class:`~repro.runtime.cluster.Cluster` at runtime,
    serves every tenant a ``--batch`` (default ``--queries``) workload
    through the priority/deadline dispatcher (odd tenants submit at
    ``--priority``, even at 0), then evicts the first tenant — its
    banks are reclaimed by a defragmenting re-placement — and re-serves
    a survivor to show the results did not move.
    """
    rng = np.random.default_rng(args.seed)
    compiler = C4CAMCompiler(spec)
    models, ids = [], []
    for i in range(args.cluster):
        patterns = args.patterns + i * (args.patterns // 2)
        stored = rng.choice([-1.0, 1.0], (patterns, args.dims)).astype(
            np.float32
        )
        models.append(stored)
        ids.append(f"tenant{i}")
    import repro.frontend.torch_api as torch

    def dot_model(stored):
        class DotSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                return torch.ops.aten.topk(matmul, 1, largest=True)

        return DotSimilarity()

    try:
        cluster = compiler.compile_cluster(
            [dot_model(stored) for stored in models],
            [[placeholder((1, args.dims))] for _ in models],
            tenant_ids=ids,
        )
    except (CapacityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    with cluster:
        print(cluster.describe())
        n_queries = args.batch or args.queries
        workloads = {
            tid: rng.choice([-1.0, 1.0], (n_queries, args.dims)).astype(
                np.float32
            )
            for tid in ids
        }
        futures = {
            tid: [
                cluster.submit(
                    q, tenant=tid,
                    priority=args.priority if i % 2 else 0,
                    deadline=0.005 if i % 2 else None,
                )
                for q in workloads[tid]
            ]
            for i, tid in enumerate(ids)
        }
        results = {
            tid: np.vstack([f.result(timeout=60)[1] for f in fs])
            for tid, fs in futures.items()
        }
        for i, tid in enumerate(ids):
            report = cluster.tenant_report(tid)
            print(
                f"{tid} (priority {args.priority if i % 2 else 0}): "
                f"indices {results[tid].ravel().tolist()} | "
                f"{report.queries} queries, "
                f"{report.energy.total:.2f} pJ"
            )
        survivor = ids[-1] if len(ids) > 1 else ids[0]
        before = cluster.run_batch(workloads[survivor], tenant=survivor)
        cluster.evict(ids[0])
        print(f"evicted {ids[0]!r}; defragmented fleet:")
        print(cluster.describe())
        if survivor != ids[0]:
            after = cluster.run_batch(workloads[survivor], tenant=survivor)
            identical = all(
                np.array_equal(x, y) for x, y in zip(before, after)
            )
            print(
                f"{survivor} results after defragmentation: "
                f"{'bitwise identical' if identical else 'DIVERGED'}"
            )
        fleet = cluster.report()
        print(
            f"fleet lifetime: {fleet.queries} queries, "
            f"{fleet.energy.total:.2f} pJ, "
            f"{cluster.defrag_count} defrag(s)"
        )
        if args.stats:
            print(format_report(fleet))
        else:
            print(fleet.summary())
    return 0


def run_autotune_demo(args, spec: ArchSpec) -> int:
    """``--autotune K``: schedule the fleet for the traffic, not the fit.

    Compiles K dot-similarity tenants of growing store size, describes
    a Zipf-skewed traffic trace (the first tenants are hot), and runs
    the design-space autotuner over two arch presets (the requested
    spec and a double-rows variant) x both placement policies.  The
    winner's predicted cost ranking is printed, its plan is emitted and
    rebuilt through :meth:`Cluster.from_plan`, and one batch per tenant
    confirms the rebuilt fleet serves correctly.
    """
    from dataclasses import replace

    import repro.frontend.torch_api as torch

    from repro.runtime import Cluster
    from repro.runtime.autotune import TrafficTrace, autotune

    rng = np.random.default_rng(args.seed)

    def dot_model(stored):
        class DotSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                return torch.ops.aten.topk(matmul, 1, largest=True)

        return DotSimilarity()

    ids = [f"tenant{i}" for i in range(args.autotune)]
    models, inputs, workloads = {}, {}, {}
    for i, tid in enumerate(ids):
        patterns = args.patterns + i * (args.patterns // 2)
        stored = rng.choice([-1.0, 1.0], (patterns, args.dims)).astype(
            np.float32
        )
        models[tid] = dot_model(stored)
        inputs[tid] = [placeholder((1, args.dims))]
        workloads[tid] = rng.choice(
            [-1.0, 1.0], (args.queries, args.dims)
        ).astype(np.float32)
    trace = TrafficTrace.zipf(
        ids, total_qps=10_000.0, skew=1.1,
        batch_rows=max(1, args.queries),
    )
    print("traffic trace (Zipf 1.1):")
    for hint in trace.hints:
        print(f"  {hint.tenant_id}: {hint.rate_qps:.0f} qps x "
              f"{hint.batch_rows} row(s)")
    presets = {
        f"{spec.rows}x{spec.cols}": spec,
        f"{spec.rows * 2}x{spec.cols}": replace(spec, rows=spec.rows * 2),
    }
    try:
        result = autotune(
            models, inputs, trace, presets=presets,
            policies=("ffd", "cost"),
        )
    except (CapacityError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(result.describe())
    rebuilt = Cluster.from_plan(result.plan, result.kernels)
    with rebuilt:
        print("rebuilt from the emitted plan:")
        print(rebuilt.describe())
        for tid in ids:
            _values, indices = rebuilt.run_batch(workloads[tid], tenant=tid)
            print(f"  {tid}: indices {indices.ravel().tolist()}")
        if args.stats:
            print(format_report(rebuilt.report()))
        else:
            print(rebuilt.report().summary())
    return 0


def run_mutate_demo(args, kernel, queries) -> int:
    """``--mutate``: exercise insert/delete/update on the live store.

    Queries, tombstones the first query's best match, inserts two fresh
    patterns, rewrites one survivor in place, and re-queries — all on
    the machine programmed by the first call.  Prints the incremental
    rows written by the mutations next to the store size so the
    delta-vs-reprogram saving is visible.
    """
    rng = np.random.default_rng(args.seed + 2)
    _values, indices = kernel.run_batch(queries)
    print(f"before: indices {indices.ravel().tolist()} "
          f"({kernel.pattern_count} stored patterns)")
    session = kernel.session()
    written0 = getattr(session, "rows_written", None)
    victim = int(indices[0, 0])
    kernel.delete([victim])
    new_ids = kernel.insert(
        rng.choice([-1.0, 1.0], (2, args.dims)).astype(np.float32)
    )
    survivor = kernel.row_ids()[0]
    kernel.update(
        survivor, rng.choice([-1.0, 1.0], args.dims).astype(np.float32)
    )
    print(f"deleted pattern {victim}, inserted {new_ids}, "
          f"updated {survivor} in place")
    _values, indices = kernel.run_batch(queries)
    print(f"after:  indices {indices.ravel().tolist()} "
          f"({kernel.pattern_count} stored patterns)")
    if written0 is not None:
        delta = session.rows_written - written0
        print(
            f"mutations wrote {delta} subarray row(s) incrementally — "
            f"a re-program would rewrite the full store"
        )
    moved = kernel.compact()
    print(f"compaction reclaimed the tombstone ({moved} row(s) moved)")
    if args.stats:
        print(format_report(kernel.last_report, kernel.last_machine))
    else:
        print(kernel.last_report.summary())
    return 0


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be a positive query count, got {args.batch}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be a positive machine count, got {args.shards}")
    if args.replicas is not None and args.replicas < 1:
        parser.error(
            f"--replicas must be a positive replica count, got {args.replicas}"
        )
    if args.banks is not None and args.banks < 1:
        parser.error(f"--banks must be a positive bank count, got {args.banks}")
    if args.tenants is not None and args.tenants < 1:
        parser.error(
            f"--tenants must be a positive tenant count, got {args.tenants}"
        )
    if args.tenants is not None and args.shards is not None:
        parser.error("--tenants cannot be combined with --shards "
                     "(sharded tenants are not placeable)")
    if args.tenants is not None and (args.dump_ir or args.pipeline):
        parser.error("--tenants cannot be combined with --dump-ir or "
                     "--pipeline (the demo compiles several kernels)")
    if args.cluster is not None and args.cluster < 1:
        parser.error(
            f"--cluster must be a positive tenant count, got {args.cluster}"
        )
    if args.cluster is not None and (
        args.tenants is not None or args.shards is not None
        or args.dump_ir or args.pipeline
    ):
        parser.error("--cluster cannot be combined with --tenants, "
                     "--shards, --dump-ir or --pipeline (the demo "
                     "drives its own compilation)")
    if args.autotune is not None and args.autotune < 1:
        parser.error(
            f"--autotune must be a positive tenant count, got {args.autotune}"
        )
    if args.autotune is not None and (
        args.cluster is not None or args.tenants is not None
        or args.shards is not None or args.mutate or args.serve
        or args.dump_ir or args.pipeline
    ):
        parser.error("--autotune cannot be combined with --cluster, "
                     "--tenants, --shards, --mutate, --serve, --dump-ir "
                     "or --pipeline (the search drives its own "
                     "compilation)")
    if args.mutate and (
        args.serve or args.tenants is not None or args.cluster is not None
        or args.dump_ir or args.pipeline
    ):
        parser.error("--mutate cannot be combined with --serve, "
                     "--tenants, --cluster, --dump-ir or --pipeline "
                     "(it drives the synchronous kernel API)")
    spec = load_spec(args)
    compiler = C4CAMCompiler(spec)
    if args.autotune is not None:
        return run_autotune_demo(args, spec)
    if args.cluster is not None:
        return run_cluster_demo(args, spec)
    if args.tenants is not None:
        return run_tenants_demo(args, spec)
    model, example, queries = build_kernel(args)

    def run_pipeline(pm, module) -> bool:
        """Run ``pm``; prints a friendly message on capacity overflow."""
        try:
            pm.run(module)
        except PassError as exc:
            if isinstance(exc.__cause__, CapacityError):
                print(f"error: {exc.__cause__}", file=sys.stderr)
                return False
            raise
        return True

    if args.pipeline:
        from repro.passes.pipeline import build_pipeline_from_spec

        module, _params = compiler.import_torchscript(model, example)
        pm = build_pipeline_from_spec(args.pipeline, spec)
        if not run_pipeline(pm, module):
            return 1
        print(print_module(module))
        return 0

    if args.dump_ir:
        if args.dump_ir == "cam" and args.shards not in (None, 1):
            # Sharded kernels lower one module per machine; dump each.
            try:
                kernel = compiler.compile(
                    model, example, num_shards=args.shards
                )
            except (CapacityError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            for i, shard in enumerate(kernel.shard_set.shards):
                print(f"// shard {i} (rows {shard.row_offset}.."
                      f"{shard.row_offset + shard.rows - 1})")
                print(print_module(shard.module))
            return 0
        module, _params = compiler.import_torchscript(model, example)
        if args.dump_ir != "torch":
            pm = build_pipeline(spec, lower_to_cam=args.dump_ir == "cam")
            if not run_pipeline(pm, module):
                return 1
        print(print_module(module))
        return 0

    try:
        kernel = compiler.compile(
            model, example, num_shards=args.shards,
            num_replicas=args.replicas or 1,
        )
    except (CapacityError, ValueError) as exc:
        # CapacityError: the store overflows and sharding was refused;
        # ValueError: an unusable shard request (e.g. more shards than
        # stored patterns).
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if kernel.num_shards > 1:
        print(f"sharded across {kernel.num_shards} machines")
    if kernel.num_replicas > 1:
        print(f"replicated across {kernel.num_replicas} copies")
    if args.mutate:
        return run_mutate_demo(args, kernel, queries)
    if args.serve:
        rng = np.random.default_rng(args.seed + 1)
        n_requests = args.batch or args.queries
        requests = rng.choice([-1.0, 1.0], (n_requests, args.dims)).astype(
            np.float32
        )
        # Size micro-batches so the demo visibly spreads work across
        # the replicas (two dispatch rounds each) instead of coalescing
        # the whole workload into one batch.
        max_batch = max(1, min(32, -(-n_requests // (2 * kernel.num_replicas))))
        with kernel.serve(max_batch=max_batch) as engine:
            futures = [engine.submit(q) for q in requests]
            indices = np.vstack([f.result()[1] for f in futures])
        stats = engine.stats()
        report = engine.report()
        print(f"predicted indices: {indices.ravel().tolist()}")
        print(
            f"served {stats['requests_submitted']} requests in "
            f"{stats['batches_dispatched']} micro-batches across "
            f"{engine.num_replicas} replica(s): "
            f"{report.throughput_qps:.3e} queries/s aggregate"
        )
        if args.stats:
            print(format_report(report, engine.session.machine))
        else:
            print(report.summary())
        return 0
    if args.batch:
        rng = np.random.default_rng(args.seed + 1)
        batch = rng.choice([-1.0, 1.0], (args.batch, args.dims)).astype(
            np.float32
        )
        _values, indices = kernel.run_batch(batch)
        report = kernel.last_report
        print(f"predicted indices: {indices.ravel().tolist()}")
        print(
            f"batch of {report.queries} queries: "
            f"{report.throughput_qps:.3e} queries/s "
            f"(setup {report.setup_latency_ns:.1f} ns charged once)"
        )
    else:
        _values, indices = kernel(queries)
        report = kernel.last_report
        print(f"predicted indices: {indices.ravel().tolist()}")
    if args.stats:
        print(format_report(report, kernel.last_machine))
    else:
        print(report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
