"""``cim-to-cam`` conversion + ``cam-map`` (paper §III-D2, Fig. 6).

Lowers each annotated ``cim.execute { cim.similarity }`` block into:

1. **bufferization** — tensors become memrefs;
2. **a setup nest** — sequential loops over the hierarchy that allocate
   banks/mats/arrays/subarrays and program the stored-pattern tiles
   (``cam.alloc_*`` + ``cam.write_value``);
3. **a query nest** — for every query: ``cam.query_start``, a search nest
   whose per-level loop kind (``scf.parallel`` vs ``scf.for``) comes from
   the resolved :class:`~repro.transforms.optimizations.MappingConfig`
   (this is exactly how the power optimization serializes subarrays), a
   parallel read/merge nest accumulating partial scores, reduction-hop
   syncs, and the final ``cam.select_topk``.

The executor's timing model turns this loop structure into latency, so
optimization decisions manifest as performance — not as bolted-on
formula changes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.arch.spec import ArchSpec
from repro.dialects import arith as arith_d
from repro.dialects import cam as cam_d
from repro.dialects import cim as cim_d
from repro.dialects import memref as memref_d
from repro.dialects import scf as scf_d
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, f32, i64, index
from repro.ir.value import BlockArgument, Value
from repro.passes.pass_manager import FunctionPass

from .optimizations import MappingConfig, cam_search_metric, resolve_optimization
from .partitioning import PartitionPlan, check_plan_capacity, plan_of


class LoweringError(RuntimeError):
    """The kernel cannot be mapped onto the given architecture."""


class CimToCamPass(FunctionPass):
    """Lower annotated similarity executes to the cam dialect.

    Besides rewriting the IR, the pass records one
    :class:`~repro.runtime.session.QueryProgram` per lowered similarity
    block in :attr:`programs` — the query-phase structure a
    :class:`~repro.runtime.session.QuerySession` replays for batched
    execution without re-walking the IR per query.
    """

    NAME = "cim-to-cam"

    def __init__(self, spec: ArchSpec, config: Optional[MappingConfig] = None):
        self.spec = spec
        self.config = config or resolve_optimization(spec)
        self.programs: List = []

    def run_on_function(self, func: Operation) -> None:
        for op in list(func.body.operations):
            if isinstance(op, cim_d.ExecuteOp) and _is_similarity_block(op):
                self.programs.append(
                    _lower_execute(op, self.spec, self.config)
                )


def _is_similarity_block(execute: cim_d.ExecuteOp) -> bool:
    body = execute.body.operations
    return len(body) == 2 and isinstance(body[0], cim_d.SimilarityOp)


def _outer_value(execute: cim_d.ExecuteOp, inner: Value) -> Value:
    """Map a body block argument back to the outer operand."""
    if not isinstance(inner, BlockArgument):
        raise LoweringError("similarity operand is not a block argument")
    return execute.inputs[inner.index]


class _Emitter:
    """Shared state while emitting the nest for one execute op."""

    def __init__(self, builder: OpBuilder, spec: ArchSpec, plan: PartitionPlan):
        self.b = builder
        self.spec = spec
        self.plan = plan
        # All constants are inserted before this anchor op so that they
        # dominate every loop emitted afterwards, regardless of when a
        # constant is first requested.
        anchor = builder.create(arith_d.ConstantOp, 0, index)
        self._consts = {0: anchor.result}
        self._anchor = anchor

    def const(self, value: int) -> Value:
        """A cached ``arith.constant`` index value."""
        if value not in self._consts:
            op = OpBuilder.before(self._anchor).create(
                arith_d.ConstantOp, value, index
            )
            self._consts[value] = op.result
        return self._consts[value]

    def loop(self, builder: OpBuilder, count: int, parallel: bool):
        """Emit a 0..count loop; returns (loop_op, body_builder, iv)."""
        cls = scf_d.ParallelOp if parallel else scf_d.ForOp
        loop = builder.create(
            cls, self.const(0), self.const(count), self.const(1)
        )
        inner = OpBuilder.at_end(loop.body)
        return loop, inner, loop.induction_var

    def guarded(self, builder: OpBuilder, lhs: Value, bound: int):
        """Emit ``scf.if lhs < bound``; returns the then-block builder."""
        cond = builder.create(
            arith_d.CmpIOp, "slt", lhs, self.const(bound)
        )
        if_op = builder.create(scf_d.IfOp, cond.result)
        return OpBuilder.at_end(if_op.then_block)

    def muladd(self, builder: OpBuilder, a: Value, m: int, c: Value) -> Value:
        """``a * m + c`` on index values."""
        mul = builder.create(arith_d.MulIOp, a, self.const(m))
        return builder.create(arith_d.AddIOp, mul.result, c).result

    def mul(self, builder: OpBuilder, a: Value, m: int) -> Value:
        return builder.create(arith_d.MulIOp, a, self.const(m)).result


def _lower_execute(
    execute: cim_d.ExecuteOp, spec: ArchSpec, config: MappingConfig
):
    sim: cim_d.SimilarityOp = execute.body.operations[0]
    plan = plan_of(sim)
    _check_divisibility(plan)

    stored = _outer_value(execute, sim.stored)
    query = _outer_value(execute, sim.query)
    metric, flip = cam_search_metric(sim.metric, spec)
    largest = sim.largest if not flip else not sim.largest
    k = sim.k

    n_sub = plan.subarrays
    banks = spec.banks_needed(n_sub)
    check_plan_capacity(plan, spec, config.use_density)

    b = OpBuilder.before(execute)
    em = _Emitter(b, spec, plan)

    # ------------------------------------------------------- bufferization
    stored_buf = b.create(memref_d.ToMemrefOp, stored).result
    query_2d = query.type.rank == 2
    query_buf = b.create(memref_d.ToMemrefOp, query).result
    scores_buf = b.create(
        memref_d.AllocOp, MemRefType([plan.patterns], f32)
    ).result
    values_buf = b.create(
        memref_d.AllocOp, MemRefType([plan.queries, k], f32)
    ).result
    indices_buf = b.create(
        memref_d.AllocOp, MemRefType([plan.queries, k], i64)
    ).result

    # --------------------------------------------------------- setup nest
    _emit_setup_nest(em, b, stored_buf, banks, n_sub)

    # --------------------------------------------------------- query nest
    qloop, qb, q_iv = em.loop(b, plan.queries, parallel=False)
    qb.create(cam_d.QueryStartOp)
    qb.create(memref_d.FillOp, scores_buf, 0.0)
    _emit_search_nest(em, qb, query_buf, q_iv, query_2d, banks, n_sub,
                      metric, config)
    _emit_read_merge_nest(em, qb, scores_buf, banks, n_sub)
    for level in ("array", "mat", "bank"):
        qb.create(cam_d.SyncOp, level, rows=plan.patterns)
    vslice = qb.create(
        memref_d.SubviewOp, values_buf,
        offsets=[-1, 0], sizes=[1, k], offset_operands=[q_iv],
    ).result
    islice = qb.create(
        memref_d.SubviewOp, indices_buf,
        offsets=[-1, 0], sizes=[1, k], offset_operands=[q_iv],
    ).result
    qb.create(cam_d.SelectTopkOp, scores_buf, k, largest, vslice, islice)

    # ------------------------------------------------------------- results
    results = []
    for res, buf in zip(execute.results, (values_buf, indices_buf)):
        results.append(b.create(memref_d.ToTensorOp, buf, res.type).result)
    device = execute.device
    execute.replace_with(results)
    for user in list(device.users()):
        if isinstance(user, cim_d.ReleaseOp):
            user.erase()
    if not device.has_uses:
        acquire = getattr(device, "op", None)
        if acquire is not None:
            acquire.erase()

    from repro.runtime.session import QueryProgram

    return QueryProgram(
        plan=plan, metric=metric, k=k, largest=largest,
        results=tuple(results),
    )


def _check_divisibility(plan: PartitionPlan) -> None:
    if plan.features % plan.col_tile != 0:
        raise LoweringError(
            f"feature dimension {plan.features} is not a multiple of the "
            f"subarray width {plan.col_tile}; pad the stored patterns "
            f"(see repro.apps.datasets.pad_features)"
        )


def _hierarchy_loops(em: _Emitter, builder: OpBuilder, banks: int,
                     modes) -> tuple:
    """Emit bank→mat→array→subarray loops; returns (innermost builder, lin).

    ``modes`` maps level name to parallel/sequential.
    """
    spec = em.spec
    _, bb, bk = em.loop(builder, banks, modes["bank"] == "parallel")
    _, mb, mt = em.loop(bb, spec.mats_per_bank, modes["mat"] == "parallel")
    mat_lin = em.muladd(mb, bk, spec.mats_per_bank, mt)
    _, ab, ar = em.loop(mb, spec.arrays_per_mat, modes["array"] == "parallel")
    arr_lin = em.muladd(ab, mat_lin, spec.arrays_per_mat, ar)
    _, sb, su = em.loop(
        ab, spec.subarrays_per_array, modes["subarray"] == "parallel"
    )
    lin = em.muladd(sb, arr_lin, spec.subarrays_per_array, su)
    return sb, lin


def _emit_setup_nest(
    em: _Emitter, b: OpBuilder, stored_buf: Value, banks: int, n_sub: int
) -> None:
    """Sequential allocation + write nest (executed once, off the query
    clock)."""
    spec, plan = em.spec, em.plan
    _, bb, bk = em.loop(b, banks, parallel=False)
    bank_id = bb.create(
        cam_d.AllocBankOp, em.const(spec.rows), em.const(spec.cols)
    ).result
    _, mb, mt = em.loop(bb, spec.mats_per_bank, parallel=False)
    mat_lin = em.muladd(mb, bk, spec.mats_per_bank, mt)
    # Guard: allocate the mat only when its first subarray index is used.
    mat_guard = em.guarded(
        mb, em.mul(mb, mat_lin, spec.subarrays_per_mat), n_sub
    )
    mat_id = mat_guard.create(cam_d.AllocMatOp, bank_id).result
    _, ab, ar = em.loop(mat_guard, spec.arrays_per_mat, parallel=False)
    arr_lin = em.muladd(ab, mat_lin, spec.arrays_per_mat, ar)
    arr_guard = em.guarded(
        ab, em.mul(ab, arr_lin, spec.subarrays_per_array), n_sub
    )
    array_id = arr_guard.create(cam_d.AllocArrayOp, mat_id).result
    _, sb, su = em.loop(arr_guard, spec.subarrays_per_array, parallel=False)
    lin = em.muladd(sb, arr_lin, spec.subarrays_per_array, su)
    sub_guard = em.guarded(sb, lin, n_sub)
    sub_id = sub_guard.create(cam_d.AllocSubarrayOp, array_id).result

    for batch in range(plan.batches):
        _emit_tile_write(em, sub_guard, stored_buf, sub_id, lin, batch)


def _emit_tile_write(
    em: _Emitter,
    builder: OpBuilder,
    stored_buf: Value,
    sub_id: Value,
    lin: Value,
    batch: int,
) -> None:
    """Write the (lin, batch) tile of the stored patterns, if it exists."""
    plan = em.plan
    if plan.batches > 1:
        # Column tile cp = lin * batches + batch; row part is 0.
        cp = em.muladd(builder, lin, plan.batches, em.const(batch))
        g = em.guarded(builder, cp, plan.col_tiles)
        row_off = em.const(0)
    else:
        g = em.guarded(builder, lin, plan.total_tiles)
        cp = g.create(
            arith_d.RemSIOp, lin, em.const(plan.col_tiles)
        ).result
        row_off_tiles = g.create(
            arith_d.DivSIOp, lin, em.const(plan.col_tiles)
        ).result
        row_off = em.mul(g, row_off_tiles, plan.row_tile)
    col_off = em.mul(g, cp, plan.col_tile)
    rows = min(plan.row_tile, plan.patterns)
    slice_ = g.create(
        memref_d.SubviewOp, stored_buf,
        offsets=[-1, -1], sizes=[rows, plan.col_tile],
        offset_operands=[row_off, col_off],
    ).result
    g.create(
        cam_d.WriteValueOp, sub_id, slice_,
        row_offset=batch * plan.patterns if plan.batches > 1 else 0,
    )


def _emit_search_nest(
    em: _Emitter,
    qb: OpBuilder,
    query_buf: Value,
    q_iv: Value,
    query_2d: bool,
    banks: int,
    n_sub: int,
    metric: str,
    config: MappingConfig,
) -> None:
    plan = em.plan
    sb, lin = _hierarchy_loops(em, qb, banks, config.modes)
    g = em.guarded(sb, lin, n_sub)
    sub_id = g.create(cam_d.SubarrayRefOp, lin).result
    for batch in range(plan.batches):
        if plan.batches > 1:
            cp = em.muladd(g, lin, plan.batches, em.const(batch))
            bg = em.guarded(g, cp, plan.col_tiles)
        else:
            bg = g
            cp = bg.create(
                arith_d.RemSIOp, lin, em.const(plan.col_tiles)
            ).result
        col_off = em.mul(bg, cp, plan.col_tile)
        if query_2d:
            qslice = bg.create(
                memref_d.SubviewOp, query_buf,
                offsets=[-1, -1], sizes=[1, plan.col_tile],
                offset_operands=[q_iv, col_off],
            ).result
        else:
            qslice = bg.create(
                memref_d.SubviewOp, query_buf,
                offsets=[-1], sizes=[plan.col_tile],
                offset_operands=[col_off],
            ).result
        bg.create(
            cam_d.SearchOp, sub_id, qslice,
            search_type="best", metric=metric,
            row_begin=batch * plan.patterns if plan.batches > 1 else 0,
            row_count=plan.row_tile if plan.batches == 1 else plan.patterns,
            accumulate=plan.batches > 1,
        )


def _emit_read_merge_nest(
    em: _Emitter, qb: OpBuilder, scores_buf: Value, banks: int, n_sub: int
) -> None:
    """Read per-subarray partials and merge them into the score buffer.

    Readout shares the hierarchy's result buses and is pipelined with the
    reduction network, so this nest is always parallel.
    """
    plan = em.plan
    modes = {lv: "parallel" for lv in ("bank", "mat", "array", "subarray")}
    sb, lin = _hierarchy_loops(em, qb, banks, modes)
    g = em.guarded(sb, lin, n_sub)
    sub_id = g.create(cam_d.SubarrayRefOp, lin).result
    rows = plan.row_tile if plan.batches == 1 else plan.patterns
    read = g.create(cam_d.ReadOp, sub_id, rows, f32)
    if plan.batches > 1 or plan.row_tiles == 1:
        row_off = em.const(0)
    else:
        rp = g.create(arith_d.DivSIOp, lin, em.const(plan.col_tiles)).result
        row_off = em.mul(g, rp, plan.row_tile)
    g.create(
        cam_d.MergePartialOp, scores_buf, read.results[0],
        direction="horizontal", level="subarray",
        row_offset_value=row_off,
    )
