"""Ablation benches for the modeling decisions DESIGN.md calls out.

Each ablation zeroes one component of the technology model and shows which
paper-observed effect disappears — evidence that the reproduced shapes
come from the modeled mechanism, not from coincidental constants:

* selective-search reload cost → the cam-density latency blow-up at large
  subarrays (Fig. 8b);
* standby/peripheral power → the cam-density energy crossover (Fig. 8a);
* standby clock-gating in power mode → cam-power's "energy stays the
  same" (paper §IV-C1);
* reduction-hop latency → part of the fixed per-query cost that damps the
  cam-power slowdown at small subarrays.
"""

from dataclasses import replace

import pytest

from repro.arch import dse_spec
from repro.arch.technology import FEFET_45NM
from repro.compiler import C4CAMCompiler

from harness import HdcWorkload, print_series


def run_with(workload, spec, tech):
    kernel_model, example = workload.model.kernel(n_queries=1)
    kernel = C4CAMCompiler(spec, tech).compile(kernel_model, example)
    kernel(workload.queries)
    return kernel.last_report


@pytest.fixture(scope="module")
def workload():
    return HdcWorkload(bits=1)


def test_ablate_selective_reload(workload):
    """Without per-batch reload costs, density's latency penalty shrinks."""
    full = FEFET_45NM
    ablated = replace(
        FEFET_45NM, t_selective_per_row=0.0, t_bcast_base=0.0,
        t_bcast_per_col=0.0,
    )
    spec_b = dse_spec(256, "latency")
    spec_d = dse_spec(256, "density")
    ratio_full = (
        run_with(workload, spec_d, full).query_latency_ns
        / run_with(workload, spec_b, full).query_latency_ns
    )
    ratio_ablated = (
        run_with(workload, spec_d, ablated).query_latency_ns
        / run_with(workload, spec_b, ablated).query_latency_ns
    )
    print_series(
        "Ablation: selective-search reload cost (density/base latency, 256x256)",
        ["full model", "reload=0"],
        [("ratio", [ratio_full, ratio_ablated])],
    )
    assert ratio_ablated < ratio_full
    assert ratio_full > 10  # the Fig. 8b blow-up needs the reload term


def test_ablate_standby_power(workload):
    """Without standby power, the density energy crossover disappears."""
    no_standby = replace(
        FEFET_45NM, p_subarray=0.0, p_array=0.0, p_mat=0.0, p_bank=0.0
    )
    rows = []
    for label, tech in (("full", FEFET_45NM), ("standby=0", no_standby)):
        ratios = []
        for n in (64, 128, 256):
            base = run_with(workload, dse_spec(n, "latency"), tech)
            dens = run_with(workload, dse_spec(n, "density"), tech)
            ratios.append(dens.energy.query_total / base.energy.query_total)
        rows.append((label, ratios))
    print_series(
        "Ablation: standby power (density/base energy)",
        ["64x64", "128x128", "256x256"], rows,
    )
    full_ratios, ablated_ratios = rows[0][1], rows[1][1]
    assert full_ratios[2] > 1.5          # crossover present (Fig. 8a)
    assert ablated_ratios[2] < 1.2       # gone without standby


def test_ablate_power_mode_gating(workload):
    """Without clock-gating, cam-power energy would exceed base — the
    gating assumption is what reproduces 'energy remains the same'."""
    # Gating is a machine behaviour keyed off the optimization target;
    # approximate "no gating" by charging full standby on the longer
    # power-mode latency.
    base = run_with(workload, dse_spec(256, "latency"), FEFET_45NM)
    power = run_with(workload, dse_spec(256, "power"), FEFET_45NM)
    # Reconstruct ungated standby analytically: the machine applied a duty
    # factor of 1/occupancy (= 1/8 here); undo it.
    gated_standby = power.energy.standby
    ungated_total = (
        power.energy.query_total - gated_standby + gated_standby * 8
    )
    print_series(
        "Ablation: power-mode clock gating (energy vs base, 256x256)",
        ["base", "power gated", "power ungated"],
        [("energy pJ", [base.energy.query_total,
                        power.energy.query_total, ungated_total])],
    )
    assert abs(power.energy.query_total - base.energy.query_total) \
        / base.energy.query_total < 0.25
    assert ungated_total > 1.3 * base.energy.query_total


def test_ablate_merge_hop_latency(workload):
    """Zeroing reduction hops shrinks the fixed per-query cost, which
    *raises* the cam-power relative slowdown (less latency to hide in)."""
    no_merge = replace(FEFET_45NM, t_merge_hop=0.0)
    def slowdown(tech):
        base = run_with(workload, dse_spec(32, "latency"), tech)
        power = run_with(workload, dse_spec(32, "power"), tech)
        return power.query_latency_ns / base.query_latency_ns

    full, ablated = slowdown(FEFET_45NM), slowdown(no_merge)
    print_series(
        "Ablation: merge-hop latency (power/base slowdown, 32x32)",
        ["full model", "merge=0"],
        [("slowdown", [full, ablated])],
    )
    assert ablated > full


def test_bench_ablation_point(benchmark, workload):
    ablated = replace(FEFET_45NM, t_selective_per_row=0.0)
    benchmark.pedantic(
        lambda: run_with(workload, dse_spec(64, "density"), ablated),
        rounds=3, iterations=1,
    )
