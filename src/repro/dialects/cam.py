"""``cam`` dialect: the CAM device abstraction (paper §III-D2).

The ``cim-to-cam`` conversion replaces acquire/execute/release sequences
with hierarchy allocations and device calls:

* allocation: ``cam.alloc_bank`` → ``cam.alloc_mat`` → ``cam.alloc_array``
  → ``cam.alloc_subarray``;
* execution: ``cam.write_value`` (program rows), ``cam.search`` (search
  with a type and metric), ``cam.read`` (fetch values/indices);
* reduction: ``cam.merge_partial`` accumulates partial row scores across
  subarrays/arrays/mats/banks, and ``cam.select_topk`` performs the final
  (host-side) selection over merged scores.

Search types (§II-B): ``exact``, ``best``, ``threshold`` (range).
Metrics: ``hamming`` (B/TCAM bit-wise), ``euclidean`` (M/ACAM analog
distance), ``dot`` (multi-bit dot-product similarity à la iMARS).
"""

from __future__ import annotations


from repro.ir.attributes import BoolAttr, FloatAttr, IntegerAttr, StringAttr
from repro.ir.operation import Operation, register_op
from repro.ir.types import CamIdType, MemRefType, Type, i64
from repro.ir.value import Value

SEARCH_TYPES = ("exact", "best", "threshold")
SEARCH_METRICS = ("hamming", "euclidean", "dot")
MERGE_LEVELS = ("subarray", "array", "mat", "bank", "system")


@register_op
class AllocBankOp(Operation):
    """Allocate a CAM bank sized for ``rows × cols`` subarrays."""

    OP_NAME = "cam.alloc_bank"
    HAS_SIDE_EFFECTS = True

    def __init__(self, rows: Value, cols: Value):
        super().__init__(
            operands=[rows, cols], result_types=[CamIdType("bank")]
        )


@register_op
class AllocMatOp(Operation):
    """Allocate a mat within a bank."""

    OP_NAME = "cam.alloc_mat"
    HAS_SIDE_EFFECTS = True

    def __init__(self, bank: Value):
        super().__init__(operands=[bank], result_types=[CamIdType("mat")])

    def verify(self) -> None:
        if self.operands[0].type != CamIdType("bank"):
            raise ValueError("cam.alloc_mat expects a bank id")


@register_op
class AllocArrayOp(Operation):
    """Allocate a CAM array within a mat."""

    OP_NAME = "cam.alloc_array"
    HAS_SIDE_EFFECTS = True

    def __init__(self, mat: Value):
        super().__init__(operands=[mat], result_types=[CamIdType("array")])

    def verify(self) -> None:
        if self.operands[0].type != CamIdType("mat"):
            raise ValueError("cam.alloc_array expects a mat id")


@register_op
class AllocSubarrayOp(Operation):
    """Allocate a subarray (the smallest independently-searchable block)."""

    OP_NAME = "cam.alloc_subarray"
    HAS_SIDE_EFFECTS = True

    def __init__(self, array: Value):
        super().__init__(operands=[array], result_types=[CamIdType("subarray")])

    def verify(self) -> None:
        if self.operands[0].type != CamIdType("array"):
            raise ValueError("cam.alloc_subarray expects an array id")


@register_op
class SubarrayRefOp(Operation):
    """Address the ``index``-th allocated subarray of the machine.

    Allocation order is deterministic (the setup nest enumerates the
    hierarchy linearly), so a linear index identifies a subarray across
    the separate write and search loop nests.
    """

    OP_NAME = "cam.subarray_ref"

    def __init__(self, index: Value):
        super().__init__(operands=[index], result_types=[CamIdType("subarray")])


@register_op
class QueryStartOp(Operation):
    """Start of one query: clears accumulators, charges front-end setup."""

    OP_NAME = "cam.query_start"
    HAS_SIDE_EFFECTS = True

    def __init__(self):
        super().__init__()


@register_op
class SyncOp(Operation):
    """A reduction-network hop at one hierarchy level.

    Charged once per query per level transition; models the interconnect
    latency of combining per-subarray partials up the hierarchy.
    """

    OP_NAME = "cam.sync"
    HAS_SIDE_EFFECTS = True

    def __init__(self, level: str, rows: int = 0):
        if level not in MERGE_LEVELS:
            raise ValueError(f"unknown sync level: {level!r}")
        super().__init__(
            attributes={"level": StringAttr(level), "rows": IntegerAttr(rows)}
        )

    @property
    def level(self) -> str:
        return self.attributes["level"].value

    @property
    def rows(self) -> int:
        return self.attributes["rows"].value


@register_op
class WriteValueOp(Operation):
    """Program stored patterns into a subarray.

    ``row_offset`` supports selective-search data placement: multiple
    batches of patterns can be stacked at different row offsets of the same
    subarray (paper §III-D2, built-in optimizations).
    """

    OP_NAME = "cam.write_value"
    HAS_SIDE_EFFECTS = True

    def __init__(self, subarray: Value, data: Value, row_offset: int = 0):
        super().__init__(
            operands=[subarray, data],
            attributes={"row_offset": IntegerAttr(row_offset)},
        )

    @property
    def subarray(self) -> Value:
        return self.operands[0]

    @property
    def data(self) -> Value:
        return self.operands[1]

    @property
    def row_offset(self) -> int:
        return self.attributes["row_offset"].value

    def verify(self) -> None:
        if self.operands[0].type != CamIdType("subarray"):
            raise ValueError("cam.write_value expects a subarray id")
        if not isinstance(self.operands[1].type, MemRefType):
            raise ValueError("cam.write_value data must be a memref")


@register_op
class SearchOp(Operation):
    """Search a query against a subarray.

    Attributes:

    * ``search_type``: exact / best / threshold;
    * ``metric``: hamming / euclidean / dot;
    * ``row_begin`` / ``row_count``: selective row search window
      (``row_count == -1`` searches every valid row);
    * ``threshold``: match threshold for threshold search.
    """

    OP_NAME = "cam.search"
    HAS_SIDE_EFFECTS = True

    def __init__(
        self,
        subarray: Value,
        query: Value,
        search_type: str = "best",
        metric: str = "hamming",
        row_begin: int = 0,
        row_count: int = -1,
        threshold: float = 0.0,
        accumulate: bool = False,
    ):
        if search_type not in SEARCH_TYPES:
            raise ValueError(f"unknown search type: {search_type!r}")
        if metric not in SEARCH_METRICS:
            raise ValueError(f"unknown search metric: {metric!r}")
        super().__init__(
            operands=[subarray, query],
            attributes={
                "search_type": StringAttr(search_type),
                "metric": StringAttr(metric),
                "row_begin": IntegerAttr(row_begin),
                "row_count": IntegerAttr(row_count),
                "threshold": FloatAttr(threshold),
                "accumulate": BoolAttr(accumulate),
            },
        )

    @property
    def accumulate(self) -> bool:
        return self.attributes["accumulate"].value

    @property
    def subarray(self) -> Value:
        return self.operands[0]

    @property
    def query(self) -> Value:
        return self.operands[1]

    @property
    def search_type(self) -> str:
        return self.attributes["search_type"].value

    @property
    def metric(self) -> str:
        return self.attributes["metric"].value

    @property
    def row_begin(self) -> int:
        return self.attributes["row_begin"].value

    @property
    def row_count(self) -> int:
        return self.attributes["row_count"].value

    def verify(self) -> None:
        if self.operands[0].type != CamIdType("subarray"):
            raise ValueError("cam.search expects a subarray id")
        if not isinstance(self.operands[1].type, MemRefType):
            raise ValueError("cam.search query must be a memref")


@register_op
class ReadOp(Operation):
    """Read the result of the last search on a subarray.

    Returns two buffers: per-row match scores (values) and the global row
    indices they correspond to.  ``rows`` fixes the static result size.
    """

    OP_NAME = "cam.read"
    HAS_SIDE_EFFECTS = True

    def __init__(self, subarray: Value, rows: int, element_type: Type):
        super().__init__(
            operands=[subarray],
            result_types=[
                MemRefType([rows, 1], element_type),
                MemRefType([rows, 1], i64),
            ],
            attributes={"rows": IntegerAttr(rows)},
        )

    @property
    def subarray(self) -> Value:
        return self.operands[0]

    @property
    def rows(self) -> int:
        return self.attributes["rows"].value


@register_op
class MergePartialOp(Operation):
    """Accumulate a partial score buffer into an accumulator buffer.

    ``direction = horizontal`` adds scores elementwise (partitions of the
    feature dimension); ``vertical`` writes the partial rows at
    ``row_offset`` within the accumulator (partitions of the pattern set).
    ``level`` records at which hierarchy level the merge happens — the
    timing model charges the corresponding interconnect.
    """

    OP_NAME = "cam.merge_partial"
    HAS_SIDE_EFFECTS = True

    def __init__(
        self,
        acc: Value,
        partial: Value,
        direction: str = "horizontal",
        level: str = "subarray",
        row_offset: int = 0,
        row_offset_value: "Value" = None,
    ):
        if level not in MERGE_LEVELS:
            raise ValueError(f"unknown merge level: {level!r}")
        operands = [acc, partial]
        if row_offset_value is not None:
            operands.append(row_offset_value)
        super().__init__(
            operands=operands,
            attributes={
                "direction": StringAttr(direction),
                "level": StringAttr(level),
                "row_offset": IntegerAttr(row_offset),
            },
        )

    @property
    def acc(self) -> Value:
        return self.operands[0]

    @property
    def partial(self) -> Value:
        return self.operands[1]

    @property
    def direction(self) -> str:
        return self.attributes["direction"].value

    @property
    def level(self) -> str:
        return self.attributes["level"].value

    @property
    def row_offset(self) -> int:
        return self.attributes["row_offset"].value


@register_op
class SelectTopkOp(Operation):
    """Final top-k selection over a merged score buffer (host peripheral).

    Models the winner-take-all / sorting peripheral that picks the best
    ``k`` rows once all partial scores are merged.
    """

    OP_NAME = "cam.select_topk"
    HAS_SIDE_EFFECTS = True

    def __init__(
        self,
        scores: Value,
        k: int,
        largest: bool,
        values_out: Value,
        indices_out: Value,
    ):
        super().__init__(
            operands=[scores, values_out, indices_out],
            attributes={"k": IntegerAttr(k), "largest": BoolAttr(largest)},
        )

    @property
    def scores(self) -> Value:
        return self.operands[0]

    @property
    def values_out(self) -> Value:
        return self.operands[1]

    @property
    def indices_out(self) -> Value:
        return self.operands[2]

    @property
    def k(self) -> int:
        return self.attributes["k"].value

    @property
    def largest(self) -> bool:
        return self.attributes["largest"].value
