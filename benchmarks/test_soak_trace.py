"""Zipf-skewed multi-tenant soak: cost-model placement vs. FFD.

Four equal-footprint tenants share a two-machine fleet (two 1-bank
tenants per 2-bank machine).  Traffic is Zipf-skewed — one dominant
tenant, a second warm one, a cold tail — so *where* tenants land
decides tail latency: FFD packs by bank demand alone and (equal
demands, submission order) co-locates the two busiest tenants, driving
their shared machine past saturation; the cost-guided packer
(``policy="cost"``) sees the predicted interference and spreads them at
the **same fleet size**.

The soak replays the same deterministic arrival timeline (sim clock,
measured per-batch service latencies, serialized per machine) against
both layouts.  Floors asserted:

* the hot tenant's p99 request latency under FFD is >= 1.3x its p99
  under cost placement, at equal machine count;
* the autotuner ranks the cost layout at or below the FFD layout for
  this trace, and its emitted plan rebuilds through
  ``Cluster.from_plan`` into the identical placement.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import dse_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime import Cluster
from repro.runtime.autotune import TrafficTrace, autotune
from repro.runtime.costmodel import PlacementCost, TenantProfile, TrafficHint
from repro.runtime.placement import plan_placement, tenant_demand

from harness import print_series

# Wall-clock-free (the replay runs on the sim clock), but it compiles
# and probes a small fleet — keep it in the benchmark tier with the
# other multi-machine runs.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

SPEC = replace(dse_spec(16), banks=2)   # 1 bank per tenant, 2 per machine
TENANTS = ("t0", "t1", "t2", "t3")
#: Zipf(~2) rate weights, hottest first: the classic skewed mix.
WEIGHTS = (1.0, 0.25, 0.1, 0.0625)
#: The hot tenant's target utilization of one machine.  Spread, every
#: machine stays below 1.0; co-packed, t0+t1 exceed it and queue.
HOT_UTILIZATION = 0.9
BATCH_ROWS = 4
HOT_REQUESTS = 2000                     # replay horizon, in t0 requests
P99_FLOOR = 1.3


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _p99(values):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))]


def _replay(machine_of, trace, service_s, horizon_s):
    """Deterministic discrete-event replay on the sim clock: each
    machine serves its tenants' requests in arrival order,
    back-to-back; a request's latency is finish minus arrival."""
    busy = {}
    latencies = {tid: [] for tid in machine_of}
    for arrival, tid in trace.arrivals(horizon_s):
        machine = machine_of[tid]
        start = max(arrival, busy.get(machine, 0.0))
        finish = start + service_s[tid]
        busy[machine] = finish
        latencies[tid].append(finish - arrival)
    return latencies


@pytest.fixture(scope="module")
def fleet():
    """Compiled tenants, measured per-batch service, calibrated model
    and the Zipf trace scaled to the measured service rate."""
    rng = np.random.default_rng(20240808)
    stores = {
        tid: rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
        for tid in TENANTS
    }
    kernels, profiles, service_s = {}, {}, {}
    for tid in TENANTS:
        kernel = C4CAMCompiler(SPEC).compile(
            _dot_model(stores[tid]), [placeholder((1, 64))]
        )
        probe = rng.choice([-1.0, 1.0], (BATCH_ROWS, 64))
        kernel.run_batch(probe)
        kernels[tid] = kernel
        profiles[tid] = TenantProfile.from_report(tid, kernel.last_report)
        service_s[tid] = kernel.last_report.query_latency_ns * 1e-9
    # Rates in requests/s scaled so the hot tenant alone loads one
    # machine to HOT_UTILIZATION; qps = requests/s * rows per request.
    hot_rps = HOT_UTILIZATION / service_s["t0"]
    trace = TrafficTrace(hints=tuple(
        TrafficHint(
            tid,
            rate_qps=weight * hot_rps * BATCH_ROWS,
            batch_rows=BATCH_ROWS,
        )
        for tid, weight in zip(TENANTS, WEIGHTS)
    ))
    model = PlacementCost(profiles, hints=trace.as_dict())
    return {
        "stores": stores,
        "kernels": kernels,
        "model": model,
        "trace": trace,
        "service_s": service_s,
    }


def _layouts(fleet):
    demands = [
        tenant_demand(tid, fleet["kernels"][tid].query_programs[0].plan, SPEC)
        for tid in TENANTS
    ]
    plans = {
        "ffd": plan_placement(demands, SPEC, policy="ffd"),
        "cost": plan_placement(
            demands, SPEC, policy="cost", cost_model=fleet["model"]
        ),
    }
    machine_of = {
        policy: {a.tenant_id: a.machine_index for a in plan.assignments}
        for policy, plan in plans.items()
    }
    return plans, machine_of


def test_cost_placement_beats_ffd_hot_p99(fleet):
    plans, machine_of = _layouts(fleet)
    # Equal fleet, different layout: FFD co-packs the hot pair.
    assert plans["ffd"].num_machines == plans["cost"].num_machines == 2
    assert machine_of["ffd"]["t0"] == machine_of["ffd"]["t1"]
    assert machine_of["cost"]["t0"] != machine_of["cost"]["t1"]

    horizon_s = HOT_REQUESTS * BATCH_ROWS / fleet["trace"].hint("t0").rate_qps
    results = {
        policy: _replay(
            machine_of[policy], fleet["trace"], fleet["service_s"], horizon_s
        )
        for policy in ("ffd", "cost")
    }
    p99_us = {
        policy: [1e6 * _p99(latencies[tid]) for tid in TENANTS]
        for policy, latencies in results.items()
    }
    print_series(
        "Soak trace: per-tenant p99 request latency (sim us)",
        list(TENANTS), sorted(p99_us.items()),
    )
    ratio = p99_us["ffd"][0] / p99_us["cost"][0]
    assert ratio >= P99_FLOOR, (
        f"cost placement only improved the hot tenant's p99 by "
        f"{ratio:.2f}x (floor {P99_FLOOR}x)"
    )
    # The win is interference removal, not a shuffle: the fleet's
    # worst-tenant p99 improves by the same floor.
    assert max(p99_us["ffd"]) >= P99_FLOOR * max(p99_us["cost"])


def test_autotuner_prefers_and_replays_cost_layout(fleet):
    models = {tid: _dot_model(fleet["stores"][tid]) for tid in TENANTS}
    inputs = {tid: [placeholder((1, 64))] for tid in TENANTS}
    result = autotune(
        models, inputs, fleet["trace"], presets={"soak": SPEC},
    )
    by_policy = {c.policy: c for c in result.candidates}
    assert by_policy["cost"].predicted.total <= by_policy["ffd"].predicted.total
    assert by_policy["cost"].machines == by_policy["ffd"].machines

    # The emitted plan replays into the identical fleet, bitwise.
    rng = np.random.default_rng(7)
    queries = {
        tid: rng.choice([-1.0, 1.0], (3, 64)).astype(np.float32)
        for tid in TENANTS
    }
    with Cluster.from_plan(result.plan, result.kernels) as rebuilt:
        assert rebuilt.plan() == result.plan
        spans = rebuilt.bank_spans()
        for entry in result.plan["placement"]:
            assert spans[entry["tenant_id"]] == (
                entry["machine_index"],
                entry["bank_offset"],
                entry["banks"],
            )
        for tid in TENANTS:
            values, indices = rebuilt.run_batch(queries[tid], tenant=tid)
            solo_v, solo_i = result.kernels[tid].run_batch(queries[tid])
            np.testing.assert_array_equal(values, solo_v)
            np.testing.assert_array_equal(indices, solo_i)
