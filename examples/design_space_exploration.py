#!/usr/bin/env python
"""Design-space exploration — the automation showcase of paper §IV-C.

Sweeps subarray sizes 16..256 across the four optimization configurations
(cam-base / cam-power / cam-density / cam-power+density) for the HDC
workload, without touching the application code: only the architecture
specification changes.  Prints the latency / energy / power trends of
paper Fig. 8 and the subarray counts of Table I.

Run:  python examples/design_space_exploration.py

Expected output: Table I subarray counts per configuration, then
latency/energy/power tables over subarray sizes 16..256 where the power
configs draw the least power and density needs the fewest subarrays;
full results land in ``dse_results.csv``.
"""


from repro.apps import synthetic_mnist, train_hdc
from repro.arch import dse_spec
from repro.transforms import subarrays_required

SIZES = (16, 32, 64, 128, 256)
CONFIGS = (
    ("cam-base", "latency"),
    ("cam-power", "power"),
    ("cam-density", "density"),
    ("cam-power+density", "power+density"),
)


def main():
    dataset = synthetic_mnist(n_train=256, n_test=8)
    model = train_hdc(dataset, dimensions=8192, bits=1)
    queries = model.encode_queries(dataset.test_x[:1])

    print("--- Table I: subarrays used to implement HDC (8k dims) ---")
    print(f"{'config':>14}", *(f"{n}x{n:<6}" for n in SIZES))
    for label, density in (("cam-based", False), ("cam-density", True)):
        counts = [
            subarrays_required(model.n_classes, model.dimensions,
                               dse_spec(n), density)
            for n in SIZES
        ]
        print(f"{label:>14}", *(f"{c:<8}" for c in counts))

    from repro.evaluation import dse_grid, format_table, run_sweep

    sweep = run_sweep(
        lambda: model.kernel(n_queries=1),
        [queries],
        dse_grid(sizes=SIZES, targets=[t for _l, t in CONFIGS]),
    )
    for metric, title in (
        ("latency_ns", "Fig. 8b: latency (ns/query)"),
        ("energy_pj", "Fig. 8a: energy (pJ/query)"),
        ("power_mw", "Fig. 8c: power (mW)"),
    ):
        print()
        print(format_table(sweep, metric, SIZES, title=title))

    csv_path = "dse_results.csv"
    with open(csv_path, "w") as f:
        f.write(sweep.to_csv())
    print(f"\nfull results written to {csv_path}")


if __name__ == "__main__":
    main()
