"""Peripheral circuit models: sense amplifiers, encoders and selectors.

These capture the *behavioural* side of the sensing circuits described in
paper §II-B; their latency/energy cost lives in
:class:`~repro.arch.technology.TechnologyModel`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def exact_match(scores: np.ndarray, prefers_larger: bool) -> np.ndarray:
    """EX sensing: boolean match vector (distance 0 / maximal similarity).

    Exact match is the cheapest scheme — a row matches when no cell
    mismatches, i.e. Hamming/Euclidean score 0.
    """
    if prefers_larger:
        if scores.size == 0:
            return np.zeros(0, dtype=bool)
        return scores >= scores.max()
    return scores == 0


def threshold_match(
    scores: np.ndarray, threshold: float, prefers_larger: bool
) -> np.ndarray:
    """TH sensing: rows within a distance threshold (or above a
    similarity threshold)."""
    if prefers_larger:
        return scores >= threshold
    return scores <= threshold


def best_match(
    scores: np.ndarray,
    k: int,
    prefers_larger: bool,
    wta_window: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """BE sensing: indices and values of the ``k`` best rows.

    ``wta_window`` models the winner-take-all circuit limitation of [19]:
    a WTA can only distinguish matches within a bounded number of
    mismatching cells of the winner; rows outside ``winner ± window`` are
    reported as ties of the boundary.  ``0`` means an ideal
    (ADC-assisted) sensing chain.
    """
    if scores.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    k = min(k, scores.size)
    order = np.argsort(-scores if prefers_larger else scores, kind="stable")
    top = order[:k]
    values = scores[top].astype(np.float64)
    if wta_window > 0:
        best = scores[order[0]]
        if prefers_larger:
            limit = best - wta_window
            values = np.maximum(values, limit)
        else:
            limit = best + wta_window
            values = np.minimum(values, limit)
    return top.astype(np.int64), values


def priority_encode(match_vector: np.ndarray) -> int:
    """Address of the first matching row, or -1 (the encoder of Fig. 1)."""
    hits = np.flatnonzero(match_vector)
    return int(hits[0]) if hits.size else -1
