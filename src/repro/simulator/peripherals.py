"""Peripheral circuit models: sense amplifiers, encoders and selectors.

These capture the *behavioural* side of the sensing circuits described in
paper §II-B; their latency/energy cost lives in
:class:`~repro.arch.technology.TechnologyModel`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def exact_match(
    scores: np.ndarray,
    prefers_larger: bool,
    perfect_score: float = None,
) -> np.ndarray:
    """EX sensing: boolean match vector (distance 0 / full-row match).

    Exact match is the cheapest scheme — a row matches when no cell
    mismatches, i.e. Hamming/Euclidean score 0.  For similarity metrics
    (``prefers_larger=True``) the row must *equal* ``perfect_score``,
    the score of a stored row identical to the query (see
    :func:`repro.simulator.cells.perfect_score`).  Comparing against the
    best *observed* score instead would report the best-scoring row as an
    "exact" match even when no stored row fully matches; comparing with
    ``>=`` would accept larger-magnitude rows that are not the query.
    """
    if prefers_larger:
        if scores.size == 0:
            return np.zeros(0, dtype=bool)
        if perfect_score is None:
            raise ValueError(
                "exact match on a similarity metric needs the metric's "
                "perfect-match score (cells.perfect_score)"
            )
    elif perfect_score is None:
        perfect_score = 0.0
    return scores == perfect_score


def threshold_match(
    scores: np.ndarray, threshold: float, prefers_larger: bool
) -> np.ndarray:
    """TH sensing: rows within a distance threshold (or above a
    similarity threshold)."""
    if prefers_larger:
        return scores >= threshold
    return scores <= threshold


def best_match(
    scores: np.ndarray,
    k: int,
    prefers_larger: bool,
    wta_window: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """BE sensing: indices and values of the ``k`` best rows.

    ``wta_window`` models the winner-take-all circuit limitation of [19]:
    a WTA can only distinguish matches within a bounded number of
    mismatching cells of the winner; rows outside ``winner ± window`` are
    reported as ties of the boundary.  ``0`` means an ideal
    (ADC-assisted) sensing chain.

    The single-query row of :func:`best_match_batch`.
    """
    indices, values = best_match_batch(
        np.asarray(scores, dtype=np.float64).reshape(1, -1),
        k, prefers_larger, wta_window,
    )
    return indices[0], values[0]


def best_match_batch(
    scores: np.ndarray,
    k: int,
    prefers_larger: bool,
    wta_window: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`best_match` over a ``B×R`` score matrix.

    Returns ``(indices, values)`` of shape ``B×k``.  Row-for-row bitwise
    identical to calling :func:`best_match` per query: the sort is the
    same stable argsort and the WTA clamp uses each row's own winner.
    """
    scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
    if scores.shape[1] == 0:
        return (
            np.zeros((scores.shape[0], 0), dtype=np.int64),
            np.zeros((scores.shape[0], 0)),
        )
    k = min(k, scores.shape[1])
    order = np.argsort(
        -scores if prefers_larger else scores, axis=1, kind="stable"
    )
    top = order[:, :k]
    values = np.take_along_axis(scores, top, axis=1).astype(np.float64)
    if wta_window > 0:
        best = np.take_along_axis(scores, order[:, :1], axis=1)
        if prefers_larger:
            values = np.maximum(values, best - wta_window)
        else:
            values = np.minimum(values, best + wta_window)
    return top.astype(np.int64), values


def priority_encode(match_vector: np.ndarray) -> int:
    """Address of the first matching row, or -1 (the encoder of Fig. 1)."""
    hits = np.flatnonzero(match_vector)
    return int(hits[0]) if hits.size else -1
