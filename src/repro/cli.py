"""``python -m repro.cli`` — the c4cam command-line driver.

Mirrors an ``mlir-opt``-style workflow on the built-in HDC workload:

    python -m repro.cli --arch arch.json --dump-ir cam --stats
    python -m repro.cli --rows 64 --cols 64 --target density
    python -m repro.cli --pipeline torch-to-cim,cim-fuse-ops --dump-ir cim
    python -m repro.cli --batch 64 --stats   # one session, 64 queries

The driver traces the paper's Fig. 4a kernel on synthetic data, runs the
requested pipeline, optionally prints the IR, executes on the simulated
CAM and reports the metrics.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.arch import ArchSpec, paper_spec
from repro.compiler import C4CAMCompiler, build_pipeline
from repro.frontend import placeholder
from repro.ir.printer import print_module
from repro.simulator.analysis import format_report


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="c4cam",
        description="Compile and simulate a similarity kernel on a CAM.",
    )
    p.add_argument("--arch", help="architecture JSON file")
    p.add_argument("--rows", type=int, default=32, help="subarray rows")
    p.add_argument("--cols", type=int, default=32, help="subarray columns")
    p.add_argument(
        "--cam-type", default="tcam", choices=("bcam", "tcam", "mcam", "acam")
    )
    p.add_argument("--bits", type=int, default=1, help="bits per cell")
    p.add_argument(
        "--target", default="latency",
        choices=("latency", "power", "density", "power+density"),
        help="optimization target",
    )
    p.add_argument("--patterns", type=int, default=10)
    p.add_argument("--dims", type=int, default=1024)
    p.add_argument("--queries", type=int, default=4)
    p.add_argument(
        "--batch", type=int, metavar="N",
        help="serve N queries through one batched query session "
        "(patterns programmed once; reports amortized throughput)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--dump-ir", choices=("torch", "cim", "cam"),
        help="print the IR after the given stage and exit",
    )
    p.add_argument(
        "--pipeline",
        help="comma-separated custom pass pipeline (overrides --dump-ir)",
    )
    p.add_argument(
        "--stats", action="store_true", help="print detailed metrics"
    )
    return p


def load_spec(args) -> ArchSpec:
    if args.arch:
        return ArchSpec.from_json(args.arch)
    return paper_spec(
        rows=args.rows,
        cols=args.cols,
        cam_type=args.cam_type,
        bits_per_cell=args.bits,
        optimization_target=args.target,
    )


def build_kernel(args):
    import repro.frontend.torch_api as torch

    rng = np.random.default_rng(args.seed)
    stored = rng.choice([-1.0, 1.0], (args.patterns, args.dims)).astype(
        np.float32
    )
    queries = rng.choice([-1.0, 1.0], (args.queries, args.dims)).astype(
        np.float32
    )

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
            return values, indices

    example = [placeholder((args.queries, args.dims))]
    return DotSimilarity(), example, queries


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.batch is not None and args.batch < 1:
        parser.error(f"--batch must be a positive query count, got {args.batch}")
    spec = load_spec(args)
    compiler = C4CAMCompiler(spec)
    model, example, queries = build_kernel(args)

    if args.pipeline:
        from repro.passes.pipeline import build_pipeline_from_spec

        module, _params = compiler.import_torchscript(model, example)
        pm = build_pipeline_from_spec(args.pipeline, spec)
        pm.run(module)
        print(print_module(module))
        return 0

    if args.dump_ir:
        module, _params = compiler.import_torchscript(model, example)
        if args.dump_ir != "torch":
            pm = build_pipeline(spec, lower_to_cam=args.dump_ir == "cam")
            pm.run(module)
        print(print_module(module))
        return 0

    kernel = compiler.compile(model, example)
    if args.batch:
        rng = np.random.default_rng(args.seed + 1)
        batch = rng.choice([-1.0, 1.0], (args.batch, args.dims)).astype(
            np.float32
        )
        _values, indices = kernel.run_batch(batch)
        report = kernel.last_report
        print(f"predicted indices: {indices.ravel().tolist()}")
        print(
            f"batch of {report.queries} queries: "
            f"{report.throughput_qps:.3e} queries/s "
            f"(setup {report.setup_latency_ns:.1f} ns charged once)"
        )
    else:
        _values, indices = kernel(queries)
        report = kernel.last_report
        print(f"predicted indices: {indices.ravel().tolist()}")
    if args.stats:
        print(format_report(report, kernel.last_machine))
    else:
        print(report.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
