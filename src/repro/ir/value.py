"""SSA values: operation results and block arguments.

A :class:`Value` tracks its uses (operation + operand index pairs) so that
rewrites can do ``replace_all_uses_with`` in O(uses) and the verifier can
check dominance and detect dangling references.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .types import Type

if TYPE_CHECKING:  # pragma: no cover
    from .block import Block
    from .operation import Operation


class Use:
    """A single use of a value: ``owner.operands[index] is value``."""

    __slots__ = ("owner", "index")

    def __init__(self, owner: "Operation", index: int):
        self.owner = owner
        self.index = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Use({self.owner.name}, {self.index})"


class Value:
    """Base class for SSA values."""

    def __init__(self, type: Type):
        if not isinstance(type, Type):
            raise TypeError(f"value type must be a Type, got {type!r}")
        self.type = type
        self.uses: List[Use] = []
        self.name_hint: Optional[str] = None

    @property
    def has_uses(self) -> bool:
        """True when at least one operation consumes this value."""
        return bool(self.uses)

    def users(self):
        """Iterate over the distinct operations that use this value."""
        seen = set()
        for use in self.uses:
            if id(use.owner) not in seen:
                seen.add(id(use.owner))
                yield use.owner

    def replace_all_uses_with(self, other: "Value") -> None:
        """Redirect every use of ``self`` to ``other``."""
        if other is self:
            return
        for use in list(self.uses):
            use.owner._set_operand(use.index, other)

    def _add_use(self, owner: "Operation", index: int) -> Use:
        use = Use(owner, index)
        self.uses.append(use)
        return use

    def _remove_use(self, owner: "Operation", index: int) -> None:
        for i, use in enumerate(self.uses):
            if use.owner is owner and use.index == index:
                del self.uses[i]
                return
        raise RuntimeError("use not found; IR use-lists are corrupt")


class OpResult(Value):
    """The ``index``-th result of ``op``."""

    def __init__(self, op: "Operation", index: int, type: Type):
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        """The operation producing this result."""
        return self.op

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpResult({self.op.name}#{self.index}: {self.type})"


class BlockArgument(Value):
    """The ``index``-th argument of ``block``."""

    def __init__(self, block: "Block", index: int, type: Type):
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        """The block owning this argument."""
        return self.block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockArgument(#{self.index}: {self.type})"
