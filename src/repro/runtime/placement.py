"""Multi-tenant bank placement: several kernels sharing one machine fleet.

PR 1–3 gave one compiled kernel a program-once session, capacity
(sharding) and throughput (replication) — but every kernel still
monopolized its own machines.  The C4CAM value proposition is mapping
*many* application kernels onto the same CAM fabric, so this module adds
the co-residency axis, the way far-memory data planes pack independent
applications onto one shared runtime with honest per-app accounting:

* **bank-granular placement** — each compiled tenant (a lowered store of
  N rows) demands ``banks_needed(plan.subarrays)`` whole banks;
  :func:`plan_placement` packs the tenants into the banks of a shared
  machine fleet with first-fit-decreasing by bank count.  Over-packing
  raises :class:`PlacementError` (a :class:`CapacityError`) naming the
  tenant and its bank demand, with a per-tenant breakdown — never a
  silent spill.
* **shared programming** — :class:`MultiTenantSession` programs every
  tenant onto the shared machines exactly once (each tenant's setup walk
  allocates its own fresh banks, so tenants occupy disjoint fabric) and
  serves per-tenant ``run_batch(tenant_id, Q)`` whose results are
  **bitwise identical** to the tenant running alone on a private
  machine: match-line scores are row-local and each tenant searches and
  reads only its own subarray range.
* **honest accounting** — per-tenant reports charge each tenant's own
  banks (dynamic energy by counter deltas, standby scoped to the
  tenant's slice); the fleet report combines tenants of one machine
  serially (:func:`~repro.simulator.metrics.combine_serial_reports` —
  the fabric serves one tenant at a time, and the shared fabric is
  counted once) and machines of the fleet concurrently
  (:func:`~repro.simulator.metrics.merge_concurrent_reports`).  Tenant
  energies therefore sum exactly to the fleet energy.

``reset()`` evicts everything and re-places: fresh machines, every
tenant re-programmed — the multi-tenant analogue of a kernel's
session reset.  ``clone()`` replicates the whole fleet (same compiled
artifacts and placement, new machines), which is what
:class:`~repro.runtime.serving.ReplicatedSession` uses to scale a
multi-tenant deployment for throughput.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import TechnologyModel
from repro.ir.module import ModuleOp
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import (
    EnergyBreakdown,
    ExecutionReport,
    combine_serial_reports,
    merge_concurrent_reports,
)
from repro.transforms.partitioning import CapacityError, PartitionPlan

from .backend import ExecutionBackend, LaneStats, SessionError
from .machineview import MachineGroupView
from .session import QueryProgram, QuerySession

__all__ = [
    "MultiTenantSession",
    "PlacementError",
    "PlacementPlan",
    "TenantAssignment",
    "TenantDemand",
    "TenantProgram",
    "plan_placement",
    "tenant_demand",
]


# ---------------------------------------------------------------- demands
@dataclass(frozen=True)
class TenantDemand:
    """One tenant's resource ask: whole banks on some fleet machine."""

    tenant_id: str
    plan: PartitionPlan
    banks: int

    @property
    def patterns(self) -> int:
        return self.plan.patterns

    @property
    def features(self) -> int:
        return self.plan.features

    def describe(self) -> str:
        return (
            f"tenant {self.tenant_id!r}: {self.banks} bank(s) "
            f"({self.patterns} rows x {self.features} features, "
            f"{self.plan.subarrays} subarrays)"
        )


def tenant_demand(
    tenant_id: str, plan: PartitionPlan, spec: ArchSpec
) -> TenantDemand:
    """The bank demand of one compiled tenant on ``spec`` machines.

    Placement is bank-granular: a tenant occupies whole banks (the next
    tenant starts in a fresh bank), so the demand is
    ``spec.banks_needed(plan.subarrays)`` — exactly the banks the
    tenant's lowered module allocates during its setup walk.
    """
    return TenantDemand(
        tenant_id=tenant_id,
        plan=plan,
        banks=max(1, spec.banks_needed(plan.subarrays)),
    )


class PlacementError(CapacityError):
    """The tenant set does not fit the machine fleet.

    A :class:`~repro.transforms.partitioning.CapacityError` (existing
    overflow handlers keep working) whose message names the tenant that
    failed to place and its bank demand, followed by the per-tenant
    breakdown of the whole set.  ``demands`` carries the structured
    view for programmatic sizing.
    """

    def __init__(
        self,
        message: str,
        demands: Sequence[TenantDemand],
        spec: ArchSpec,
        tenant_id: Optional[str] = None,
    ):
        # CapacityError.__init__ builds a single-kernel message; this is
        # a fleet-level overflow, so bypass it and keep only the
        # exception identity (callers catch CapacityError).
        self.demands = tuple(demands)
        self.spec = spec
        self.tenant_id = tenant_id
        breakdown = "".join(
            f"\n  - {demand.describe()}" for demand in self.demands
        )
        RuntimeError.__init__(
            self, message + "; per-tenant demand:" + breakdown
        )


# -------------------------------------------------------------- placement
@dataclass(frozen=True)
class TenantAssignment:
    """Where one tenant lives: a bank range on one fleet machine."""

    tenant_id: str
    machine_index: int
    bank_offset: int
    banks: int

    @property
    def bank_range(self) -> Tuple[int, int]:
        """Half-open ``[first, last)`` bank interval on the machine."""
        return (self.bank_offset, self.bank_offset + self.banks)


@dataclass(frozen=True)
class PlacementPlan:
    """A bank-granular packing of tenants onto a machine fleet.

    ``assignments`` are in *programming order*: ascending
    ``(machine_index, bank_offset)`` — machines allocate banks
    append-only, so programming tenants in this order reproduces the
    planned bank offsets exactly.
    """

    assignments: Tuple[TenantAssignment, ...]
    num_machines: int
    banks_per_machine: Optional[int]  # None = unbounded machine

    def for_tenant(self, tenant_id: str) -> TenantAssignment:
        for assignment in self.assignments:
            if assignment.tenant_id == tenant_id:
                return assignment
        raise KeyError(f"no tenant {tenant_id!r} in this placement")

    def machine_tenants(self, machine_index: int) -> List[TenantAssignment]:
        """The machine's tenants in ascending bank-offset order."""
        return [
            assignment
            for assignment in self.assignments
            if assignment.machine_index == machine_index
        ]

    @property
    def tenant_ids(self) -> List[str]:
        return [assignment.tenant_id for assignment in self.assignments]

    def describe(self) -> str:
        """A human-readable placement map (one line per machine)."""
        cap = (
            "unbounded" if self.banks_per_machine is None
            else f"{self.banks_per_machine} banks"
        )
        lines = [f"{len(self.assignments)} tenant(s) on "
                 f"{self.num_machines} machine(s) ({cap} each):"]
        for index in range(self.num_machines):
            spans = ", ".join(
                f"{a.tenant_id!r} banks [{a.bank_range[0]},{a.bank_range[1]})"
                for a in self.machine_tenants(index)
            )
            lines.append(f"  machine {index}: {spans}")
        return "\n".join(lines)


def plan_placement(
    demands: Sequence[TenantDemand],
    spec: ArchSpec,
    max_machines: Optional[int] = None,
    policy: str = "ffd",
    cost_model=None,
) -> PlacementPlan:
    """Pack tenant bank demands onto a fleet of ``spec`` machines.

    ``policy="ffd"`` (the default) is first-fit-decreasing by bank
    count: tenants are considered from the largest demand down (ties
    break on ``tenant_id``, so the plan is independent of submission
    order) and each lands in the first machine with enough free banks;
    a new machine opens when none fits, up to ``max_machines``
    (``None`` grows the fleet on demand, mirroring ``banks=None``
    machines growing banks on demand).  An unbounded spec
    (``spec.banks is None``) places every tenant on one machine.

    ``policy="cost"`` packs for *speed*, not just fit: given a
    calibrated :class:`~repro.runtime.costmodel.PlacementCost` (the
    ``cost_model``), a greedy seed places tenants hottest-first at the
    position of least predicted cost, then a local search improves the
    packing with single-tenant moves and pairwise swaps — spreading hot
    tenants across machines (co-residents serialize) and co-packing
    cold ones.  The cost packer never uses more machines than FFD
    would for the same demands: it reshuffles the same fleet for
    latency, so the two policies always compare at equal silicon.
    When the model is missing, covers only part of the tenant set, or
    carries no traffic signal (:attr:`PlacementCost.has_traffic`),
    the packer honestly falls back to FFD.

    Raises :class:`PlacementError` — naming the offending tenant and its
    bank demand, with the full per-tenant breakdown — when a single
    tenant exceeds one machine's banks, or when the capped fleet cannot
    hold the set.
    """
    if not demands:
        raise ValueError("plan_placement needs at least one tenant demand")
    if policy not in ("ffd", "cost"):
        raise ValueError(
            f"unknown placement policy {policy!r} (one of 'ffd', 'cost')"
        )
    seen = set()
    for demand in demands:
        if demand.tenant_id in seen:
            raise ValueError(f"duplicate tenant id {demand.tenant_id!r}")
        seen.add(demand.tenant_id)
    if max_machines is not None and max_machines < 1:
        raise ValueError("max_machines must be >= 1 (or None for auto)")

    if spec.banks is None:
        # One unbounded machine either way; deterministic order.
        ordered = sorted(demands, key=lambda d: (-d.banks, d.tenant_id))
        offsets, cursor = [], 0
        for demand in ordered:
            offsets.append(cursor)
            cursor += demand.banks
        return PlacementPlan(
            assignments=tuple(
                TenantAssignment(d.tenant_id, 0, offset, d.banks)
                for d, offset in zip(ordered, offsets)
            ),
            num_machines=1,
            banks_per_machine=None,
        )

    capacity = spec.banks
    for demand in demands:
        if demand.banks > capacity:
            raise PlacementError(
                f"tenant {demand.tenant_id!r} alone needs {demand.banks} "
                f"bank(s) but one machine caps at {capacity}; enlarge the "
                f"spec or shrink the tenant (sharded tenants are not "
                f"placeable)",
                demands,
                spec,
                tenant_id=demand.tenant_id,
            )

    ffd_groups = _pack_ffd(demands, capacity, max_machines, spec)
    if policy == "cost" and _cost_model_usable(cost_model, demands):
        groups = _pack_cost(demands, capacity, cost_model, ffd_groups)
    else:
        groups = ffd_groups
    return _realize_plan(groups, capacity)


def _cost_model_usable(cost_model, demands: Sequence[TenantDemand]) -> bool:
    """Whether the cost packer has what it needs; FFD otherwise."""
    if cost_model is None or not getattr(cost_model, "has_traffic", False):
        return False
    profiles = getattr(cost_model, "profiles", {})
    return all(d.tenant_id in profiles for d in demands)


def _pack_ffd(
    demands: Sequence[TenantDemand],
    capacity: int,
    max_machines: Optional[int],
    spec: ArchSpec,
) -> List[List[TenantDemand]]:
    """First-fit-decreasing core: per-machine demand groups."""
    order = sorted(demands, key=lambda d: (-d.banks, d.tenant_id))
    groups: List[List[TenantDemand]] = []
    fill: List[int] = []
    for demand in order:
        target = next(
            (m for m, used in enumerate(fill)
             if used + demand.banks <= capacity),
            None,
        )
        if target is None:
            if max_machines is not None and len(fill) >= max_machines:
                total = sum(d.banks for d in demands)
                raise PlacementError(
                    f"tenant {demand.tenant_id!r} needs {demand.banks} "
                    f"bank(s) but no machine of the fleet has room: "
                    f"{len(demands)} tenants demand {total} bank(s) "
                    f"against {max_machines} machine(s) x {capacity} "
                    f"banks = {max_machines * capacity}",
                    demands,
                    spec,
                    tenant_id=demand.tenant_id,
                )
            groups.append([])
            fill.append(0)
            target = len(fill) - 1
        groups[target].append(demand)
        fill[target] += demand.banks
    return groups


def _pack_cost(
    demands: Sequence[TenantDemand],
    capacity: int,
    cost_model,
    ffd_groups: List[List[TenantDemand]],
) -> List[List[TenantDemand]]:
    """Cost-guided packing at FFD-equal fleet size.

    Greedy seed: tenants hottest-first (offered work, then banks, then
    id — fully deterministic), each placed where the predicted total
    cost grows least.  The greedy order can paint itself into a corner
    FFD would not (bin packing), in which case the FFD groups seed the
    search instead.  Local search then applies the best single-tenant
    move or pairwise swap per round until no strict improvement exists.
    """
    budget = len(ffd_groups)
    order = sorted(
        demands,
        key=lambda d: (
            -cost_model.burden_ns(d.tenant_id), -d.banks, d.tenant_id
        ),
    )
    groups: List[List[TenantDemand]] = [[] for _ in range(budget)]
    fill = [0] * budget
    for demand in order:
        best, best_total = None, None
        for m in range(budget):
            if fill[m] + demand.banks > capacity:
                continue
            groups[m].append(demand)
            total = _groups_cost(groups, cost_model)
            groups[m].pop()
            if best is None or total < best_total - 1e-12:
                best, best_total = m, total
        if best is None:
            groups = [list(group) for group in ffd_groups]
            fill = [sum(d.banks for d in group) for group in groups]
            break
        groups[best].append(demand)
        fill[best] += demand.banks
    _improve_groups(groups, fill, capacity, cost_model)
    return [group for group in groups if group]


def _groups_cost(groups: Sequence[Sequence[TenantDemand]], cost_model):
    return cost_model.score_groups(
        [[d.tenant_id for d in group] for group in groups]
    ).total


def _improve_groups(
    groups: List[List[TenantDemand]],
    fill: List[int],
    capacity: int,
    cost_model,
) -> None:
    """Best-improvement local search: moves and swaps, in place.

    Each round enumerates every feasible single-tenant move and every
    feasible pairwise swap in deterministic order, applies the strictly
    best one, and stops when no candidate improves the predicted total
    (or after a generous round cap — the search is monotone, the cap
    only bounds pathological plateaus).
    """
    n_tenants = sum(len(group) for group in groups)
    current = _groups_cost(groups, cost_model)
    for _round in range(2 * n_tenants + 8):
        best = None  # (total, kind, a, i, b, j)
        for a in range(len(groups)):
            for i, demand in enumerate(groups[a]):
                for b in range(len(groups)):
                    if b == a:
                        continue
                    if fill[b] + demand.banks <= capacity:
                        groups[a].pop(i)
                        groups[b].append(demand)
                        total = _groups_cost(groups, cost_model)
                        groups[b].pop()
                        groups[a].insert(i, demand)
                        if total < current - 1e-12 and (
                            best is None or total < best[0] - 1e-12
                        ):
                            best = (total, "move", a, i, b, None)
                    for j, other in enumerate(groups[b]):
                        if a > b:
                            continue  # each pair once
                        if (
                            fill[a] - demand.banks + other.banks > capacity
                            or fill[b] - other.banks + demand.banks
                            > capacity
                        ):
                            continue
                        groups[a][i], groups[b][j] = other, demand
                        total = _groups_cost(groups, cost_model)
                        groups[a][i], groups[b][j] = demand, other
                        if total < current - 1e-12 and (
                            best is None or total < best[0] - 1e-12
                        ):
                            best = (total, "swap", a, i, b, j)
        if best is None:
            return
        total, kind, a, i, b, j = best
        if kind == "move":
            demand = groups[a].pop(i)
            groups[b].append(demand)
            fill[a] -= demand.banks
            fill[b] += demand.banks
        else:
            demand, other = groups[a][i], groups[b][j]
            groups[a][i], groups[b][j] = other, demand
            fill[a] += other.banks - demand.banks
            fill[b] += demand.banks - other.banks
        current = total


def _realize_plan(
    groups: Sequence[Sequence[TenantDemand]], capacity: Optional[int]
) -> PlacementPlan:
    """Deterministic assignments from per-machine groups: within each
    machine, tenants program largest-first (ties on ``tenant_id``) at
    cumulative offsets."""
    assignments: List[TenantAssignment] = []
    for index, group in enumerate(groups):
        cursor = 0
        for demand in sorted(
            group, key=lambda d: (-d.banks, d.tenant_id)
        ):
            assignments.append(
                TenantAssignment(demand.tenant_id, index, cursor,
                                 demand.banks)
            )
            cursor += demand.banks
    return PlacementPlan(
        assignments=tuple(assignments),
        num_machines=len(groups),
        banks_per_machine=capacity,
    )


# ---------------------------------------------------------------- tenants
@dataclass
class TenantProgram:
    """One tenant's compiled artifacts, ready to program anywhere.

    ``module`` is the fully lowered (cam-dialect) module, ``program``
    the query-phase structure its session replays, ``parameters`` the
    captured arrays (the stored patterns).  Everything is reusable:
    programming the tenant onto a machine re-runs only the setup walk.
    """

    tenant_id: str
    module: ModuleOp
    parameters: List[np.ndarray]
    program: QueryProgram
    func_name: str = "forward"

    @property
    def plan(self) -> PartitionPlan:
        return self.program.plan


# ---------------------------------------------------------------- session
class MultiTenantSession(ExecutionBackend, MachineGroupView):
    """K compiled kernels co-resident on one shared machine fleet.

    Construction places the tenants (:func:`plan_placement`, unless an
    explicit ``placement`` is given) and programs each one onto its
    machine in bank-offset order — every tenant's setup walk allocates
    its own banks, so the planned offsets are realized exactly and
    tenants never share a bank.  ``run_batch(tenant_id, Q)`` then serves
    any tenant against the live fleet; batches of tenants on *different*
    machines may run concurrently (a per-machine lock serializes
    same-machine tenants, like the hardware would).

    The object doubles as the aggregate machine view over the fleet
    (``banks_used``/``subarray(i)``/``chip_area_mm2`` span every
    machine) so :func:`repro.simulator.analysis.utilization` and
    ``format_report`` work unchanged, and it satisfies the replica
    contract (``clone``/``last_report``/``reset``) so a
    :class:`~repro.runtime.serving.ReplicatedSession` can scale the
    whole multi-tenant deployment for throughput.
    """

    def __init__(
        self,
        tenants: Sequence[TenantProgram],
        spec: ArchSpec,
        tech: TechnologyModel,
        max_machines: Optional[int] = None,
        placement: Optional[PlacementPlan] = None,
        noise_sigma: float = 0.0,
        noise_seed=0,
        fused: bool = True,
    ):
        if not tenants:
            raise SessionError("a multi-tenant session needs >= 1 tenant")
        self.fused = bool(fused)
        self.tenants: Dict[str, TenantProgram] = {}
        for tenant in tenants:
            if tenant.tenant_id in self.tenants:
                raise SessionError(
                    f"duplicate tenant id {tenant.tenant_id!r}"
                )
            self.tenants[tenant.tenant_id] = tenant
        self._tenant_order = [t.tenant_id for t in tenants]
        self.spec = spec
        self.tech = tech
        self.max_machines = max_machines
        self.noise_sigma = float(noise_sigma)
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        self.placement = placement or plan_placement(
            [
                tenant_demand(t.tenant_id, t.plan, spec)
                for t in tenants
            ],
            spec,
            max_machines,
        )
        missing = set(self.tenants) - set(self.placement.tenant_ids)
        if missing or len(self.placement.assignments) != len(self.tenants):
            raise SessionError(
                "placement does not cover exactly the tenant set "
                f"(unplaced: {sorted(missing)})"
            )
        self._stats_lock = threading.Lock()
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0
        self._build()

    # ------------------------------------------------------------ lifecycle
    def _build(self) -> None:
        """Allocate the fleet and program every tenant onto it."""
        children = self._noise_seq.spawn(self.placement.num_machines)
        self.machines = [
            CamMachine(
                self.spec, self.tech, noise_sigma=self.noise_sigma,
                noise_seed=child,
            )
            for child in children
        ]
        self._machine_locks = [threading.Lock() for _ in self.machines]
        self.sessions: List[QuerySession] = []
        self._tenant_sessions: Dict[str, QuerySession] = {}
        # Per-tenant accumulated traffic, in the same lane shape the
        # serving layer keeps per replica (setup charged once via the
        # session's tenant-scoped baseline).
        self._lanes: Dict[str, LaneStats] = {}
        for assignment in self.placement.assignments:
            tenant = self.tenants[assignment.tenant_id]
            machine = self.machines[assignment.machine_index]
            if machine.banks_used != assignment.bank_offset:
                raise SessionError(
                    f"placement drift: tenant {tenant.tenant_id!r} "
                    f"planned at bank {assignment.bank_offset} but the "
                    f"machine holds {machine.banks_used} banks"
                )
            session = QuerySession(
                tenant.module,
                self.spec,
                self.tech,
                tenant.parameters,
                tenant.program,
                func_name=tenant.func_name,
                noise_sigma=self.noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
                machine=machine,
                fused=self.fused,
            )
            if session.banks_used != assignment.banks:
                raise SessionError(
                    f"placement drift: tenant {tenant.tenant_id!r} "
                    f"allocated {session.banks_used} bank(s), planned "
                    f"{assignment.banks}"
                )
            self.sessions.append(session)
            self._tenant_sessions[tenant.tenant_id] = session
            self._lanes[tenant.tenant_id] = LaneStats(session)

    def reset(self) -> None:
        """Evict and re-place: fresh machines, every tenant re-programmed.

        The multi-tenant analogue of a kernel's session reset — the next
        batch of any tenant hits a newly programmed fleet, and all
        accumulated per-tenant accounting starts over.  Safe against
        concurrent :meth:`run_batch`: every machine lock is held for the
        rebuild, so in-flight batches drain first, and a batch that
        loses the race returns correct results but is not accounted on
        the fresh fleet.
        """
        locks = self._machine_locks
        for lock in locks:
            lock.acquire()
        try:
            with self._stats_lock:
                self._build()
                self.last_report = None
                self.batches_run = 0
        finally:
            for lock in reversed(locks):
                lock.release()

    def clone(self, noise_seed=None) -> "MultiTenantSession":
        """An independent replica of the whole multi-tenant fleet.

        Reuses every tenant's compiled artifacts and the placement plan
        untouched; only fresh machines are allocated and programmed —
        what a second hardware copy of the deployment genuinely costs.
        """
        return MultiTenantSession(
            [self.tenants[tid] for tid in self._tenant_order],
            self.spec,
            self.tech,
            max_machines=self.max_machines,
            placement=self.placement,
            noise_sigma=self.noise_sigma,
            noise_seed=(
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            ),
            fused=self.fused,
        )

    # ------------------------------------------------------------ topology
    @property
    def tenant_ids(self) -> List[str]:
        return list(self._tenant_order)

    @property
    def num_tenants(self) -> int:
        return len(self.tenants)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def tenant_features(self) -> Dict[str, int]:
        """Query width each tenant serves (engines validate submits)."""
        return {
            tid: tenant.plan.features
            for tid, tenant in self.tenants.items()
        }

    # ------------------------------------------------------- protocol bits
    def tenant_widths(self) -> Dict[str, int]:
        """Per-tenant query widths (multi-tenant backend discriminator)."""
        return self.tenant_features

    def query_width(self, tenant: Optional[str] = None) -> int:
        """The feature dimension ``tenant``'s queries must have; a
        multi-tenant backend needs the tenant named."""
        if tenant is None:
            raise SessionError(
                "this backend serves a multi-tenant fleet; name the "
                f"tenant (one of {sorted(self.tenants)})"
            )
        self.session_of(tenant)  # validate the id
        return self.tenants[tenant].plan.features

    def session_of(self, tenant_id: str) -> QuerySession:
        """The live session serving ``tenant_id`` (KeyError-safe)."""
        try:
            return self._tenant_sessions[tenant_id]
        except KeyError:
            raise SessionError(
                f"no tenant {tenant_id!r} on this fleet; tenants: "
                f"{sorted(self.tenants)}"
            ) from None

    #: Aggregate machine view (:class:`MachineGroupView`): counters and
    #: silicon span the whole fleet — the shared fabric, counted once.
    _group_noun = "fleet"

    # ------------------------------------------------------------- queries
    def run_batch(self, queries, tenant: Optional[str] = None):
        """Serve one ``B×D`` batch for one tenant on the shared fleet.

        Protocol form: ``run_batch(queries, tenant="t0")``.  The legacy
        positional form ``run_batch("t0", queries)`` keeps working (the
        string-first argument disambiguates).  Returns
        ``[values, indices]`` bitwise identical (noise disabled) to the
        tenant's kernel running alone on a private machine.  The
        tenant's machine is held for the duration (same-machine tenants
        serialize, like the hardware); ``last_report`` carries this
        batch's tenant-scoped report.
        """
        if isinstance(queries, str):  # legacy (tenant_id, queries) order
            queries, tenant = tenant, queries
        if tenant is None:
            raise SessionError(
                "a multi-tenant batch must name its tenant: "
                "run_batch(queries, tenant=...)"
            )
        tenant_id = tenant
        with self._stats_lock:
            # Snapshot the generation: a reset() racing this batch swaps
            # session/lock/lanes wholesale, and the stale batch must not
            # pollute the fresh fleet's accounting.
            session = self.session_of(tenant_id)
            index = self.placement.for_tenant(tenant_id).machine_index
            lock = self._machine_locks[index]
            lanes = self._lanes
        with lock:
            outputs = session.run_batch(queries)
            report = session.last_report
        with self._stats_lock:
            if self._lanes is lanes:
                self._lanes[tenant_id].add(report)
                self.last_report = report
                self.batches_run += 1
        return outputs

    # -------------------------------------------------------------- report
    def tenant_report(self, tenant_id: str) -> ExecutionReport:
        """Accumulated per-tenant report: the tenant's queries, energy
        and latency over *its own banks only*, setup charged once."""
        self.session_of(tenant_id)  # validate the id
        with self._stats_lock:
            return self._lanes[tenant_id].report()

    def machine_report(self, machine_index: int) -> ExecutionReport:
        """One fleet machine's view: its tenants combined serially."""
        assignments = self.placement.machine_tenants(machine_index)
        if not assignments:
            raise KeyError(f"no machine {machine_index} in the fleet")
        with self._stats_lock:
            lanes = [self._lanes[a.tenant_id].report() for a in assignments]
        return combine_serial_reports(lanes)

    def report(self) -> ExecutionReport:
        """The fleet deployment report.

        Tenants of one machine combine **serially** (the shared fabric
        serves one batch at a time; its banks are counted once) and the
        fleet's machines combine **concurrently** (wall time is the
        busiest machine).  Per-tenant energies sum exactly to this
        report's energy — bank-granular placement partitions the fabric,
        so there is no shared residual term.
        """
        return merge_concurrent_reports(
            [
                self.machine_report(index)
                for index in range(self.num_machines)
            ]
        )

    def setup_report(self) -> ExecutionReport:
        """A zero-query report of the fleet's programming cost and
        silicon (the starting point of a replica lane)."""
        write = sum(s.setup_energy_pj for s in self.sessions)
        setup = max(
            sum(
                self._tenant_sessions[a.tenant_id].setup_latency_ns
                for a in self.placement.machine_tenants(index)
            )
            for index in range(self.num_machines)
        )
        return ExecutionReport(
            setup_latency_ns=setup,
            energy=EnergyBreakdown(write=write),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            queries=0,
            spec=self.spec,
        )
