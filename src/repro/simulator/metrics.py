"""Execution metrics: latency, energy, power, EDP.

Latency is tracked by the executor's timing model (ns); the machine
accumulates dynamic energy (pJ) per component and computes standby energy
from the powered-instance counts when an execution finishes.

Multi-machine (sharded) executions combine per-machine reports with
:func:`aggregate_reports`: machines work in parallel, so latencies take
the max over shards (plus an explicit cross-shard merge cost) while
energy, allocation and work counts sum — N machines burn N machines'
worth of energy and silicon.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


@dataclass
class EnergyBreakdown:
    """Dynamic energy per component, in pJ."""

    search: float = 0.0
    read: float = 0.0
    merge: float = 0.0
    host: float = 0.0
    write: float = 0.0
    standby: float = 0.0

    @property
    def query_total(self) -> float:
        """Energy attributable to query execution (excludes writes)."""
        return self.search + self.read + self.merge + self.host + self.standby

    @property
    def total(self) -> float:
        return self.query_total + self.write

    def as_dict(self) -> Dict[str, float]:
        return {
            "search": self.search,
            "read": self.read,
            "merge": self.merge,
            "host": self.host,
            "write": self.write,
            "standby": self.standby,
        }


@dataclass
class ExecutionReport:
    """Metrics of one compiled-kernel execution (one query batch).

    Latencies in ns, energies in pJ; helpers convert to derived units.
    """

    query_latency_ns: float = 0.0
    setup_latency_ns: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    banks_used: int = 0
    mats_used: int = 0
    arrays_used: int = 0
    subarrays_used: int = 0
    searches: int = 0
    search_cycles: int = 0
    queries: int = 1

    @property
    def query_energy_pj(self) -> float:
        """Per-execution query energy (pJ), excluding data loading."""
        return self.energy.query_total

    @property
    def power_mw(self) -> float:
        """Average power during query execution (mW).

        pJ/ns = mW, so the ratio is direct.
        """
        if self.query_latency_ns <= 0:
            return 0.0
        return self.energy.query_total / self.query_latency_ns

    @property
    def edp(self) -> float:
        """Energy-delay product in nJ·s per query batch."""
        return (self.energy.query_total * 1e-3) * (self.query_latency_ns * 1e-9)

    @property
    def per_query_latency_ns(self) -> float:
        """Mean latency per query; 0.0 for a zero-query execution."""
        if self.queries <= 0:
            return 0.0
        return self.query_latency_ns / self.queries

    @property
    def per_query_energy_pj(self) -> float:
        """Mean query energy per query; 0.0 for a zero-query execution."""
        if self.queries <= 0:
            return 0.0
        return self.energy.query_total / self.queries

    @property
    def throughput_qps(self) -> float:
        """Steady-state queries per second over the query clock.

        Setup (pattern programming) is excluded: it is charged once per
        session, amortized away by batching (`QuerySession.run_batch`).
        """
        if self.query_latency_ns <= 0 or self.queries <= 0:
            return 0.0
        return self.queries / (self.query_latency_ns * 1e-9)

    def scaled(self, n_queries: int) -> "ExecutionReport":
        """Extrapolate a single-query report to ``n_queries`` sequential
        queries (writes are not repeated)."""
        e = self.energy
        return ExecutionReport(
            query_latency_ns=self.query_latency_ns * n_queries,
            setup_latency_ns=self.setup_latency_ns,
            energy=EnergyBreakdown(
                search=e.search * n_queries,
                read=e.read * n_queries,
                merge=e.merge * n_queries,
                host=e.host * n_queries,
                write=e.write,
                standby=e.standby * n_queries,
            ),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            searches=self.searches * n_queries,
            search_cycles=self.search_cycles,
            queries=self.queries * n_queries,
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"latency={self.query_latency_ns:.2f}ns "
            f"energy={self.energy.query_total:.2f}pJ "
            f"power={self.power_mw:.3f}mW "
            f"subarrays={self.subarrays_used} banks={self.banks_used}"
        )


def aggregate_reports(
    reports: Sequence[ExecutionReport],
    merge_latency_ns: float = 0.0,
    merge_energy_pj: float = 0.0,
    queries: Optional[int] = None,
) -> ExecutionReport:
    """Combine per-shard reports into one honest multi-machine report.

    Shards run on separate machines in parallel, so latencies take the
    **max** over shards (plus the cross-shard merge cost, charged to
    latency and host energy) and energies, allocation counts and search
    totals **sum**; ``search_cycles`` stays a max (the busiest subarray
    anywhere).  ``queries`` defaults to the first shard's count (every
    shard sees the same batch).  Used by
    :class:`repro.runtime.sharding.ShardedSession` and the sharded
    pattern matcher.
    """
    if not reports:
        raise ValueError("aggregate_reports needs at least one shard report")
    energy = EnergyBreakdown()
    for report in reports:
        for key, value in report.energy.as_dict().items():
            setattr(energy, key, getattr(energy, key) + value)
    energy.host += merge_energy_pj
    return ExecutionReport(
        query_latency_ns=max(r.query_latency_ns for r in reports)
        + merge_latency_ns,
        setup_latency_ns=max(r.setup_latency_ns for r in reports),
        energy=energy,
        banks_used=sum(r.banks_used for r in reports),
        mats_used=sum(r.mats_used for r in reports),
        arrays_used=sum(r.arrays_used for r in reports),
        subarrays_used=sum(r.subarrays_used for r in reports),
        searches=sum(r.searches for r in reports),
        search_cycles=max(r.search_cycles for r in reports),
        queries=queries if queries is not None else reports[0].queries,
    )
