"""Fig. 7 — validation of C4CAM against the hand-crafted mapping [22].

Paper setup: HDC on MNIST (8k dims), arrays of 32×C with C ∈
{16, 32, 64, 128}, 4 mats/bank, 4 arrays/mat, 8 subarrays/array, both
1-bit (TCAM) and 2-bit (MCAM) implementations.

Paper result: compiler-generated code deviates from the manual design by
0.9 % (latency) / 5.5 % (energy) geomean; latency grows with C (slower ML
discharge), energy shrinks with C (fewer peripherals); 2-bit costs more
than 1-bit.
"""

import math

import numpy as np
import pytest

from repro.arch import validation_spec
from repro.baselines import run_manual_similarity
from repro.compiler import C4CAMCompiler

from harness import print_series

COLUMNS = (16, 32, 64, 128)


def compiled_report(workload, cols, bits):
    spec = validation_spec(cols, bits_per_cell=bits)
    return workload.run(spec)


def manual_report(workload, cols, bits):
    spec = validation_spec(cols, bits_per_cell=bits)
    return run_manual_similarity(
        workload.model.prototypes, workload.queries, spec,
        k=1, metric="dot", largest=True,
    ).report


@pytest.fixture(scope="module")
def results(hdc_1bit, hdc_2bit):
    out = {}
    for bits, wl in ((1, hdc_1bit), (2, hdc_2bit)):
        for c in COLUMNS:
            out[("c4cam", bits, c)] = compiled_report(wl, c, bits)
            out[("manual", bits, c)] = manual_report(wl, c, bits)
    return out


def test_fig7a_latency(results):
    rows = []
    for src in ("c4cam", "manual"):
        for bits in (1, 2):
            rows.append((
                f"{src}-{bits}b",
                [results[(src, bits, c)].query_latency_ns for c in COLUMNS],
            ))
    print_series("Fig. 7a: validation latency (ns/query)",
                 [f"{c} cols" for c in COLUMNS], rows)

    # Latency grows with C for every series.
    for _label, series in rows:
        assert series == sorted(series)
    # 2-bit is slower than 1-bit.
    for src in ("c4cam", "manual"):
        for c in COLUMNS:
            assert results[(src, 2, c)].query_latency_ns > \
                results[(src, 1, c)].query_latency_ns


def test_fig7b_energy(results):
    rows = []
    for src in ("c4cam", "manual"):
        for bits in (1, 2):
            rows.append((
                f"{src}-{bits}b",
                [results[(src, bits, c)].energy.query_total for c in COLUMNS],
            ))
    print_series("Fig. 7b: validation energy (pJ/query)",
                 [f"{c} cols" for c in COLUMNS], rows)

    # Energy shrinks with C (fewer subarrays/peripherals).
    for _label, series in rows:
        assert series == sorted(series, reverse=True)
    # Binary is more energy efficient than multi-bit (paper §IV-B).
    for src in ("c4cam", "manual"):
        for c in COLUMNS:
            assert results[(src, 1, c)].energy.query_total < \
                results[(src, 2, c)].energy.query_total


def test_validation_deviation_geomean(results):
    """Compiler vs manual: small systematic deviation (paper: 0.9 %/5.5 %)."""
    lat_devs, en_devs = [], []
    for bits in (1, 2):
        for c in COLUMNS:
            comp = results[("c4cam", bits, c)]
            man = results[("manual", bits, c)]
            lat_devs.append(
                abs(man.query_latency_ns - comp.query_latency_ns)
                / comp.query_latency_ns
            )
            en_devs.append(
                abs(man.energy.query_total - comp.energy.query_total)
                / comp.energy.query_total
            )
    geo = lambda xs: math.exp(
        sum(math.log(max(x, 1e-9)) for x in xs) / len(xs)
    )
    print(f"\nvalidation deviation geomean: latency={geo(lat_devs):.3%} "
          f"energy={geo(en_devs):.3%} (paper: 0.9% / 5.5%)")
    assert geo(lat_devs) < 0.10
    assert geo(en_devs) < 0.10


def test_functional_equivalence(hdc_1bit):
    """Compiler and manual mapping return identical classifications."""
    spec = validation_spec(32)
    kernel_model, example = hdc_1bit.model.kernel(n_queries=1)
    kernel = C4CAMCompiler(spec).compile(kernel_model, example)
    _v, idx = kernel(hdc_1bit.queries)
    manual = run_manual_similarity(
        hdc_1bit.model.prototypes, hdc_1bit.queries, spec,
        k=1, metric="dot", largest=True,
    )
    np.testing.assert_array_equal(idx.ravel(), manual.indices.ravel())


def test_bench_compile_and_run(benchmark, hdc_1bit):
    """pytest-benchmark target: one compile+execute at the 32×64 point."""
    spec = validation_spec(64)
    benchmark.pedantic(
        lambda: hdc_1bit.run(spec), rounds=3, iterations=1, warmup_rounds=1
    )
