"""Integration tests: the IR at every stage matches the paper's figures.

Walks one kernel through the full pipeline, checking the structural
properties the paper illustrates (Fig. 4b, 5a-d, 6) and that intermediate
stages stay executable.
"""

import numpy as np
import pytest

import repro.frontend.torch_api as torch
from repro.arch import dse_spec, paper_spec
from repro.dialects import scf as scf_d
from repro.frontend import import_graph, placeholder, trace
from repro.ir import count, first, print_module, verify, walk
from repro.passes.pass_manager import PassManager
from repro.runtime.executor import Interpreter
from repro.transforms import (
    CimFuseOpsPass,
    CimPartitionPass,
    CimToCamPass,
    SimilarityMatchingPass,
    TorchToCimPass,
    plan_of,
    resolve_optimization,
)


@pytest.fixture()
def kernel_module(rng):
    stored = rng.choice([-1.0, 1.0], (10, 256)).astype(np.float32)

    class HdcSim(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
            return values, indices

    queries = rng.choice([-1.0, 1.0], (2, 256)).astype(np.float32)
    module = import_graph(trace(HdcSim(), [placeholder((2, 256))])).module
    return module, stored, queries


def expected(stored, queries):
    return (queries @ stored.T).argmax(axis=1)


class TestStageByStage:
    def test_stage0_torch_ir(self, kernel_module):
        """Fig. 4b: transpose + mm + constant + topk."""
        m, stored, queries = kernel_module
        names = [op.name for op in next(m.functions()).body.operations]
        assert names == [
            "torch.aten.transpose.int", "torch.aten.mm",
            "torch.constant.int", "torch.aten.topk", "func.return",
        ]
        out, _ = Interpreter(m).run_function("forward", [queries, stored])
        np.testing.assert_array_equal(out[1].ravel(), expected(stored, queries))

    def test_stage1_torch_to_cim(self, kernel_module):
        """Fig. 5a: one acquire/execute/release triple per op."""
        m, stored, queries = kernel_module
        PassManager([TorchToCimPass()]).run(m)
        assert count(m, name="cim.execute") == 3
        # Still executable on the host.
        out, _ = Interpreter(m).run_function("forward", [queries, stored])
        np.testing.assert_array_equal(out[1].ravel(), expected(stored, queries))

    def test_stage2_fusion(self, kernel_module):
        """Fig. 5b: one fused execute containing the whole dataflow."""
        m, stored, queries = kernel_module
        PassManager([TorchToCimPass(), CimFuseOpsPass()]).run(m)
        assert count(m, name="cim.execute") == 1
        ex = first(m, name="cim.execute")
        assert len(ex.body.operations) == 4  # 3 compute + yield
        out, _ = Interpreter(m).run_function("forward", [queries, stored])
        np.testing.assert_array_equal(out[1].ravel(), expected(stored, queries))

    def test_stage3_similarity(self, kernel_module):
        """Fig. 5c: the body collapses to one cim.similarity."""
        m, stored, queries = kernel_module
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass()]
        ).run(m)
        ex = first(m, name="cim.execute")
        assert [op.name for op in ex.body.operations] == [
            "cim.similarity", "cim.yield",
        ]
        out, _ = Interpreter(m).run_function("forward", [queries, stored])
        np.testing.assert_array_equal(out[1].ravel(), expected(stored, queries))

    def test_stage4_partition_plan(self, kernel_module):
        """Fig. 5d analogue: the plan tiles 256 features into 32-wide
        column slices."""
        m, _stored, _queries = kernel_module
        spec = paper_spec(rows=32, cols=32)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec)]
        ).run(m)
        sim = first(m, name="cim.similarity")
        plan = plan_of(sim)
        assert plan.col_tiles == 8 and plan.row_tiles == 1
        assert plan.subarrays == 8

    def test_stage5_cam_nest(self, kernel_module):
        """Fig. 6: nested loops with allocs at each level + device calls."""
        m, stored, queries = kernel_module
        spec = paper_spec(rows=32, cols=32)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec), CimToCamPass(spec)]
        ).run(m)
        verify(m)
        text = print_module(m)
        for marker in (
            "cam.alloc_bank", "cam.alloc_mat", "cam.alloc_array",
            "cam.alloc_subarray", "cam.write_value", "cam.search",
            "cam.read", "cam.merge_partial", "scf.parallel",
        ):
            assert marker in text, marker
        # Alloc ops sit inside the loop nest, like Fig. 6.
        alloc = first(m, name="cam.alloc_subarray")
        depth = 0
        parent = alloc.parent_op
        while parent is not None:
            if isinstance(parent, (scf_d.ForOp, scf_d.ParallelOp)):
                depth += 1
            parent = parent.parent_op
        assert depth == 4  # bank, mat, array, subarray loops

    def test_stage6_execution(self, kernel_module):
        m, stored, queries = kernel_module
        spec = paper_spec(rows=32, cols=32)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec), CimToCamPass(spec)]
        ).run(m)
        from repro.simulator import CamMachine

        machine = CamMachine(spec)
        out, report = Interpreter(m, machine).run_function(
            "forward", [queries, stored]
        )
        np.testing.assert_array_equal(out[1].ravel(), expected(stored, queries))
        assert report.queries == 2
        assert report.subarrays_used == 8


class TestStructuralConfigDifferences:
    def lower(self, rng, target, n=32, d=512):
        stored = rng.choice([-1.0, 1.0], (10, d)).astype(np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, x):
                o = self.weight.transpose(-2, -1)
                return torch.ops.aten.topk(torch.matmul(x, o), 1, largest=True)

        m = import_graph(trace(M(), [placeholder((1, d))])).module
        spec = dse_spec(n, target)
        config = resolve_optimization(spec)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec, config.use_density),
             CimToCamPass(spec, config)]
        ).run(m)
        return m

    def test_power_swaps_parallel_for_sequential(self, rng):
        base = self.lower(rng, "latency")
        power = self.lower(rng, "power")
        # Same total loops, different kinds.
        total = lambda m: count(m, name="scf.for") + count(m, name="scf.parallel")
        assert total(base) == total(power)
        assert count(power, name="scf.for") > count(base, name="scf.for")

    def test_density_unrolls_batches(self, rng):
        base = self.lower(rng, "latency", n=64)
        dens = self.lower(rng, "density", n=64)
        assert count(dens, name="cam.search") > count(base, name="cam.search")
        searches = list(walk(dens, name="cam.search"))
        row_begins = {op.row_begin for op in searches}
        assert len(row_begins) > 1  # distinct selective-search windows

    def test_ir_round_trips_after_lowering(self, rng):
        from repro.ir import parse_module

        m = self.lower(rng, "latency")
        text = print_module(m)
        m2 = parse_module(text)
        verify(m2)
        assert print_module(m2) == text


class TestMultiKernelModules:
    def test_two_functions_compile_independently(self, rng):
        """A module with two similarity kernels lowers both."""
        from repro.ir.module import ModuleOp

        stored = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, x):
                o = self.weight.transpose(-2, -1)
                return torch.ops.aten.topk(torch.matmul(x, o), 1, largest=True)

        m1 = import_graph(trace(M(), [placeholder((1, 64))]), name="a").module
        m2 = import_graph(trace(M(), [placeholder((1, 64))]), name="b").module
        combined = ModuleOp()
        for src in (m1, m2):
            fn = next(src.functions())
            fn.parent_block._remove(fn)
            combined.append(fn)
        spec = paper_spec()
        config = resolve_optimization(spec)
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass(),
             CimPartitionPass(spec), CimToCamPass(spec, config)]
        ).run(combined)
        assert count(combined, name="cam.search") >= 2
        assert combined.lookup_symbol("a") is not None
        assert combined.lookup_symbol("b") is not None
