"""Evaluation baselines: GPU cost model and hand-crafted CAM mapping."""

from .gpu import QUADRO_RTX_6000, GpuModel
from .manual import ManualResult, run_manual_similarity

__all__ = [
    "GpuModel",
    "ManualResult",
    "QUADRO_RTX_6000",
    "run_manual_similarity",
]
