"""CAM simulator substrate: functional + latency/energy modeling."""

from .analysis import (
    UtilizationStats,
    busy_histogram,
    energy_shares,
    format_report,
    ops_by_target,
    utilization,
)
from .cells import (
    DONT_CARE,
    compute_scores,
    dot_similarity,
    euclidean_sq_distance,
    hamming_distance,
    metric_prefers_larger,
    perfect_score,
    quantize,
)
from .machine import AllocationError, CamMachine
from .metrics import EnergyBreakdown, ExecutionReport, aggregate_reports
from .peripherals import (
    best_match,
    best_match_batch,
    exact_match,
    priority_encode,
    threshold_match,
)
from .subarray import SubarrayState
from .trace import Trace, TraceEvent

__all__ = [
    "DONT_CARE",
    "UtilizationStats",
    "busy_histogram",
    "energy_shares",
    "format_report",
    "ops_by_target",
    "utilization",
    "AllocationError",
    "CamMachine",
    "EnergyBreakdown",
    "ExecutionReport",
    "SubarrayState",
    "Trace",
    "TraceEvent",
    "aggregate_reports",
    "best_match",
    "best_match_batch",
    "compute_scores",
    "dot_similarity",
    "euclidean_sq_distance",
    "exact_match",
    "hamming_distance",
    "metric_prefers_larger",
    "perfect_score",
    "priority_encode",
    "quantize",
    "threshold_match",
]
