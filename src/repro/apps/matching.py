"""Exact and threshold pattern matching on CAM.

The paper's introduction motivates CAMs with *exact matching* workloads
(network security, data mining) and *approximate/threshold search*
(bioinformatics, genome analysis): a stored pattern "matches" when its
distance to the query is within a threshold.  This module provides a
pattern-matching store built directly on the simulator machine — the
runtime-library usage mode of a CAM (akin to DT2CAM's mapping tool, but
generic over patterns), complementing the compiler-driven similarity path.

Patterns may contain TCAM don't-care positions
(:data:`repro.simulator.cells.DONT_CARE`), enabling wildcard rules such as
packet classifiers.

A rule store larger than one bank-capped machine raises
:class:`~repro.transforms.partitioning.CapacityError`;
:class:`ShardedPatternMatcher` splits the rows across several machines
instead (same fan-out/merge model as
:class:`repro.runtime.sharding.ShardedSession`) and returns global
pattern ids.  Both matchers also serve asynchronously:
:meth:`PatternMatcher.serve` puts the replicated micro-batching engine
(:class:`repro.runtime.serving.ServingEngine`) in front of the store —
submit queries, receive futures of :class:`MatchResult` lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel
from repro.runtime.sharding import aggregate_reports, plan_shard_count, shard_sizes
from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport
from repro.simulator.peripherals import threshold_match
from repro.runtime.session import StoreOverflow
from repro.transforms.partitioning import (
    check_plan_capacity,
    compute_partition_plan,
)


@dataclass
class MatchResult:
    """One query's outcome: matching pattern ids and their distances."""

    indices: np.ndarray
    distances: np.ndarray

    @property
    def matched(self) -> bool:
        return self.indices.size > 0

    @property
    def first(self) -> int:
        """Priority-encoded first match (lowest pattern id), or -1."""
        return int(self.indices.min()) if self.matched else -1


class PatternMatcher:
    """A CAM-resident pattern store with exact/threshold lookup.

    Patterns are tiled over the hierarchy exactly like the compiler's
    partitioning (column tiles × row tiles); per-subarray Hamming partials
    are merged and thresholded — distance 0 is an exact match.
    """

    def __init__(
        self,
        patterns: np.ndarray,
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
    ):
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.float64))
        self.patterns = patterns
        self.spec = spec
        self.tech = tech
        n, d = patterns.shape
        if d % min(spec.cols, d) != 0 and d > spec.cols:
            raise ValueError(
                f"pattern width {d} must be a multiple of the subarray "
                f"width {spec.cols} (pad with don't-cares)"
            )
        self.plan = compute_partition_plan(n, d, 1, spec, use_density=False)
        # Overflowing a bank-capped machine fails loudly (CapacityError
        # with required vs. available rows) before any allocation.
        check_plan_capacity(self.plan, spec)
        self.machine = CamMachine(spec, tech)
        self.setup_time = 0.0
        self._sub_ids: List[int] = []
        self._place()
        self._time = 0.0
        self._queries = 0
        # Live-store bookkeeping: pattern ids are stable across
        # insert/delete — a deleted slot is masked out of every lookup
        # and reused by later inserts, so the store mutates with per-row
        # write energy instead of a re-program.
        self._capacity = self.plan.row_tiles * self.plan.row_tile
        self._window = self.plan.patterns   # scored row prefix
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._alive[: n] = True
        self._slot_ids = np.full(self._capacity, -1, dtype=np.int64)
        self._slot_ids[: n] = np.arange(n)
        self._slot_of = {i: i for i in range(n)}
        self._rows = {i: patterns[i].copy() for i in range(n)}
        self._next_id = n
        self._free: List[int] = []
        self._mutated = False

    def _place(self) -> None:
        plan, spec, m = self.plan, self.spec, self.machine
        for lin in range(plan.subarrays):
            if lin % spec.subarrays_per_bank == 0:
                bank = m.alloc_bank()
            if lin % spec.subarrays_per_mat == 0:
                mat = m.alloc_mat(bank)
            if lin % spec.subarrays_per_array == 0:
                array = m.alloc_array(mat)
            sub = m.alloc_subarray(array)
            self._sub_ids.append(sub)
            rp, cp = lin // plan.col_tiles, lin % plan.col_tiles
            tile = self.patterns[
                rp * plan.row_tile : (rp + 1) * plan.row_tile,
                cp * plan.col_tile : (cp + 1) * plan.col_tile,
            ]
            if tile.size:
                self.setup_time += m.write_value(sub, tile, at=self.setup_time)

    # ----------------------------------------------------------- mutations
    @property
    def pattern_count(self) -> int:
        """Live (non-deleted) patterns in the store."""
        return len(self._rows)

    def row_ids(self) -> List[int]:
        """Live pattern ids, ascending."""
        return sorted(self._rows)

    def _slot_tiles(self, slot: int):
        plan = self.plan
        rp, r = divmod(slot, plan.row_tile)
        d = self.patterns.shape[1]
        for cp in range(plan.col_tiles):
            c0 = cp * plan.col_tile
            yield self._sub_ids[rp * plan.col_tiles + cp], r, c0, \
                min(c0 + plan.col_tile, d)

    def insert(self, patterns: np.ndarray) -> List[int]:
        """Add rules to the live store; returns their stable ids.

        Deleted slots are reused first; past those, inserts extend into
        the machine's padded row capacity.  A full store raises
        :class:`~repro.runtime.session.StoreOverflow` — nothing is
        written.  Each insert charges one row write per column tile, not
        a re-program.
        """
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.float64))
        if patterns.shape[1] != self.patterns.shape[1]:
            raise ValueError(
                f"pattern width {patterns.shape[1]} does not match store "
                f"width {self.patterns.shape[1]}"
            )
        ids: List[int] = []
        for row in patterns:
            if self._free:
                slot = self._free.pop(0)
            elif self._window < self._capacity:
                slot = self._window
                self._window += 1
            else:
                raise StoreOverflow(
                    f"pattern store is full: {self._capacity} rows in use "
                    "and the machine cannot grow"
                )
            for sub, r, c0, c1 in self._slot_tiles(slot):
                self.setup_time += self.machine.write_value(
                    sub, row[c0:c1], row_offset=r, at=self.setup_time
                )
            pid = self._next_id
            self._next_id += 1
            self._alive[slot] = True
            self._slot_ids[slot] = pid
            self._slot_of[pid] = slot
            self._rows[pid] = row.copy()
            ids.append(pid)
        self._mutated = True
        return ids

    def delete(self, ids) -> None:
        """Tombstone rules by id; their slots are masked from every
        lookup and reused by later inserts."""
        ids = [int(i) for i in dict.fromkeys(np.atleast_1d(ids).tolist())]
        missing = [i for i in ids if i not in self._slot_of]
        if missing:
            raise KeyError(f"no stored pattern(s) with id(s) {missing}")
        for pid in ids:
            slot = self._slot_of.pop(pid)
            del self._rows[pid]
            self._alive[slot] = False
            self._slot_ids[slot] = -1
            for sub, r, _c0, _c1 in self._slot_tiles(slot):
                self.setup_time += self.machine.erase(
                    sub, row_offset=r, row_count=1, at=self.setup_time
                )
            self._free.append(slot)
        self._free.sort()
        self._mutated = True

    def update(self, pattern_id: int, pattern: np.ndarray) -> None:
        """Rewrite one rule in place (same id, per-row write energy)."""
        pattern_id = int(pattern_id)
        if pattern_id not in self._slot_of:
            raise KeyError(f"no stored pattern with id {pattern_id}")
        row = np.asarray(pattern, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.patterns.shape[1]:
            raise ValueError(
                f"pattern width {row.shape[0]} does not match store "
                f"width {self.patterns.shape[1]}"
            )
        slot = self._slot_of[pattern_id]
        for sub, r, c0, c1 in self._slot_tiles(slot):
            self.setup_time += self.machine.write_value(
                sub, row[c0:c1], row_offset=r, at=self.setup_time
            )
        self._rows[pattern_id] = row.copy()
        self._mutated = True

    # ------------------------------------------------------------- queries
    def lookup(self, query: np.ndarray, threshold: float = 0.0) -> MatchResult:
        """Find stored patterns within ``threshold`` Hamming distance.

        ``threshold=0`` is exact match (EX); larger thresholds give the
        TH scheme of paper §II-B.  Don't-care cells never mismatch.
        """
        return self.lookup_batch(
            np.asarray(query, dtype=np.float64).reshape(1, -1), threshold
        )[0]

    def lookup_batch(
        self, queries: np.ndarray, threshold: float = 0.0
    ) -> List[MatchResult]:
        """Vectorized :meth:`lookup` over a ``B×D`` query matrix.

        The whole batch streams through each subarray in one machine
        call (batched match-line computation); results come back per
        query.  Timing follows the program-once model: the batch
        occupies the machine for ``B ×`` the single-lookup latency.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.patterns.shape[1]:
            raise ValueError(
                f"query width {queries.shape[1]} does not match pattern "
                f"width {self.patterns.shape[1]}"
            )
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        plan, m = self.plan, self.machine
        m.begin_query()
        self._queries += n_queries
        t0 = self._time + self.tech.frontend_latency(self.spec)
        window = self._window
        scores = np.zeros((n_queries, window))
        phase = 0.0
        search_type = "exact" if threshold == 0.0 else "threshold"
        for lin, sub in enumerate(self._sub_ids):
            rp, cp = lin // plan.col_tiles, lin % plan.col_tiles
            row0 = rp * plan.row_tile
            if row0 >= window:
                continue   # tiles past the live row prefix hold no rules
            qslice = queries[:, cp * plan.col_tile : (cp + 1) * plan.col_tile]
            dur = m.search(
                sub, qslice, search_type=search_type, metric="hamming",
                row_count=plan.row_tile, at=t0,
            ) / n_queries
            phase = max(phase, dur)
            vals, _idx, rdur = m.read_batch(sub, plan.row_tile, at=t0 + dur)
            phase = max(phase, dur + rdur / n_queries)
            n = min(vals.shape[-1], window - row0)
            scores[:, row0 : row0 + n] += vals[:, :n]
            m.merge("subarray", n, at=t0 + phase, n_queries=n_queries)
        per_query = (
            self.tech.frontend_latency(self.spec) + phase
            + 3 * self.tech.merge_latency("array")
            + self.tech.host_topk_latency(window)
        )
        self._time += n_queries * per_query
        mask = threshold_match(scores, threshold, prefers_larger=False)
        mask &= self._alive[None, :window]
        results = []
        for i, row in enumerate(mask):
            hits = np.flatnonzero(row)
            ids = self._slot_ids[hits]
            order = np.argsort(ids)   # stable ids, ascending-id contract
            results.append(
                MatchResult(
                    indices=ids[order].astype(np.int64),
                    distances=scores[i][hits][order],
                )
            )
        return results

    def report(self) -> ExecutionReport:
        """Metrics over every lookup performed so far.

        ``queries`` is the true lookup count (possibly 0 — use the
        report's ``per_query_*`` helpers for guarded averages).
        """
        rep = self.machine.finish(self._time, self.setup_time)
        rep.queries = self._queries
        return rep

    def serve(
        self,
        threshold: float = 0.0,
        num_replicas: int = 1,
        max_batch: int = 32,
        max_wait: float = 0.002,
    ):
        """An async lookup engine over this rule store.

        Returns a :class:`~repro.runtime.serving.ServingEngine` whose
        ``submit(query)`` futures resolve to the request's list of
        :class:`MatchResult`\\ s (one per submitted row) — identical to
        :meth:`lookup_batch` on the same rows at the fixed
        ``threshold``.  ``num_replicas > 1`` programs additional
        matchers over the same patterns (this matcher is replica 0;
        don't run synchronous lookups on it while the engine is live)
        and load-balances micro-batches across them.
        """
        if num_replicas > 1 and self._mutated:
            raise ValueError(
                "cannot replicate a mutated matcher: fresh replicas would "
                "renumber pattern ids; serve with num_replicas=1 or "
                "replicate before mutating"
            )
        matchers = [self] + [
            type(self)(self.patterns, self.spec, self.tech)
            for _ in range(num_replicas - 1)
        ]
        return _serve_matchers(matchers, threshold, max_batch, max_wait)


class _MatcherReplica:
    """Adapts a pattern matcher to the serving engine's replica contract:
    ``run_batch`` at a fixed threshold, per-matcher ``report()``."""

    def __init__(self, matcher, threshold: float):
        self.matcher = matcher
        self.threshold = threshold
        #: Query width, so the engine can reject misfits at submit().
        self.features = matcher.patterns.shape[1]

    def run_batch(self, queries: np.ndarray) -> List[MatchResult]:
        return self.matcher.lookup_batch(queries, self.threshold)

    def report(self) -> ExecutionReport:
        return self.matcher.report()


def _serve_matchers(matchers, threshold, max_batch, max_wait):
    from repro.runtime.serving import ServingEngine

    return ServingEngine(
        [_MatcherReplica(m, threshold) for m in matchers],
        max_batch=max_batch,
        max_wait=max_wait,
        # lookup_batch returns one MatchResult per query row; a
        # request's slice is just the sub-list.
        split=lambda results, lo, hi: results[lo:hi],
    )


class ShardedPatternMatcher:
    """A pattern store spanning several machines (row sharding).

    When a rule set exceeds one bank-capped machine, the rows split into
    contiguous shards — one :class:`PatternMatcher` (own machine) each.
    Lookups fan out to every shard and merge: threshold matching is
    row-local, so the union of per-shard hits (local ids shifted by the
    shard row offset) is exactly the single-machine match set, in
    ascending global-id order.  ``num_shards=None`` auto-sizes to the
    smallest count that fits; machines run in parallel, so
    :meth:`report` takes max-over-shards latency plus one cross-machine
    combine hop per query, and sums energy/allocation.
    """

    def __init__(
        self,
        patterns: np.ndarray,
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
        num_shards: Optional[int] = None,
    ):
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.float64))
        self.patterns = patterns
        self.spec = spec
        self.tech = tech
        n, d = patterns.shape
        count = plan_shard_count(
            n, d, 1, spec, use_density=False, num_shards=num_shards
        )
        self.row_offsets: List[int] = []
        self.shards: List[PatternMatcher] = []
        offset = 0
        for rows in shard_sizes(n, count):
            self.row_offsets.append(offset)
            self.shards.append(
                PatternMatcher(patterns[offset : offset + rows], spec, tech)
            )
            offset += rows
        self._queries = 0
        self._merge_time = 0.0
        self._merge_energy = 0.0
        # Per-shard local id -> global id.  Initially gid = offset +
        # local; inserts keep ids globally unique and stable while slots
        # are reused inside whichever shard had room.
        self._gid_of: List[dict] = [
            {local: offset + local for local in range(s.patterns.shape[0])}
            for s, offset in zip(self.shards, self.row_offsets)
        ]
        self._next_gid = n
        self._mutated = False

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    # ----------------------------------------------------------- mutations
    @property
    def pattern_count(self) -> int:
        """Live patterns across all shards."""
        return sum(shard.pattern_count for shard in self.shards)

    def row_ids(self) -> List[int]:
        """Live global pattern ids, ascending."""
        out: List[int] = []
        for mapping in self._gid_of:
            out.extend(mapping.values())
        return sorted(out)

    def insert(self, patterns: np.ndarray) -> List[int]:
        """Add rules; returns stable global ids.

        Each row lands in the first shard with a free or padded slot;
        when every shard is full a fresh one-row shard (its own machine)
        is appended — the store grows, it never re-shards.
        """
        patterns = np.atleast_2d(np.asarray(patterns, dtype=np.float64))
        gids: List[int] = []
        for row in patterns:
            local = None
            for j, shard in enumerate(self.shards):
                try:
                    local = shard.insert(row)[0]
                    break
                except StoreOverflow:
                    continue
            else:
                shard = PatternMatcher(row[None, :], self.spec, self.tech)
                self.shards.append(shard)
                self.row_offsets.append(self._next_gid)
                self._gid_of.append({})
                j, local = len(self.shards) - 1, 0
            gid = self._next_gid
            self._next_gid += 1
            self._gid_of[j][local] = gid
            gids.append(gid)
        self._mutated = True
        return gids

    def delete(self, ids) -> None:
        """Tombstone rules by global id across shards."""
        ids = [int(i) for i in dict.fromkeys(np.atleast_1d(ids).tolist())]
        where = {}
        for j, mapping in enumerate(self._gid_of):
            for local, gid in mapping.items():
                where[gid] = (j, local)
        missing = [g for g in ids if g not in where]
        if missing:
            raise KeyError(f"no stored pattern(s) with id(s) {missing}")
        by_shard: dict = {}
        for gid in ids:
            j, local = where[gid]
            by_shard.setdefault(j, []).append(local)
            del self._gid_of[j][local]
        for j, locals_ in by_shard.items():
            self.shards[j].delete(locals_)
        self._mutated = True

    # ------------------------------------------------------------- queries
    def lookup(self, query: np.ndarray, threshold: float = 0.0) -> MatchResult:
        """Single-query :meth:`PatternMatcher.lookup` across all shards."""
        return self.lookup_batch(
            np.asarray(query, dtype=np.float64).reshape(1, -1), threshold
        )[0]

    def lookup_batch(
        self, queries: np.ndarray, threshold: float = 0.0
    ) -> List[MatchResult]:
        """Fan a ``B×D`` batch out to every shard; merge per query.

        Matches come back with *global* pattern ids; shard results
        concatenate in row-offset order, so ids stay ascending and
        :attr:`MatchResult.first` is still the priority-encoded lowest
        id.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        per_shard = [
            shard.lookup_batch(queries, threshold) for shard in self.shards
        ]
        self._queries += n_queries
        # One combine hop per query: the host ORs the shard match vectors
        # (a bank-level reduction across machines).
        self._merge_time += n_queries * self.tech.merge_latency("bank")
        self._merge_energy += n_queries * self.tech.merge_energy(
            "bank", self.patterns.shape[0]
        )
        merged = []
        for q in range(n_queries):
            indices = np.concatenate(
                [
                    np.array(
                        [mapping[int(l)] for l in results[q].indices],
                        dtype=np.int64,
                    )
                    for results, mapping in zip(per_shard, self._gid_of)
                ]
            )
            distances = np.concatenate(
                [results[q].distances for results in per_shard]
            )
            order = np.argsort(indices)   # ascending-global-id contract
            merged.append(
                MatchResult(
                    indices=indices[order].astype(np.int64),
                    distances=distances[order],
                )
            )
        return merged

    # -------------------------------------------------------------- report
    def report(self) -> ExecutionReport:
        """Aggregate metrics: parallel shards, honest multi-machine sums.

        Latency is the slowest shard plus the cross-machine combine;
        energy, hierarchy counts and searches sum over shards.
        """
        rep = aggregate_reports(
            [shard.report() for shard in self.shards],
            merge_latency_ns=self._merge_time,
            merge_energy_pj=self._merge_energy,
            queries=self._queries,
        )
        return rep

    def serve(
        self,
        threshold: float = 0.0,
        num_replicas: int = 1,
        max_batch: int = 32,
        max_wait: float = 0.002,
    ):
        """Async lookups over the sharded store; see
        :meth:`PatternMatcher.serve`.  Each replica is a full shard
        group (every replica holds all rows across its own machines)."""
        if num_replicas > 1 and self._mutated:
            raise ValueError(
                "cannot replicate a mutated matcher: fresh replicas would "
                "renumber pattern ids; serve with num_replicas=1 or "
                "replicate before mutating"
            )
        matchers = [self] + [
            ShardedPatternMatcher(
                self.patterns, self.spec, self.tech,
                num_shards=self.num_shards,
            )
            for _ in range(num_replicas - 1)
        ]
        return _serve_matchers(matchers, threshold, max_batch, max_wait)
