"""``func`` dialect: functions, returns and calls."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.attributes import StringAttr, SymbolRefAttr, TypeAttr
from repro.ir.block import Block
from repro.ir.operation import Operation, register_op
from repro.ir.types import FunctionType, Type
from repro.ir.value import BlockArgument, Value


@register_op
class FuncOp(Operation):
    """A named function with a single-region body.

    ``sym_name`` holds the symbol name and ``function_type`` the signature;
    the entry block carries one argument per input type.
    """

    OP_NAME = "func.func"

    def __init__(self, name: str = "", function_type: Optional[FunctionType] = None):
        function_type = function_type or FunctionType([], [])
        super().__init__(
            attributes={
                "sym_name": StringAttr(name),
                "function_type": TypeAttr(function_type),
            },
            regions=1,
        )
        self.regions[0].append(Block(function_type.inputs))

    @property
    def sym_name(self) -> str:
        return self.attributes["sym_name"].value

    @property
    def function_type(self) -> FunctionType:
        return self.attributes["function_type"].type

    @property
    def body(self) -> Block:
        """The entry block."""
        return self.regions[0].entry_block

    @property
    def arguments(self) -> List[BlockArgument]:
        return self.body.arguments

    def verify(self) -> None:
        ft = self.attributes.get("function_type")
        if not isinstance(ft, TypeAttr) or not isinstance(ft.type, FunctionType):
            raise ValueError("func.func requires a function_type attribute")
        if self.regions and self.regions[0].blocks:
            args = self.body.arguments
            if [a.type for a in args] != list(self.function_type.inputs):
                raise ValueError(
                    f"func.func @{self.sym_name}: entry block arguments do "
                    f"not match the function signature"
                )


@register_op
class ReturnOp(Operation):
    """Function terminator returning zero or more values."""

    OP_NAME = "func.return"
    IS_TERMINATOR = True

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__(operands=operands)


@register_op
class CallOp(Operation):
    """Direct call of a function symbol."""

    OP_NAME = "func.call"

    def __init__(
        self,
        callee: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
    ):
        super().__init__(
            operands=operands,
            result_types=result_types,
            attributes={"callee": SymbolRefAttr(callee)},
        )

    @property
    def callee(self) -> str:
        return self.attributes["callee"].name
