"""``torch`` dialect: the ATen subset the frontend emits.

Mirrors the entry point of the paper's pipeline (Fig. 4b): the PyTorch MLIR
converter produces these ops from TorchScript.  The paper extends the
upstream frontend with ``norm`` and ``topk`` — both are first-class here.

Tensors use the plain :class:`~repro.ir.types.TensorType` (the paper's
``!torch.vtensor`` carries the same shape/dtype payload).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.attributes import BoolAttr, IntegerAttr
from repro.ir.operation import Operation, register_op
from repro.ir.types import TensorType, Type, i1, i64
from repro.ir.value import Value


@register_op
class ConstantIntOp(Operation):
    """``torch.constant.int`` — an i64 scalar constant."""

    OP_NAME = "torch.constant.int"

    def __init__(self, value: int):
        super().__init__(
            result_types=[i64], attributes={"value": IntegerAttr(int(value))}
        )

    @property
    def value(self) -> int:
        return self.attributes["value"].value


@register_op
class ConstantBoolOp(Operation):
    """``torch.constant.bool`` — an i1 scalar constant."""

    OP_NAME = "torch.constant.bool"

    def __init__(self, value: bool):
        super().__init__(
            result_types=[i1], attributes={"value": BoolAttr(bool(value))}
        )

    @property
    def value(self) -> bool:
        return self.attributes["value"].value


@register_op
class TransposeIntOp(Operation):
    """``torch.aten.transpose.int`` — swap two dimensions."""

    OP_NAME = "torch.aten.transpose.int"

    def __init__(self, input: Value, dim0: int, dim1: int):
        in_type = input.type
        shape = list(in_type.shape)
        d0, d1 = dim0 % len(shape), dim1 % len(shape)
        shape[d0], shape[d1] = shape[d1], shape[d0]
        super().__init__(
            operands=[input],
            result_types=[TensorType(shape, in_type.element_type)],
            attributes={"dim0": IntegerAttr(dim0), "dim1": IntegerAttr(dim1)},
        )

    @property
    def dim0(self) -> int:
        return self.attributes["dim0"].value

    @property
    def dim1(self) -> int:
        return self.attributes["dim1"].value


def _matmul_result_type(lhs: Type, rhs: Type) -> TensorType:
    if lhs.shape[-1] != rhs.shape[-2 if len(rhs.shape) > 1 else 0]:
        raise ValueError(
            f"matmul contraction mismatch: {lhs} x {rhs}"
        )
    shape = list(lhs.shape[:-1]) + [rhs.shape[-1]]
    return TensorType(shape, lhs.element_type)


@register_op
class MmOp(Operation):
    """``torch.aten.mm`` — 2-D matrix multiply."""

    OP_NAME = "torch.aten.mm"

    def __init__(self, lhs: Value, rhs: Value):
        super().__init__(
            operands=[lhs, rhs],
            result_types=[_matmul_result_type(lhs.type, rhs.type)],
        )


@register_op
class MatmulOp(Operation):
    """``torch.aten.matmul`` — generalized matrix multiply."""

    OP_NAME = "torch.aten.matmul"

    def __init__(self, lhs: Value, rhs: Value):
        super().__init__(
            operands=[lhs, rhs],
            result_types=[_matmul_result_type(lhs.type, rhs.type)],
        )


@register_op
class SubOp(Operation):
    """``torch.aten.sub.Tensor`` — elementwise (broadcasting) subtract."""

    OP_NAME = "torch.aten.sub"

    def __init__(self, lhs: Value, rhs: Value):
        shape = _broadcast_shape(lhs.type.shape, rhs.type.shape)
        super().__init__(
            operands=[lhs, rhs],
            result_types=[TensorType(shape, lhs.type.element_type)],
        )


@register_op
class DivOp(Operation):
    """``torch.aten.div.Tensor`` — elementwise (broadcasting) divide.

    Accepts an optional second divisor (``lhs / rhs / rhs2``), matching
    the three-operand div of the cosine-similarity pattern.
    """

    OP_NAME = "torch.aten.div"

    def __init__(self, lhs: Value, rhs: Value, rhs2: Optional[Value] = None):
        shape = _broadcast_shape(lhs.type.shape, rhs.type.shape)
        operands = [lhs, rhs]
        if rhs2 is not None:
            shape = _broadcast_shape(shape, rhs2.type.shape)
            operands.append(rhs2)
        super().__init__(
            operands=operands,
            result_types=[TensorType(shape, lhs.type.element_type)],
        )


@register_op
class NormOp(Operation):
    """``torch.aten.norm`` — vector p-norm along ``dim``.

    Part of the paper's frontend extension (§III-C): upstream torch-mlir
    lacked this op, C4CAM adds it because it is the core primitive of
    Euclidean similarity search.
    """

    OP_NAME = "torch.aten.norm"

    def __init__(self, input: Value, p: int = 2, dim: int = -1, keepdim: bool = False):
        in_type = input.type
        d = dim % in_type.rank
        shape = [s for i, s in enumerate(in_type.shape) if i != d]
        if keepdim:
            shape = list(in_type.shape)
            shape[d] = 1
        super().__init__(
            operands=[input],
            result_types=[TensorType(shape, in_type.element_type)],
            attributes={
                "p": IntegerAttr(p),
                "dim": IntegerAttr(dim),
                "keepdim": BoolAttr(keepdim),
            },
        )

    @property
    def p(self) -> int:
        return self.attributes["p"].value

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value


@register_op
class TopkOp(Operation):
    """``torch.aten.topk`` — top-k values and indices along ``dim``.

    ``k`` is an SSA operand (a ``torch.constant.int``), matching the IR in
    paper Fig. 4b; ``dim``/``largest``/``sorted`` are attributes.  Also part
    of the paper's frontend extension.
    """

    OP_NAME = "torch.aten.topk"

    def __init__(
        self,
        input: Value,
        k: Value,
        k_static: int,
        dim: int = -1,
        largest: bool = True,
        sorted: bool = True,
    ):
        in_type = input.type
        d = dim % in_type.rank
        shape = list(in_type.shape)
        shape[d] = k_static
        values_t = TensorType(shape, in_type.element_type)
        indices_t = TensorType(shape, i64)
        super().__init__(
            operands=[input, k],
            result_types=[values_t, indices_t],
            attributes={
                "k": IntegerAttr(k_static),
                "dim": IntegerAttr(dim),
                "largest": BoolAttr(largest),
                "sorted": BoolAttr(sorted),
            },
        )

    @property
    def k(self) -> int:
        return self.attributes["k"].value

    @property
    def dim(self) -> int:
        return self.attributes["dim"].value

    @property
    def largest(self) -> bool:
        return self.attributes["largest"].value


def _broadcast_shape(a: Sequence[int], b: Sequence[int]) -> list:
    """NumPy-style broadcast of two static shapes."""
    out = []
    ra, rb = list(reversed(a)), list(reversed(b))
    for i in range(max(len(ra), len(rb))):
        da = ra[i] if i < len(ra) else 1
        db = rb[i] if i < len(rb) else 1
        if da != db and da != 1 and db != 1:
            raise ValueError(f"cannot broadcast shapes {tuple(a)} and {tuple(b)}")
        out.append(max(da, db))
    return list(reversed(out))


#: Ops the torch-to-cim conversion knows how to lower (paper §III-D).
CIM_COMPATIBLE_OPS = (
    "torch.aten.transpose.int",
    "torch.aten.mm",
    "torch.aten.matmul",
    "torch.aten.sub",
    "torch.aten.div",
    "torch.aten.norm",
    "torch.aten.topk",
)
