"""Batched query-session throughput (program once, query many).

The CAM is a program-once / query-many device; the legacy execution
model re-programmed every stored pattern and re-walked the IR for every
single query.  :class:`repro.runtime.session.QuerySession` amortizes the
setup across a whole batch and vectorizes the match-line computation,
so serving a 64-query batch must beat 64 sequential legacy calls by a
wide margin in wall-clock throughput while returning bitwise-identical
results.

Asserted: >= 5x wall-clock throughput at batch 64 (the PR's acceptance
floor — the vectorized path typically lands far above it), setup energy
charged once per session, and bitwise output equality.  The
``test_bench_*`` entries extend the existing pytest-benchmark
trajectory.
"""

import time

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder

from harness import print_series

# Wall-clock-sensitive: excluded from the deterministic CI tier
# (`-m "not benchmark"`); the benchmarks-smoke job runs it with floors.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

BATCH = 64
PATTERNS = 16
DIMS = 1024


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    stored = rng.choice([-1.0, 1.0], (PATTERNS, DIMS)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (BATCH, DIMS)).astype(np.float32)
    spec = paper_spec(rows=32, cols=32)
    compiler = C4CAMCompiler(spec)
    batched = compiler.compile(_dot_model(stored), [placeholder((1, DIMS))])
    legacy = compiler.compile(
        _dot_model(stored), [placeholder((1, DIMS))], cache_session=False
    )
    return dict(stored=stored, queries=queries, batched=batched,
                legacy=legacy)


def _run_sequential(kernel, queries):
    values, indices = [], []
    for q in queries:
        v, i = kernel(q[None, :])
        values.append(v)
        indices.append(i)
    return np.vstack(values), np.vstack(indices)


def test_batch_throughput_5x(workload):
    """One session batch beats 64 legacy per-call executions >= 5x."""
    batched, legacy = workload["batched"], workload["legacy"]
    queries = workload["queries"]

    # Warm both paths (session setup walk, numpy/JIT caches) before
    # taking wall-clock measurements.
    bv, bi = batched.run_batch(queries)
    sv, si = _run_sequential(legacy, queries[:2])

    t0 = time.perf_counter()
    bv, bi = batched.run_batch(queries)
    batch_s = time.perf_counter() - t0
    batch_report = batched.last_report

    t0 = time.perf_counter()
    sv, si = _run_sequential(legacy, queries)
    seq_s = time.perf_counter() - t0

    speedup = seq_s / batch_s
    print_series(
        f"batch throughput (B={BATCH}, {PATTERNS}x{DIMS})",
        ["wall s", "queries/s"],
        [
            ("sequential calls", [seq_s, BATCH / seq_s]),
            ("session batch", [batch_s, BATCH / batch_s]),
            ("speedup", [speedup, speedup]),
        ],
    )
    print(f"simulated throughput: {batch_report.throughput_qps:.3e} q/s")

    # Functional: bitwise identical to per-call execution (no noise).
    np.testing.assert_array_equal(bi, si)
    np.testing.assert_array_equal(bv, sv)
    # Accounting: setup charged once, true batch size reported.
    assert batch_report.queries == BATCH
    assert batch_report.energy.write == pytest.approx(
        legacy.last_report.energy.write
    )
    assert batch_report.query_latency_ns == pytest.approx(
        BATCH * legacy.last_report.query_latency_ns
    )
    assert batch_report.throughput_qps > 0
    # The acceptance floor.
    assert speedup >= 5.0, f"only {speedup:.1f}x over sequential calls"


def test_setup_amortizes_across_batches(workload):
    """Across many batches the machine is programmed exactly once."""
    batched = workload["batched"]
    queries = workload["queries"]
    session = batched.session()
    writes_before = session.machine.energy.write
    for _ in range(3):
        batched.run_batch(queries)
    assert session.machine.energy.write == writes_before
    assert session.batches_run >= 3


def test_bench_session_batch64(benchmark, workload):
    """BENCH trajectory: one 64-query batch on a live session."""
    batched, queries = workload["batched"], workload["queries"]
    batched.run_batch(queries)  # ensure the session is open
    benchmark.pedantic(
        lambda: batched.run_batch(queries),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_bench_sequential_calls64(benchmark, workload):
    """BENCH trajectory: the legacy 64x per-call baseline."""
    legacy, queries = workload["legacy"], workload["queries"]
    benchmark.pedantic(
        lambda: _run_sequential(legacy, queries),
        rounds=3, iterations=1, warmup_rounds=1,
    )
