"""Runtime: the IR interpreter, batched query sessions, sharded
multi-machine sessions and host reference semantics."""

from .executor import ExecutionError, Interpreter
from .session import QueryProgram, QuerySession, SessionError
from .sharding import (
    Shard,
    ShardedSession,
    ShardSet,
    aggregate_reports,
    build_shard_set,
    plan_shard_count,
    shard_sizes,
)
from . import values

__all__ = [
    "ExecutionError",
    "Interpreter",
    "QueryProgram",
    "QuerySession",
    "SessionError",
    "Shard",
    "ShardedSession",
    "ShardSet",
    "aggregate_reports",
    "build_shard_set",
    "plan_shard_count",
    "shard_sizes",
    "values",
]
