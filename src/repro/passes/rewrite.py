"""Pattern rewriting: declarative local IR transformations.

A :class:`RewritePattern` matches a single operation and, via the
:class:`PatternRewriter`, replaces or erases it.
:func:`apply_patterns_greedily` drives patterns to a fixed point, the same
contract as MLIR's greedy pattern rewriter.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.ir.builder import InsertionPoint, OpBuilder
from repro.ir.operation import Operation
from repro.ir.value import Value


class PatternRewriter(OpBuilder):
    """Builder handed to patterns; records whether the IR changed."""

    def __init__(self, root: Operation):
        super().__init__(InsertionPoint.before(root))
        self.root = root
        self.changed = False

    def insert(self, op: Operation) -> Operation:
        self.changed = True
        return super().insert(op)

    def replace_op(self, op: Operation, values: Sequence[Value]) -> None:
        """Replace ``op``'s results with ``values`` and erase it."""
        op.replace_with(list(values))
        self.changed = True

    def erase_op(self, op: Operation) -> None:
        """Erase an op with unused results."""
        op.erase()
        self.changed = True


class RewritePattern:
    """Base pattern: override :meth:`match_and_rewrite`.

    ``OP_NAME`` (optional) restricts the pattern to one operation name,
    letting the driver skip non-candidates cheaply.  ``BENEFIT`` orders
    patterns (higher first).
    """

    OP_NAME: Optional[str] = None
    BENEFIT: int = 1

    def match_and_rewrite(self, op: Operation, rewriter: PatternRewriter) -> bool:
        """Return True (and mutate via ``rewriter``) if the pattern applied."""
        raise NotImplementedError


def apply_patterns_greedily(
    root: Operation,
    patterns: Iterable[RewritePattern],
    max_iterations: int = 64,
) -> bool:
    """Apply ``patterns`` repeatedly until no pattern matches.

    Returns True when the IR changed.  Raises ``RuntimeError`` if a fixed
    point is not reached within ``max_iterations`` sweeps (a looping
    pattern is a bug worth failing loudly on).
    """
    pattern_list: List[RewritePattern] = sorted(
        patterns, key=lambda p: -p.BENEFIT
    )
    changed_any = False
    for _ in range(max_iterations):
        changed = False
        for op in list(root.walk()):
            if op.parent_block is None and op is not root:
                continue  # erased by an earlier pattern in this sweep
            for pattern in pattern_list:
                if pattern.OP_NAME is not None and op.name != pattern.OP_NAME:
                    continue
                rewriter = PatternRewriter(op)
                if pattern.match_and_rewrite(op, rewriter):
                    changed = True
                    break
        if not changed:
            return changed_any
        changed_any = True
    raise RuntimeError(
        f"pattern application did not converge in {max_iterations} sweeps"
    )


def erase_dead_ops(root: Operation, is_dead=None) -> int:
    """Erase side-effect-free ops whose results are all unused.

    Runs to a fixed point; returns the number of erased ops.
    """
    if is_dead is None:
        def is_dead(op: Operation) -> bool:
            return (
                not op.HAS_SIDE_EFFECTS
                and not op.IS_TERMINATOR
                and op.results
                and not any(r.has_uses for r in op.results)
            )

    erased_total = 0
    while True:
        erased = 0
        for op in list(root.walk(post_order=True)):
            if op is root or op.parent_block is None:
                continue
            if is_dead(op):
                op.erase()
                erased += 1
        if not erased:
            return erased_total
        erased_total += erased
