"""IR traversal helpers shared by analyses and passes."""

from __future__ import annotations

from typing import Iterator, Optional, Type as PyType

from .operation import Operation


def walk(
    root: Operation,
    op_class: Optional[PyType[Operation]] = None,
    name: Optional[str] = None,
) -> Iterator[Operation]:
    """Yield nested ops, optionally filtered by class and/or op name.

    Iterates pre-order over a snapshot of each block, so callers may erase
    or replace the yielded op.
    """
    for op in root.walk():
        if op_class is not None and not isinstance(op, op_class):
            continue
        if name is not None and op.name != name:
            continue
        yield op


def first(
    root: Operation,
    op_class: Optional[PyType[Operation]] = None,
    name: Optional[str] = None,
) -> Optional[Operation]:
    """The first matching nested op, or None."""
    for op in walk(root, op_class=op_class, name=name):
        return op
    return None


def count(
    root: Operation,
    op_class: Optional[PyType[Operation]] = None,
    name: Optional[str] = None,
) -> int:
    """Number of matching nested ops."""
    return sum(1 for _ in walk(root, op_class=op_class, name=name))


def parent_of_type(op: Operation, op_class: PyType[Operation]) -> Optional[Operation]:
    """The closest ancestor operation of ``op_class``, or None."""
    current = op.parent_op
    while current is not None:
        if isinstance(current, op_class):
            return current
        current = current.parent_op
    return None
