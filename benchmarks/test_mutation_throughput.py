"""Incremental mutation throughput (program the delta, not the store).

A live store absorbing churn has two options: re-program every pattern
from scratch (the program-once model's only verb) or program just the
touched rows through the mutable-store API
(:meth:`~repro.runtime.session.QuerySession.insert` /
:meth:`~repro.runtime.session.QuerySession.delete` /
:meth:`~repro.runtime.session.QuerySession.update`).  For a small delta
against a large store the incremental path must win by a wide margin in
wall clock while staying bitwise identical to the rebuilt deployment.

Asserted: >= 5x wall-clock for a 4-row insert vs. reset-and-reprogram
of the grown store (the PR's acceptance floor — the incremental path
typically lands far above it), fewer rows written than a full program,
bitwise output equality, and that tombstone density past
``compact_threshold`` actually triggers a compaction.  The
``test_bench_*`` entry extends the pytest-benchmark trajectory.
"""

import time

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder

from harness import print_series

# Wall-clock-sensitive: excluded from the deterministic CI tier
# (`-m "not benchmark"`); the benchmarks-smoke job runs it with floors.
pytestmark = [pytest.mark.benchmark, pytest.mark.slow]

PATTERNS = 192
DELTA = 4
DIMS = 512
BATCH = 4


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _compile(stored):
    compiler = C4CAMCompiler(paper_spec(rows=32, cols=32))
    return compiler.compile(_dot_model(stored), [placeholder((1, DIMS))])


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1234)
    stored = rng.choice([-1.0, 1.0], (PATTERNS, DIMS)).astype(np.float32)
    delta = rng.choice([-1.0, 1.0], (DELTA, DIMS)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (BATCH, DIMS)).astype(np.float32)
    return dict(stored=stored, delta=delta, queries=queries)


def test_incremental_insert_5x(workload):
    """A 4-row insert beats re-programming the grown store >= 5x."""
    stored, delta = workload["stored"], workload["delta"]
    queries = workload["queries"]

    incremental = _compile(stored)
    rebuilt = _compile(np.vstack([stored, delta]))
    # Warm both paths: programs the base store / the grown store once.
    incremental.run_batch(queries)
    rebuilt.run_batch(queries)

    # Timed: bringing the machine to the grown store — the incremental
    # path writes the 4 new rows, the baseline re-runs the full setup
    # walk.  Query serving afterwards is identical, so it stays untimed.
    t0 = time.perf_counter()
    ids = incremental.insert(delta)
    incr_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    rebuilt.reset()      # drops the session ...
    rebuilt.session()    # ... full setup walk programs every row again
    full_s = time.perf_counter() - t0

    iv, ii = incremental.run_batch(queries)
    rv, ri = rebuilt.run_batch(queries)

    speedup = full_s / incr_s
    print_series(
        f"mutation throughput ({DELTA}-row delta on {PATTERNS}x{DIMS})",
        ["wall s", "rows written"],
        [
            ("reset + reprogram", [full_s, rebuilt.session().rows_written]),
            ("incremental insert", [incr_s,
                                    incremental.session().rows_written]),
            ("speedup", [speedup, speedup]),
        ],
    )

    # Functional: the mutated store answers exactly like the rebuilt one.
    assert ids == list(range(PATTERNS, PATTERNS + DELTA))
    np.testing.assert_array_equal(ii, ri)
    np.testing.assert_array_equal(iv, rv)
    # Accounting: base program + delta stays under two full programs.
    assert (incremental.session().rows_written
            < 2 * rebuilt.session().rows_written)
    # The acceptance floor.
    assert speedup >= 5.0, f"only {speedup:.1f}x over reprogramming"


def test_compaction_triggers_past_threshold(workload):
    """Tombstone density > compact_threshold defragments the store."""
    stored = workload["stored"]
    queries = workload["queries"]
    kernel = _compile(stored)
    kernel.run_batch(queries)
    session = kernel.session()
    assert session.compactions == 0

    # Tombstone well past the default 0.5 density threshold.
    doomed = list(range(0, PATTERNS, 3)) + list(range(1, PATTERNS, 3))
    kernel.delete(doomed)
    assert session.compactions >= 1
    survivors = [i for i in range(PATTERNS) if i not in set(doomed)]
    assert kernel.row_ids() == survivors

    # Re-packed store still answers like a fresh deployment over the
    # survivors.
    want_v, want_i = _compile(stored[survivors]).run_batch(queries)
    got_v, got_i = kernel.run_batch(queries)
    np.testing.assert_array_equal(got_i, want_i)
    np.testing.assert_array_equal(got_v, want_v)


def test_bench_churn_round(benchmark, workload):
    """BENCH trajectory: one insert+delete churn round on a live store."""
    stored, delta = workload["stored"], workload["delta"]
    kernel = _compile(stored)
    kernel.run_batch(workload["queries"])  # ensure the session is open
    row = delta[:1]

    def churn():
        (new_id,) = kernel.insert(row)
        kernel.delete([new_id])

    benchmark.pedantic(churn, rounds=3, iterations=1, warmup_rounds=1)
