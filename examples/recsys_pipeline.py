#!/usr/bin/env python
"""Two-stage recommender on CAM banks — the motivation of paper §II-C.

Stage 1 (filtering) matches the user's context tags against per-item
filter signatures with a threshold Hamming search; stage 2 (ranking) runs
a dot-product similarity over item embeddings.  The stages live on
disjoint banks, so a request stream pipelines: throughput is set by the
slower stage while single-request latency is the sum.

Run:  python examples/recsys_pipeline.py

Expected output: the surviving candidate set after filtering, the
recommended item ids with their dot-product scores, and end-to-end vs.
pipelined-interval latency (interval < end-to-end), ending with ``OK``.
"""

import numpy as np

from repro.apps.recsys import RecSysPipeline
from repro.arch import paper_spec


def main():
    rng = np.random.default_rng(42)
    n_items, tag_bits, dims = 24, 64, 256

    # Binary filter signatures (e.g. category/region tags) and embeddings.
    item_filters = rng.choice([0.0, 1.0], (n_items, tag_bits))
    item_embeddings = rng.standard_normal((n_items, dims)).astype(np.float32)

    pipeline = RecSysPipeline(
        item_filters, item_embeddings,
        spec=paper_spec(rows=32, cols=64),
        top_k=8,
    )

    # A user whose context matches item 3's tags within distance 12.
    context = item_filters[3].copy()
    flips = rng.choice(tag_bits, size=6, replace=False)
    context[flips] = 1 - context[flips]
    user_embedding = item_embeddings[3] + 0.1 * rng.standard_normal(dims)

    rec = pipeline.recommend(context, user_embedding, filter_threshold=12.0)

    print(f"items passing the filter stage: {rec.candidates}/{n_items}")
    print(f"recommended item ids:           {rec.item_ids.tolist()}")
    print(f"scores:                         {np.round(rec.scores, 2).tolist()}")
    print(f"end-to-end latency:             {rec.latency_ns:.1f} ns")
    print(f"pipelined request interval:     {rec.throughput_interval_ns:.1f} ns")
    fb, rb = pipeline.banks_used()
    print(f"banks: {fb} (filter) + {rb} (ranking), independent")
    assert 3 in rec.item_ids, "expected the seeded item to be recommended"
    print("OK")


if __name__ == "__main__":
    main()
