"""IR construction helper: insertion points and typed op creation."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .block import Block
from .operation import Operation


class InsertionPoint:
    """Where newly created ops are placed: at block end or before an op."""

    def __init__(self, block: Block, anchor: Optional[Operation] = None):
        self.block = block
        self.anchor = anchor  # insert before this op; None = append

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        return cls(op.parent_block, op)

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        block = op.parent_block
        idx = block._index_of(op)
        nxt = block.operations[idx + 1] if idx + 1 < len(block.operations) else None
        return cls(block, nxt)

    def insert(self, op: Operation) -> Operation:
        if self.anchor is None:
            self.block.append(op)
        else:
            self.block.insert_before(self.anchor, op)
        return op


class OpBuilder:
    """Creates operations at a movable insertion point.

    Typical usage::

        builder = OpBuilder.at_end(func.body)
        c0 = builder.create(arith.ConstantOp, value=0)
        builder.insert(some_detached_op)
    """

    def __init__(self, insertion_point: Optional[InsertionPoint] = None):
        self.insertion_point = insertion_point

    @classmethod
    def at_end(cls, block: Block) -> "OpBuilder":
        return cls(InsertionPoint.at_end(block))

    @classmethod
    def before(cls, op: Operation) -> "OpBuilder":
        return cls(InsertionPoint.before(op))

    @classmethod
    def after(cls, op: Operation) -> "OpBuilder":
        return cls(InsertionPoint.after(op))

    def set_insertion_point_to_end(self, block: Block) -> None:
        self.insertion_point = InsertionPoint.at_end(block)

    def set_insertion_point_before(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.before(op)

    def set_insertion_point_after(self, op: Operation) -> None:
        self.insertion_point = InsertionPoint.after(op)

    @contextmanager
    def at(self, insertion_point: InsertionPoint):
        """Temporarily move the insertion point."""
        saved = self.insertion_point
        self.insertion_point = insertion_point
        try:
            yield self
        finally:
            self.insertion_point = saved

    def insert(self, op: Operation) -> Operation:
        """Insert a detached, already-constructed op."""
        if self.insertion_point is None:
            raise RuntimeError("builder has no insertion point")
        return self.insertion_point.insert(op)

    def create(self, op_class, *args, **kwargs) -> Operation:
        """Construct ``op_class(*args, **kwargs)`` and insert it."""
        op = op_class(*args, **kwargs)
        return self.insert(op)
