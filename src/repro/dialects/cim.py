"""``cim`` dialect: the generic compute-in-memory abstraction.

C4CAM extends the CIM abstraction of CINM [16] with the analyses needed for
CAM devices (paper §III-D1).  The programming model is:

* ``cim.acquire``  — allocate an accelerator, returning a device handle;
* ``cim.execute``  — a region of device-compatible ops bound to a handle;
* ``cim.release`` — free the handle.

Inside ``cim.execute`` bodies live device-agnostic compute ops
(``cim.matmul``, ``cim.topk``, ...), the fused ``cim.similarity`` op the
pattern matcher produces (Algorithm 1), and ``cim.merge_partial`` which
accumulates partial results created by compulsory partitioning.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.attributes import BoolAttr, IntegerAttr, StringAttr
from repro.ir.block import Block
from repro.ir.operation import Operation, register_op
from repro.ir.types import DeviceHandleType, TensorType, Type, i64
from repro.ir.value import Value

#: Distance/similarity metrics accepted by ``cim.similarity``.
SIMILARITY_METRICS = ("dot", "euclidean", "cosine")

#: Accumulation directions for partial-result merging.
MERGE_DIRECTIONS = ("horizontal", "vertical")


@register_op
class AcquireOp(Operation):
    """Allocate a CIM accelerator; returns an opaque device handle."""

    OP_NAME = "cim.acquire"
    HAS_SIDE_EFFECTS = True

    def __init__(self):
        super().__init__(result_types=[DeviceHandleType()])


@register_op
class ReleaseOp(Operation):
    """Release a device handle obtained from ``cim.acquire``."""

    OP_NAME = "cim.release"
    HAS_SIDE_EFFECTS = True

    def __init__(self, device: Value):
        super().__init__(operands=[device])

    def verify(self) -> None:
        if self.num_operands != 1 or not isinstance(
            self.operands[0].type, DeviceHandleType
        ):
            raise ValueError("cim.release expects a single device handle")


@register_op
class ExecuteOp(Operation):
    """A block of operations executed on one acquired device.

    Operands are the device handle followed by the tensors the body reads.
    The body block has one argument per input tensor and terminates with
    ``cim.yield``; results mirror the yielded values.
    """

    OP_NAME = "cim.execute"
    HAS_SIDE_EFFECTS = True

    def __init__(
        self,
        device: Value,
        inputs: Sequence[Value],
        result_types: Sequence[Type],
    ):
        super().__init__(
            operands=[device, *inputs],
            result_types=result_types,
            regions=1,
        )
        self.regions[0].append(Block([v.type for v in inputs]))

    @property
    def device(self) -> Value:
        return self.operands[0]

    @property
    def inputs(self) -> Sequence[Value]:
        return self.operands[1:]

    @property
    def body(self) -> Block:
        return self.regions[0].entry_block

    def verify(self) -> None:
        if self.num_operands < 1 or not isinstance(
            self.operands[0].type, DeviceHandleType
        ):
            raise ValueError("cim.execute: first operand must be a device handle")
        if not self.regions or self.regions[0].empty:
            raise ValueError("cim.execute: requires a body block")
        term = self.body.terminator
        if term is None or term.name != "cim.yield":
            raise ValueError("cim.execute: body must end with cim.yield")
        if [v.type for v in term.operands] != [r.type for r in self.results]:
            raise ValueError("cim.execute: yielded types do not match results")


@register_op
class YieldOp(Operation):
    """Terminator of a ``cim.execute`` body."""

    OP_NAME = "cim.yield"
    IS_TERMINATOR = True

    def __init__(self, operands: Sequence[Value] = ()):
        super().__init__(operands=operands)


# --------------------------------------------------------------------------
# Device-agnostic compute ops (lowered from torch by torch-to-cim).
# --------------------------------------------------------------------------


@register_op
class TransposeOp(Operation):
    """``cim.transpose`` — swap two dimensions of a tensor."""

    OP_NAME = "cim.transpose"

    def __init__(self, input: Value, dim0: int = -2, dim1: int = -1):
        shape = list(input.type.shape)
        d0, d1 = dim0 % len(shape), dim1 % len(shape)
        shape[d0], shape[d1] = shape[d1], shape[d0]
        super().__init__(
            operands=[input],
            result_types=[TensorType(shape, input.type.element_type)],
            attributes={"dim0": IntegerAttr(dim0), "dim1": IntegerAttr(dim1)},
        )


@register_op
class MatmulOp(Operation):
    """``cim.matmul`` — 2-D matrix multiply."""

    OP_NAME = "cim.matmul"

    def __init__(self, lhs: Value, rhs: Value):
        lt, rt = lhs.type, rhs.type
        if lt.shape[-1] != rt.shape[0]:
            raise ValueError(f"cim.matmul contraction mismatch: {lt} x {rt}")
        super().__init__(
            operands=[lhs, rhs],
            result_types=[
                TensorType([lt.shape[0], rt.shape[-1]], lt.element_type)
            ],
        )


@register_op
class SubOp(Operation):
    """``cim.sub`` — broadcasting elementwise subtract."""

    OP_NAME = "cim.sub"

    def __init__(self, lhs: Value, rhs: Value):
        from .torch import _broadcast_shape

        shape = _broadcast_shape(lhs.type.shape, rhs.type.shape)
        super().__init__(
            operands=[lhs, rhs],
            result_types=[TensorType(shape, lhs.type.element_type)],
        )


@register_op
class DivOp(Operation):
    """``cim.div`` — broadcasting elementwise divide.

    Supports the three-operand form ``lhs / rhs / rhs2`` of the cosine
    pattern (Algorithm 1: ``div(v4, v2, v1)``).
    """

    OP_NAME = "cim.div"

    def __init__(self, lhs: Value, rhs: Value, rhs2: Optional[Value] = None):
        from .torch import _broadcast_shape

        shape = _broadcast_shape(lhs.type.shape, rhs.type.shape)
        operands = [lhs, rhs]
        if rhs2 is not None:
            shape = _broadcast_shape(shape, rhs2.type.shape)
            operands.append(rhs2)
        super().__init__(
            operands=operands,
            result_types=[TensorType(shape, lhs.type.element_type)],
        )


@register_op
class NormOp(Operation):
    """``cim.norm`` — p-norm reduction along ``dim``."""

    OP_NAME = "cim.norm"

    def __init__(self, input: Value, p: int = 2, dim: int = -1, keepdim: bool = False):
        in_type = input.type
        d = dim % in_type.rank
        if keepdim:
            shape = list(in_type.shape)
            shape[d] = 1
        else:
            shape = [s for i, s in enumerate(in_type.shape) if i != d]
        super().__init__(
            operands=[input],
            result_types=[TensorType(shape, in_type.element_type)],
            attributes={
                "p": IntegerAttr(p),
                "dim": IntegerAttr(dim),
                "keepdim": BoolAttr(keepdim),
            },
        )


@register_op
class TopkOp(Operation):
    """``cim.topk`` — top-k selection along the last dimension."""

    OP_NAME = "cim.topk"

    def __init__(self, input: Value, k: Value, k_static: int, largest: bool = True):
        in_type = input.type
        shape = list(in_type.shape)
        shape[-1] = k_static
        super().__init__(
            operands=[input, k],
            result_types=[
                TensorType(shape, in_type.element_type),
                TensorType(shape, i64),
            ],
            attributes={
                "k": IntegerAttr(k_static),
                "largest": BoolAttr(largest),
            },
        )

    @property
    def k(self) -> int:
        return self.attributes["k"].value

    @property
    def largest(self) -> bool:
        return self.attributes["largest"].value


@register_op
class SimilarityOp(Operation):
    """``cim.similarity`` — fused similarity search (Algorithm 1 output).

    ``metric`` is one of :data:`SIMILARITY_METRICS`.  Operands are the
    stored patterns (``P×D``), the queries (``Q×D``) and the ``k`` constant;
    results are the top-k values (``Q×k``) and indices (``Q×k``), selecting
    the ``k`` most similar stored patterns per query.
    """

    OP_NAME = "cim.similarity"

    def __init__(
        self,
        metric: str,
        stored: Value,
        query: Value,
        k: Value,
        k_static: int,
        largest: Optional[bool] = None,
        result_types: Optional[Sequence[Type]] = None,
    ):
        if metric not in SIMILARITY_METRICS:
            raise ValueError(f"unknown similarity metric: {metric!r}")
        qrows = query.type.shape[0]
        if largest is None:
            # Dot/cosine: larger is more similar; Euclidean: smaller is.
            largest = metric != "euclidean"
        if result_types is None:
            result_types = [
                TensorType([qrows, k_static], query.type.element_type),
                TensorType([qrows, k_static], i64),
            ]
        super().__init__(
            operands=[stored, query, k],
            result_types=list(result_types),
            attributes={
                "metric": StringAttr(metric),
                "k": IntegerAttr(k_static),
                "largest": BoolAttr(largest),
            },
        )

    @property
    def metric(self) -> str:
        return self.attributes["metric"].value

    @property
    def stored(self) -> Value:
        return self.operands[0]

    @property
    def query(self) -> Value:
        return self.operands[1]

    @property
    def k(self) -> int:
        return self.attributes["k"].value

    @property
    def largest(self) -> bool:
        return self.attributes["largest"].value

    def verify(self) -> None:
        st, qt = self.operands[0].type, self.operands[1].type
        if st.shape[-1] != qt.shape[-1]:
            raise ValueError(
                f"cim.similarity: stored/query dim mismatch ({st} vs {qt})"
            )


@register_op
class ScoreOp(Operation):
    """``cim.score`` — per-pattern similarity scores (pre-top-k).

    Produced when partitioning splits a ``cim.similarity``: each partition
    computes partial scores over a slice of the feature dimension, which
    ``cim.merge_partial`` accumulates before the final top-k selection.
    Result is ``Q×P`` scores.
    """

    OP_NAME = "cim.score"

    def __init__(self, metric: str, stored: Value, query: Value):
        if metric not in SIMILARITY_METRICS:
            raise ValueError(f"unknown similarity metric: {metric!r}")
        patterns = stored.type.shape[0]
        qrows = query.type.shape[0]
        super().__init__(
            operands=[stored, query],
            result_types=[
                TensorType([qrows, patterns], query.type.element_type)
            ],
            attributes={"metric": StringAttr(metric)},
        )

    @property
    def metric(self) -> str:
        return self.attributes["metric"].value


@register_op
class MergePartialOp(Operation):
    """``cim.merge_partial`` — accumulate partial results.

    ``kind`` names the producing operation (e.g. ``"similarity dot"``),
    ``direction`` is ``horizontal`` (accumulate along the reduced feature
    dimension, i.e. add partial scores) or ``vertical`` (concatenate results
    of disjoint pattern sets).  Operands: accumulator, partial; result has
    the accumulator's type.
    """

    OP_NAME = "cim.merge_partial"

    def __init__(self, kind: str, direction: str, acc: Value, partial: Value):
        if direction not in MERGE_DIRECTIONS:
            raise ValueError(f"unknown merge direction: {direction!r}")
        super().__init__(
            operands=[acc, partial],
            result_types=[acc.type],
            attributes={
                "kind": StringAttr(kind),
                "direction": StringAttr(direction),
            },
        )

    @property
    def kind(self) -> str:
        return self.attributes["kind"].value

    @property
    def direction(self) -> str:
        return self.attributes["direction"].value


#: Torch op name -> cim op class for the torch-to-cim conversion.
TORCH_TO_CIM = {
    "torch.aten.transpose.int": TransposeOp,
    "torch.aten.mm": MatmulOp,
    "torch.aten.matmul": MatmulOp,
    "torch.aten.sub": SubOp,
    "torch.aten.div": DivOp,
    "torch.aten.norm": NormOp,
    "torch.aten.topk": TopkOp,
}
