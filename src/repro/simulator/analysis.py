"""Trace and report analysis: utilization, occupancy, energy breakdowns.

Utilities consumed by the ablation benchmarks and by users inspecting a
mapping — what fraction of the machine is doing useful work, where the
energy goes, how busy each subarray is.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

from repro.simulator.machine import CamMachine
from repro.simulator.metrics import ExecutionReport
from repro.simulator.trace import Trace


@dataclass(frozen=True)
class UtilizationStats:
    """How much of the allocated machine a kernel actually exercises."""

    subarrays_allocated: int
    subarrays_written: int
    rows_available: int
    rows_occupied: int
    cells_available: int
    cells_occupied: int

    @property
    def row_utilization(self) -> float:
        """Fraction of physically available rows holding patterns."""
        if self.rows_available == 0:
            return 0.0
        return self.rows_occupied / self.rows_available

    @property
    def cell_utilization(self) -> float:
        if self.cells_available == 0:
            return 0.0
        return self.cells_occupied / self.cells_available


def utilization(machine: CamMachine) -> UtilizationStats:
    """Measure array utilization — the metric cam-density optimizes."""
    spec = machine.spec
    written = 0
    rows_occupied = 0
    for sid in range(machine.subarrays_used):
        sub = machine.subarray(sid)
        if sub.valid_rows:
            written += 1
        rows_occupied += sub.valid_rows
    rows_available = machine.subarrays_used * spec.rows
    return UtilizationStats(
        subarrays_allocated=machine.subarrays_used,
        subarrays_written=written,
        rows_available=rows_available,
        rows_occupied=rows_occupied,
        cells_available=rows_available * spec.cols,
        cells_occupied=rows_occupied * spec.cols,
    )


def energy_shares(report: ExecutionReport) -> Dict[str, float]:
    """Per-component share of query energy (sums to 1.0)."""
    e = report.energy
    total = e.query_total
    if total <= 0:
        return {}
    return {
        "search": e.search / total,
        "read": e.read / total,
        "merge": e.merge / total,
        "host": e.host / total,
        "standby": e.standby / total,
    }


def busy_histogram(trace: Trace, bucket_ns: float = 1.0) -> List[int]:
    """Concurrent-operation histogram over time from a machine trace.

    Bucket ``i`` counts operations in flight during
    ``[i*bucket_ns, (i+1)*bucket_ns)``; useful for eyeballing how parallel
    a mapping really is.
    """
    if not trace.events:
        return []
    horizon = trace.makespan()
    n = max(1, int(horizon / bucket_ns) + 1)
    hist = [0] * n
    for event in trace.events:
        first = int(event.start_ns / bucket_ns)
        last = int(max(event.end_ns - 1e-12, event.start_ns) / bucket_ns)
        for i in range(first, min(last, n - 1) + 1):
            hist[i] += 1
    return hist


def ops_by_target(trace: Trace) -> Dict[str, int]:
    """Operation counts per machine target (subarray/host/levels)."""
    counts: Dict[str, int] = defaultdict(int)
    for event in trace.events:
        counts[event.target] += 1
    return dict(counts)


def format_report(report: ExecutionReport, machine: CamMachine = None) -> str:
    """Multi-line human-readable summary of an execution."""
    lines = [
        f"query latency : {report.query_latency_ns:.2f} ns "
        f"({report.queries} queries)",
        f"setup latency : {report.setup_latency_ns:.1f} ns",
        f"query energy  : {report.energy.query_total:.1f} pJ",
        f"power         : {report.power_mw:.3f} mW",
        f"EDP           : {report.edp:.3e} nJ*s",
        f"hierarchy     : {report.banks_used} banks / {report.mats_used} "
        f"mats / {report.arrays_used} arrays / {report.subarrays_used} "
        f"subarrays",
        f"searches      : {report.searches} "
        f"(max {report.search_cycles} per subarray)",
    ]
    shares = energy_shares(report)
    if shares:
        parts = ", ".join(f"{k} {v:.0%}" for k, v in shares.items())
        lines.append(f"energy shares : {parts}")
    if machine is not None:
        u = utilization(machine)
        lines.append(
            f"utilization   : {u.row_utilization:.1%} rows, "
            f"area {machine.chip_area_mm2():.3f} mm^2"
        )
    return "\n".join(lines)
