"""Structural IR verifier.

Checks the invariants every pass may assume:

* use-lists are consistent (``value.uses`` matches actual operand slots);
* every operand is defined before use (straight-line dominance within a
  block) or is visible from an enclosing region;
* terminators appear only in terminal position;
* op-specific ``verify()`` hooks pass.
"""

from __future__ import annotations

from typing import Set

from .block import Block
from .operation import Operation
from .value import Value


class VerificationError(ValueError):
    """Raised when the IR violates a structural invariant."""


def verify(op: Operation) -> None:
    """Verify ``op`` and everything nested within it."""
    _verify_op(op, visible=set())


def _verify_op(op: Operation, visible: Set[int]) -> None:
    for index, operand in enumerate(op.operands):
        if id(operand) not in visible:
            raise VerificationError(
                f"operand #{index} of {op.name} is not defined in an "
                f"enclosing scope (use before def or dangling value)"
            )
        _check_use_list(operand, op, index)
    try:
        op.verify()
    except VerificationError:
        raise
    except Exception as exc:
        raise VerificationError(f"{op.name}: {exc}") from exc
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block, op, visible)


def _verify_block(block: Block, parent: Operation, visible: Set[int]) -> None:
    scope = set(visible)
    for arg in block.arguments:
        if arg.block is not block:
            raise VerificationError("block argument owner mismatch")
        scope.add(id(arg))
    for i, op in enumerate(block.operations):
        if op.parent_block is not block:
            raise VerificationError(
                f"{op.name}: parent_block pointer is stale"
            )
        if op.IS_TERMINATOR and i != len(block.operations) - 1:
            raise VerificationError(
                f"terminator {op.name} is not the last op in its block"
            )
        _verify_op(op, scope)
        for res in op.results:
            if res.op is not op:
                raise VerificationError(f"{op.name}: result owner mismatch")
            scope.add(id(res))


def _check_use_list(value: Value, op: Operation, index: int) -> None:
    for use in value.uses:
        if use.owner is op and use.index == index:
            return
    raise VerificationError(
        f"use-list of a value consumed by {op.name}#{index} is missing "
        f"the corresponding use entry"
    )
