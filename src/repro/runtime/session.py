"""Batched query sessions: program the CAM once, stream many queries.

The paper's CAMs are program-once / query-many devices: pattern
programming is orders of magnitude slower than a search, so a serving
deployment writes the stored set once and answers queries from then on.
:class:`QuerySession` realises that usage mode for compiled kernels:

* **setup walk** — the lowered module is interpreted once, which
  allocates the hierarchy, programs every stored-pattern tile (charged to
  the setup clock) and measures the structural per-query latency from
  the IR's loop nest;
* **batched streaming** — :meth:`QuerySession.run_batch` answers a whole
  ``B×D`` query matrix against the *live* machine: match-line scores for
  the entire batch are computed in one vectorized step per subarray
  (2-D :func:`repro.simulator.cells.compute_scores`), partials are merged
  into a ``B×P`` score matrix and the per-query top-k is selected in one
  pass.

Timing follows the paper's model: a batch occupies the machine for
``B ×`` the structural per-query latency (queries stream through the
match lines serially), while the setup cost is charged once per session —
the amortization that related batching designs (AMU, batched far-memory
data planes) exploit.  Functionally the batched path is bitwise identical
to ``B`` sequential interpreter walks with noise disabled.

Stores are **mutable**: CAMs are write-in-place devices, so
:meth:`QuerySession.insert`, :meth:`~QuerySession.delete` and
:meth:`~QuerySession.update` program only the touched rows (charged per
row through the amortized-setup model, never a full re-program).
Deleted rows become *tombstones* — their valid bits are cleared so the
latch path reads them as the metric's no-match value — and a background
compaction re-packs survivors into the low slots once tombstone density
crosses :attr:`~QuerySession.compact_threshold`.  Surviving rows always
rank in insertion (id) order, which keeps every mutated session
bitwise identical to a session rebuilt from scratch over the surviving
patterns.

Batches are served **fused** by default (``fused=True``): the fixed
post-programming pipeline is traced once into a
:class:`~repro.runtime.fused.FusedPlan` (built lazily at the first
:meth:`~QuerySession.run_batch`, invalidated by every mutation and
``grow``) and replayed as one flat NumPy kernel — bitwise identical to
the per-stage walk in results and in energy/latency accounting.
``fused=False`` retains the unfused walk as the differential oracle,
and ``noise_sigma > 0`` bypasses the plan automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simulator.machine import CamMachine
from repro.simulator.metrics import EnergyBreakdown, ExecutionReport
from repro.transforms.partitioning import PartitionPlan

from .backend import ExecutionBackend, SessionError
from .executor import Interpreter
from .fused import build_fused_plan

__all__ = [
    "QueryProgram",
    "QuerySession",
    "SessionError",
    "StoreOverflow",
    "StoreState",
]


class StoreOverflow(SessionError):
    """The mutable store cannot grow on its current machine.

    Raised by :meth:`QuerySession.insert` when every slot is live and the
    machine cannot allocate another growth bank (the spec caps banks, or
    the mapping is density-stacked).  Higher layers recover instead of
    failing: a :class:`~repro.runtime.sharding.ShardedSession` splits off
    a new shard, a :class:`~repro.runtime.cluster.Cluster` re-places the
    tenant on a roomier machine.
    """


@dataclass(frozen=True)
class StoreState:
    """A portable snapshot of a mutable store: the surviving
    ``(id, pattern)`` rows in ascending-id order plus the id allocator
    position — everything :meth:`QuerySession.restore` needs to replay a
    mutated store onto a freshly programmed machine."""

    rows: Tuple[Tuple[int, np.ndarray], ...]
    next_id: int


@dataclass
class _RowGroup:
    """One row-tile's physical placement: the subarrays holding its
    column slices (ascending ``cp``), the first logical slot it backs
    and its row window."""

    subs: Tuple[int, ...]
    base_slot: int
    window: int


@dataclass(frozen=True)
class QueryProgram:
    """The query-phase structure of one lowered similarity kernel.

    Captured by the ``cim-to-cam`` pass when it emits the query nest;
    :class:`QuerySession` replays this structure directly against the
    machine for whole query batches instead of re-walking the IR per
    query.
    """

    plan: PartitionPlan
    metric: str        # cam-level metric (after CAM-type legalisation)
    k: int
    largest: bool      # post-legalisation sort direction
    #: The SSA values (values tensor, indices tensor) the lowering
    #: substituted for the similarity op's results.
    results: tuple = ()

    def matches_function(self, func) -> bool:
        """True when ``func`` returns exactly this program's (values,
        indices) — i.e. replaying the program reproduces the function.

        A model that reorders, post-processes or drops the similarity
        outputs must take the full interpreter walk instead.
        """
        if len(self.results) != 2:
            return False
        terminator = next(
            (op for op in func.body.operations if op.name == "func.return"),
            None,
        )
        if terminator is None:
            return False
        return list(terminator.operands) == list(self.results)

    def tiles(self) -> List[Tuple[int, int, Tuple[int, int]]]:
        """All placed tiles as ``(linear subarray, batch, (rp, cp))``."""
        out = []
        for lin in range(self.plan.subarrays):
            for batch in range(self.plan.batches):
                tile = self.plan.tile_of(lin, batch)
                if tile is not None:
                    out.append((lin, batch, tile))
        return out


class QuerySession(ExecutionBackend):
    """A live, programmed machine answering query batches.

    Owns a :class:`CamMachine` that is programmed exactly once (during
    construction) and kept alive across :meth:`run_batch` calls.  Device
    noise, when enabled, is decorrelated across batches by spawning a
    fresh child seed per call from one :class:`numpy.random.SeedSequence`
    — reproducible for an explicit ``noise_seed``, independent across
    calls.

    Passing an existing ``machine`` instead colocates this session on a
    *shared* machine (multi-tenant bank placement,
    :mod:`repro.runtime.placement`): the session programs its patterns
    into freshly allocated banks of that machine, remembers its subarray
    range (:attr:`subarray_base`) and from then on searches/reads only
    its own fabric.  Reports stay tenant-scoped — allocation counts,
    energy and standby cover this session's banks only, so a colocated
    tenant is charged exactly what it would be on a private machine.
    """

    def __init__(
        self,
        module,
        spec,
        tech,
        parameters: Sequence[np.ndarray],
        program: QueryProgram,
        func_name: str = "forward",
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
        machine: Optional[CamMachine] = None,
        compact_threshold: float = 0.5,
        fused: bool = True,
    ):
        self.module = module
        self.spec = spec
        self.tech = tech
        self.parameters = list(parameters)
        self.program = program
        self.func_name = func_name
        self.noise_sigma = float(noise_sigma)
        # noise_seed: an int, or a SeedSequence child handed down by the
        # owning kernel (keeps per-call decorrelation deterministic).
        self._noise_seq = (
            noise_seed
            if isinstance(noise_seed, np.random.SeedSequence)
            else np.random.SeedSequence(noise_seed)
        )
        self._owns_machine = machine is None
        if machine is None:
            machine = CamMachine(
                spec, tech, noise_sigma=noise_sigma,
                noise_seed=self._noise_seq.spawn(1)[0],
            )
        self.machine = machine
        #: First machine subarray belonging to this session (0 on a
        #: private machine; the shared-machine fill level when colocated).
        self.subarray_base = machine.subarrays_used
        self.last_report: Optional[ExecutionReport] = None
        # Full-precision (float64) *unclamped* scores of the last
        # batch's top-k rows (no WTA-window clamp, no float32 cast) — a
        # ShardedSession re-ranks shards on these and applies the WTA
        # clamp once against the global winner, so the merge matches a
        # single big machine bitwise.
        self.last_values: Optional[np.ndarray] = None
        self.last_indices: Optional[np.ndarray] = None
        self.batches_run = 0
        # Session-relative query clock: batches are stamped back-to-back
        # on the machine trace (coarse within-batch structure: searches,
        # then reads/merges, then the top-k).
        self._time = 0.0
        #: Serve batches through the fused plan when possible (see
        #: :mod:`repro.runtime.fused`); toggle off for the unfused
        #: oracle walk.  Results are bitwise identical either way.
        self.fused = bool(fused)
        #: Batches answered by the fused plan (vs. the unfused walk).
        self.fused_runs = 0
        # None = rebuild on next batch; False = this store cannot fuse.
        self._fused_plan = None
        self._program_machine()
        self._init_mutable_store(compact_threshold)

    def _init_mutable_store(self, compact_threshold: float) -> None:
        """Set up the slot directory over the freshly programmed tiles.

        Logical *slots* index rows across the session's row groups; each
        stored pattern gets a stable monotonically-increasing *id*.  The
        invariant every mutation preserves is that surviving slots in
        ascending order hold ascending ids — so the rank a top-k reports
        for a survivor equals its index in a store rebuilt from scratch.
        """
        plan = self.program.plan
        self.compact_threshold = float(compact_threshold)
        #: When set, :meth:`run_batch` selects this many candidates
        #: instead of the compiled ``program.k`` — a
        #: :class:`~repro.runtime.sharding.ShardedSession` pins it to the
        #: *global* k so a shard that grew past its compiled row count
        #: still surfaces enough candidates for the merge.
        self.serve_k: Optional[int] = None
        self.mutations = 0
        self.compactions = 0
        self._dead = 0
        self._growth_groups = 0
        #: Machine subarray ids of this session's tiles, in the linear
        #: (``rt``-major, ``cp``-minor) plan order.  Growth appends; on a
        #: shared machine the grown tail is not contiguous with the base.
        self._sub_ids = list(
            range(self.subarray_base, self.subarray_base + self.subarrays_used)
        )
        if plan.batches > 1:
            # Density stacking packs the whole pattern set into every
            # subarray's row space; the accumulator geometry is fixed, so
            # capacity is exactly the compiled pattern count.
            self._row_groups: List[_RowGroup] = []
            self._capacity = plan.patterns
        else:
            groups = []
            base_slot = 0
            for rt in range(plan.row_tiles):
                subs = tuple(
                    self._sub_ids[rt * plan.col_tiles + cp]
                    for cp in range(plan.col_tiles)
                )
                groups.append(_RowGroup(subs, base_slot, plan.row_tile))
                base_slot += plan.row_tile
            self._row_groups = groups
            self._capacity = base_slot
        self._alive = np.zeros(self._capacity, dtype=bool)
        self._alive[: plan.patterns] = True
        self._slot_ids: List[int] = [-1] * self._capacity
        for slot in range(plan.patterns):
            self._slot_ids[slot] = slot
        self._id_to_slot = {i: i for i in range(plan.patterns)}
        self._next_slot = plan.patterns
        self._next_id = plan.patterns
        # The stored-pattern matrix among the kernel parameters (host
        # copy of every live row, for compaction moves and replay).
        self._store_index = next(
            (
                i
                for i, p in enumerate(self.parameters)
                if getattr(p, "shape", None) == (plan.patterns, plan.features)
            ),
            None,
        )
        if self._store_index is not None:
            store = np.asarray(
                self.parameters[self._store_index], dtype=np.float64
            )
            self._rows = {i: store[i].copy() for i in range(plan.patterns)}
        else:
            self._rows = {}

    # ------------------------------------------------------------ lifecycle
    def _program_machine(self) -> None:
        """One interpreter walk: allocate, program, measure the clock.

        The walk runs the traced batch of zero queries through the full
        lowered module.  Pattern writes land on the machine (they are the
        point); the structural per-query latency is read off the report;
        query-side counters are then reset so batch reports account only
        their own work.
        """
        func = self.module.lookup_symbol(self.func_name)
        if func is None:
            raise SessionError(f"no function named {self.func_name!r}")
        args = func.body.arguments
        n_inputs = len(args) - len(self.parameters)
        if n_inputs < 0:
            raise SessionError("module has fewer arguments than parameters")
        dummies = [
            np.zeros(arg.type.shape, dtype=np.float64)
            for arg in args[:n_inputs]
        ]
        machine = self.machine
        write_before = machine.energy.write
        rows_before = machine.rows_written
        counts_before = (
            machine.banks_used,
            machine.mats_used,
            machine.arrays_used,
            machine.subarrays_used,
        )
        interpreter = Interpreter(
            self.module, machine, subarray_base=self.subarray_base
        )
        _outputs, report = interpreter.run_function(
            self.func_name, dummies + self.parameters
        )
        self.setup_latency_ns = report.setup_latency_ns
        # Setup cost and allocation are *this session's* share: on a
        # shared machine the deltas scope reports to the tenant's banks;
        # on a private machine they equal the machine totals.
        self.setup_energy_pj = machine.energy.write - write_before
        self.rows_written = machine.rows_written - rows_before
        self.banks_used = machine.banks_used - counts_before[0]
        self.mats_used = machine.mats_used - counts_before[1]
        self.arrays_used = machine.arrays_used - counts_before[2]
        self.subarrays_used = machine.subarrays_used - counts_before[3]
        #: First machine array belonging to this session (scopes the
        #: standby duty to the tenant's own occupancy).
        self.array_base = counts_before[2]
        self.per_query_latency_ns = report.per_query_latency_ns
        self.machine.reset_query_state()

    def clone(self, noise_seed=None) -> "QuerySession":
        """An independent replica of this session: same compiled module,
        fresh machine.

        Reuses every compiled artifact (lowered module, partition plan,
        query program, stored parameters) — nothing is re-traced or
        re-lowered — and only re-runs the setup walk to allocate and
        program a new machine, which a hardware replica genuinely needs.
        Device noise on the clone decorrelates from the parent by
        default (a fresh child of the parent's seed sequence); pass
        ``noise_seed`` for an explicit stream.  A mutated store is
        replayed onto the clone (incremental writes over the freshly
        programmed base), so the clone answers queries identically.
        """
        session = QuerySession(
            self.module,
            self.spec,
            self.tech,
            self.parameters,
            self.program,
            func_name=self.func_name,
            noise_sigma=self.noise_sigma,
            noise_seed=(
                self._noise_seq.spawn(1)[0] if noise_seed is None
                else noise_seed
            ),
            compact_threshold=self.compact_threshold,
            fused=self.fused,
        )
        if self.mutations or self.compactions:
            session.restore(self.store_state())
        return session

    def reset(self) -> None:
        """Clear query-side state (latches, counters); patterns survive.

        On a shared (multi-tenant) machine only this session's
        bookkeeping is dropped — the machine's counters belong to every
        colocated tenant and are managed by the owning
        :class:`~repro.runtime.placement.MultiTenantSession`."""
        if self._owns_machine:
            self.machine.reset_query_state()
        self.last_report = None
        self.last_values = None
        self.last_indices = None
        self.batches_run = 0
        self._time = 0.0

    # ------------------------------------------------------------ mutation
    @property
    def pattern_count(self) -> int:
        """Number of live (non-tombstoned) stored patterns."""
        return len(self._id_to_slot)

    def row_ids(self) -> List[int]:
        """Ids of the live patterns in rank order (ascending, by the
        slot-order invariant) — maps a top-k index back to a stable id."""
        return [
            self._slot_ids[int(s)]
            for s in np.flatnonzero(self._alive[: self._next_slot])
        ]

    def pattern(self, pattern_id: int) -> np.ndarray:
        """The live pattern stored under ``pattern_id`` (a copy)."""
        self._require_store()
        pattern_id = int(pattern_id)
        if pattern_id not in self._rows:
            raise SessionError(f"no stored pattern with id {pattern_id}")
        return self._rows[pattern_id].copy()

    @property
    def growth_groups(self) -> int:
        """Row groups added beyond the compiled plan (bank growth)."""
        return self._growth_groups

    @property
    def growth_bank_unit(self) -> int:
        """Banks one growth step allocates (whole banks, so colocated
        tenants keep bank-granular isolation)."""
        return max(
            1, self.spec.banks_needed(self.program.plan.col_tiles)
        )

    def _require_store(self) -> None:
        if self._store_index is None:
            raise SessionError(
                "this kernel's stored-pattern matrix could not be "
                "identified among its parameters; the store is immutable"
            )

    def _begin_mutation(self) -> Tuple[float, int]:
        machine = self.machine
        return machine.energy.write, machine.rows_written

    def _end_mutation(self, snapshot: Tuple[float, int], duration: float):
        """Fold one mutation's machine charges into the amortized-setup
        model: per-row write energy, serialized write-port latency."""
        machine = self.machine
        self.setup_energy_pj += machine.energy.write - snapshot[0]
        self.rows_written += machine.rows_written - snapshot[1]
        self.setup_latency_ns += duration
        # The mutation changed the live-row set the fused plan traced;
        # drop it and rebuild lazily on the next batch.
        self._fused_plan = None

    def _slot_group(self, slot: int) -> _RowGroup:
        for group in self._row_groups:
            if group.base_slot <= slot < group.base_slot + group.window:
                return group
        raise SessionError(f"slot {slot} is outside the store's row groups")

    def _slot_tiles(self, slot: int):
        """Physical tiles backing ``slot``: ``(sub_id, row, c0, c1)`` for
        every column slice (and, density-stacked, every batch copy)."""
        plan = self.program.plan
        features = plan.features
        if plan.batches > 1:
            for lin, batch, (_rp, cp) in self.program.tiles():
                c0 = cp * plan.col_tile
                yield (
                    self._sub_ids[lin],
                    batch * plan.patterns + slot,
                    c0,
                    min(c0 + plan.col_tile, features),
                )
        else:
            group = self._slot_group(slot)
            row = slot - group.base_slot
            for cp, sub in enumerate(group.subs):
                c0 = cp * plan.col_tile
                yield sub, row, c0, min(c0 + plan.col_tile, features)

    def _write_slot(self, slot: int, row: np.ndarray) -> float:
        duration = 0.0
        for sub, r, c0, c1 in self._slot_tiles(slot):
            duration += self.machine.write_value(
                sub, row[c0:c1], row_offset=r, at=self._time
            )
        return duration

    def _erase_slot(self, slot: int) -> float:
        duration = 0.0
        for sub, r, _c0, _c1 in self._slot_tiles(slot):
            duration += self.machine.erase(
                sub, row_offset=r, row_count=1, at=self._time
            )
        return duration

    def grow(self) -> None:
        """Add one growth row group: ``col_tiles`` fresh subarrays in
        whole fresh banks (bank granularity preserves tenant isolation on
        shared machines).  Raises :class:`StoreOverflow` when the machine
        is bank-capped or the mapping is density-stacked — nothing is
        allocated on failure."""
        plan = self.program.plan
        if plan.batches > 1:
            raise StoreOverflow(
                "density-stacked store is at capacity: the accumulator "
                "geometry packs the full pattern set, so the store cannot "
                "grow in place"
            )
        spec, machine = self.spec, self.machine
        subs_needed = plan.col_tiles
        banks_needed = spec.banks_needed(subs_needed)
        if (
            spec.banks is not None
            and machine.banks_used + banks_needed > spec.banks
        ):
            raise StoreOverflow(
                f"store is at capacity: growing needs {banks_needed} more "
                f"bank(s) but the machine is capped at {spec.banks} "
                f"({machine.banks_used} in use)"
            )
        counts_before = (
            machine.banks_used,
            machine.mats_used,
            machine.arrays_used,
            machine.subarrays_used,
        )
        per_array = spec.subarrays_per_array
        per_mat = spec.subarrays_per_mat
        per_bank = spec.subarrays_per_bank
        bank = mat = array = None
        new_subs = []
        for i in range(subs_needed):
            if i % per_bank == 0:
                bank = machine.alloc_bank()
            if i % per_mat == 0:
                mat = machine.alloc_mat(bank)
            if i % per_array == 0:
                array = machine.alloc_array(mat)
            new_subs.append(machine.alloc_subarray(array))
        self.banks_used += machine.banks_used - counts_before[0]
        self.mats_used += machine.mats_used - counts_before[1]
        self.arrays_used += machine.arrays_used - counts_before[2]
        self.subarrays_used += machine.subarrays_used - counts_before[3]
        self._sub_ids.extend(new_subs)
        self._row_groups.append(
            _RowGroup(tuple(new_subs), self._capacity, spec.rows)
        )
        self._alive = np.concatenate(
            [self._alive, np.zeros(spec.rows, dtype=bool)]
        )
        self._slot_ids.extend([-1] * spec.rows)
        self._capacity += spec.rows
        self._growth_groups += 1
        self._fused_plan = None

    def _free_slot(self) -> int:
        if self._next_slot >= self._capacity and self._dead:
            self.compact()
        if self._next_slot >= self._capacity:
            self.grow()
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def _insert_row(self, row: np.ndarray, forced_id: Optional[int] = None):
        snapshot = self._begin_mutation()
        slot = self._free_slot()
        duration = self._write_slot(slot, row)
        self._end_mutation(snapshot, duration)
        new_id = self._next_id if forced_id is None else int(forced_id)
        self._next_id = max(self._next_id, new_id + 1)
        self._slot_ids[slot] = new_id
        self._alive[slot] = True
        self._id_to_slot[new_id] = slot
        self._rows[new_id] = row.copy()
        return new_id

    def insert(self, patterns) -> List[int]:
        """Append patterns to the live store; returns their stable ids.

        Only the inserted rows are programmed (write energy charged per
        touched row through the amortized-setup model).  Capacity is
        secured up front — compaction reclaims tombstones, then whole
        growth banks are allocated — so either every row is inserted or
        :class:`StoreOverflow` is raised with nothing written.
        """
        self._require_store()
        rows = np.asarray(patterns, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2 or rows.shape[1] != self.program.plan.features:
            raise SessionError(
                f"inserted patterns must be rows of width "
                f"{self.program.plan.features}"
            )
        free = (self._capacity - self._next_slot) + self._dead
        while free < rows.shape[0]:
            self.grow()
            free += self.spec.rows
        ids = [self._insert_row(row) for row in rows]
        self.mutations += 1
        return ids

    def delete(
        self, ids: Union[int, Iterable[int]], _compact: bool = True
    ) -> None:
        """Tombstone patterns by id.

        Each covering tile row is erased (valid bit cleared, charged like
        a write), so the rows vanish from every subsequent top-k without
        re-programming anything else.  Crossing
        :attr:`compact_threshold` tombstone density triggers a
        defragmenting re-pack.
        """
        self._require_store()
        if isinstance(ids, (int, np.integer)):
            ids = [ids]
        ids = list(dict.fromkeys(int(i) for i in ids))
        unknown = [i for i in ids if i not in self._id_to_slot]
        if unknown:
            raise SessionError(f"no stored pattern(s) with id(s) {unknown}")
        snapshot = self._begin_mutation()
        duration = 0.0
        for row_id in ids:
            slot = self._id_to_slot.pop(row_id)
            duration += self._erase_slot(slot)
            self._alive[slot] = False
            self._slot_ids[slot] = -1
            del self._rows[row_id]
            self._dead += 1
        self._end_mutation(snapshot, duration)
        self.mutations += 1
        if _compact:
            self._maybe_compact()

    def update(self, pattern_id: int, pattern) -> None:
        """Overwrite one live pattern in place (per-row write charge)."""
        self._require_store()
        row = np.asarray(pattern, dtype=np.float64).reshape(-1)
        if row.shape[0] != self.program.plan.features:
            raise SessionError(
                f"updated pattern must have width "
                f"{self.program.plan.features}"
            )
        pattern_id = int(pattern_id)
        slot = self._id_to_slot.get(pattern_id)
        if slot is None:
            raise SessionError(f"no stored pattern with id {pattern_id}")
        snapshot = self._begin_mutation()
        duration = self._write_slot(slot, row)
        self._end_mutation(snapshot, duration)
        self._rows[pattern_id] = row.copy()
        self.mutations += 1

    def _maybe_compact(self) -> None:
        if (
            self._dead
            and self._next_slot
            and self._dead / self._next_slot > self.compact_threshold
        ):
            self.compact()

    def compact(self) -> int:
        """Re-pack survivors into the lowest slots; returns rows moved.

        Reuses the defragmenting re-pack discipline: survivors move in
        ascending slot order (targets are always already-free slots), so
        id order — and therefore every query result — is preserved.
        Only moved rows pay write/erase charges; an already-packed store
        compacts for free.
        """
        self._require_store()
        alive = np.flatnonzero(self._alive[: self._next_slot])
        snapshot = self._begin_mutation()
        duration = 0.0
        moved = 0
        slot_ids = [-1] * self._capacity
        for rank, old in enumerate(alive):
            old = int(old)
            row_id = self._slot_ids[old]
            slot_ids[rank] = row_id
            self._id_to_slot[row_id] = rank
            if old != rank:
                duration += self._write_slot(rank, self._rows[row_id])
                duration += self._erase_slot(old)
                moved += 1
        self._slot_ids = slot_ids
        self._alive[:] = False
        self._alive[: len(alive)] = True
        self._next_slot = int(len(alive))
        self._dead = 0
        self._end_mutation(snapshot, duration)
        self.compactions += 1
        return moved

    def store_state(self) -> StoreState:
        """Snapshot the surviving rows (ascending id) for replay."""
        self._require_store()
        return StoreState(
            rows=tuple(
                (i, self._rows[i].copy()) for i in sorted(self._id_to_slot)
            ),
            next_id=self._next_id,
        )

    def restore(self, state: StoreState) -> None:
        """Replay this store to ``state`` with the minimal mutation set.

        Ids present here but absent from ``state`` are deleted, changed
        rows are updated in place, missing ids are inserted in ascending
        order; an unchanged store is a no-op charging zero rows.  After a
        delete phase the store compacts once, so the bank footprint of a
        replay is deterministic (what cluster re-placement sizes for).
        """
        self._require_store()
        target = {int(i): np.asarray(row, dtype=np.float64)
                  for i, row in state.rows}
        current = sorted(self._id_to_slot)
        doomed = [i for i in current if i not in target]
        kept = [i for i in current if i in target]
        new = sorted(i for i in target if i not in self._id_to_slot)
        if kept and new and min(new) < max(kept):
            # Interleaved ids cannot be appended in rank order; rebuild.
            doomed, kept, new = current, [], sorted(target)
        if doomed:
            self.delete(doomed, _compact=False)
            self.compact()
        for i in kept:
            if not np.array_equal(self._rows[i], target[i]):
                self.update(i, target[i])
        inserted = False
        for i in new:
            self._insert_row(target[i], forced_id=i)
            inserted = True
        if inserted:
            self.mutations += 1
        self._next_id = max(self._next_id, int(state.next_id))

    # ------------------------------------------------------- protocol bits
    def query_width(self, tenant: Optional[str] = None) -> int:
        """The kernel's feature dimension (single-tenant backend)."""
        self._require_no_tenant(tenant)
        return self.program.plan.features

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline: this session's programming cost and its
        own (tenant-scoped, when colocated) hierarchy slice."""
        return ExecutionReport(
            setup_latency_ns=self.setup_latency_ns,
            energy=EnergyBreakdown(write=self.setup_energy_pj),
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            rows_written=self.rows_written,
            queries=0,
            spec=self.spec,
        )

    def report(self) -> ExecutionReport:
        """The most recent batch report, or the setup baseline before
        any batch ran (sessions don't accumulate traffic themselves —
        a :class:`~repro.runtime.backend.LaneStats` lane does)."""
        return self.last_report or self.setup_report()

    # ------------------------------------------------------------- queries
    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Answer a ``B×D`` query batch; returns ``[values, indices]``.

        ``values`` is ``B×k`` float32, ``indices`` ``B×k`` int64 —
        bitwise identical (noise disabled) to stacking ``B`` sequential
        single-query executions.  The resulting
        :attr:`last_report` charges this batch's query latency/energy
        plus the session's one-time setup cost.
        """
        self._require_no_tenant(tenant)
        plan, machine = self.program.plan, self.machine
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.ndim != 2:
            raise SessionError("query batch must be a 1-D or 2-D array")
        if queries.shape[1] != plan.features:
            raise SessionError(
                f"query width {queries.shape[1]} does not match the "
                f"kernel's feature dimension {plan.features}"
            )
        if self.fused and self.noise_sigma == 0.0:
            # Fused fast path: trace once, execute flat.  Noise keeps
            # the unfused walk (draws are per-machine-call); a store the
            # tracer cannot validate falls back permanently (False).
            fused_plan = self._fused_plan
            if fused_plan is None:
                fused_plan = build_fused_plan(self)
                self._fused_plan = fused_plan if fused_plan else False
            if fused_plan:
                return self._run_batch_fused(fused_plan, queries)
        n_queries = queries.shape[0]
        if self.noise_sigma > 0.0:
            machine.reseed_noise(self._noise_seq.spawn(1)[0])
        before = self._counters()
        machine.begin_query()

        stacked = plan.batches > 1
        t0 = self._time
        alive_slots = np.flatnonzero(self._alive[: self._next_slot])
        n_alive = int(alive_slots.size)
        # --- search: one vectorized machine call per placed tile -------
        search_end = t0
        if stacked:
            window = plan.patterns
            for lin, batch, (_rp, cp) in self.program.tiles():
                qslice = queries[
                    :, cp * plan.col_tile : (cp + 1) * plan.col_tile
                ]
                dur = machine.search(
                    self._sub_ids[lin], qslice,
                    search_type="best", metric=self.program.metric,
                    row_begin=batch * plan.patterns,
                    row_count=window, accumulate=True, at=t0,
                )
                search_end = max(search_end, t0 + dur)
        else:
            for group in self._row_groups:
                for cp, sub in enumerate(group.subs):
                    qslice = queries[
                        :, cp * plan.col_tile : (cp + 1) * plan.col_tile
                    ]
                    dur = machine.search(
                        sub, qslice,
                        search_type="best", metric=self.program.metric,
                        row_begin=0, row_count=group.window,
                        accumulate=False, at=t0,
                    )
                    search_end = max(search_end, t0 + dur)
        # --- read + merge: B×slots score matrix ------------------------
        width = plan.patterns if stacked else self._capacity
        scores = np.zeros((n_queries, width), dtype=np.float64)
        merge_end = search_end
        if stacked:
            for lin in range(plan.subarrays):
                values, _idx, rdur = machine.read_batch(
                    self._sub_ids[lin], window, at=search_end
                )
                n = min(values.shape[-1], plan.patterns)
                if n > 0:
                    scores[:, :n] += values[:, :n]
                mdur = machine.merge(
                    "subarray", max(n, 0), at=search_end + rdur,
                    n_queries=n_queries,
                )
                merge_end = max(merge_end, search_end + rdur + mdur)
        else:
            for group in self._row_groups:
                used = max(
                    0, min(group.window, self._next_slot - group.base_slot)
                )
                for sub in group.subs:
                    values, _idx, rdur = machine.read_batch(
                        sub, group.window, at=search_end
                    )
                    if used > 0:
                        scores[
                            :, group.base_slot : group.base_slot + used
                        ] += values[:, :used]
                    mdur = machine.merge(
                        "subarray", used, at=search_end + rdur,
                        n_queries=n_queries,
                    )
                    merge_end = max(merge_end, search_end + rdur + mdur)
        for level in ("array", "mat", "bank"):
            merge_end += machine.merge(
                level, plan.patterns, at=merge_end, n_queries=n_queries
            )
        # --- per-query top-k over surviving rows only ------------------
        # Tombstones never reach the selector: the accumulate path packs
        # live rows into slots 0..n-1, the latch path leaves them at the
        # no-match value and the alive-slot gather drops them.  Survivor
        # columns appear in slot order == id order, so the reported
        # indices are exactly the ranks a rebuilt store would report.
        if stacked:
            scores_alive = scores[:, :n_alive]
        elif n_alive == self._capacity:
            scores_alive = scores
        else:
            scores_alive = scores[:, alive_slots]
        k = self.program.k if self.serve_k is None else self.serve_k
        if n_alive > 0:
            values, indices, _dur = machine.select_topk_batch(
                scores_alive, k, self.program.largest, at=merge_end,
            )
        else:
            values = np.zeros((n_queries, 0), dtype=np.float64)
            indices = np.zeros((n_queries, 0), dtype=np.int64)
        # The authoritative batch latency is structural (B x the
        # interpreter-measured per-query walk); advance the session
        # trace clock by it so successive batches land back-to-back.
        self._time = t0 + n_queries * self.per_query_latency_ns
        # Raw scores of the selected rows (selection ignores the WTA
        # clamp, so indices are exact; values may be clamped).
        self.last_values = np.take_along_axis(scores_alive, indices, axis=1)
        self.last_indices = indices
        self.last_report = self._report(before, n_queries)
        self.batches_run += 1
        return [values.astype(np.float32), indices.astype(np.int64)]

    def _run_batch_fused(self, fused_plan, queries) -> List[np.ndarray]:
        """Answer one batch through the traced :class:`FusedPlan`.

        Bitwise identical to the unfused walk in results, ``last_*``
        state and the batch report — the plan replays the walk's exact
        float accumulation order and charge schedule.
        """
        n_queries = queries.shape[0]
        before = self._counters()
        k = self.program.k if self.serve_k is None else self.serve_k
        values, indices, scores = fused_plan.execute(queries, k)
        self._time += n_queries * self.per_query_latency_ns
        self.last_values = np.take_along_axis(scores, indices, axis=1)
        self.last_indices = indices
        self.last_report = self._report(before, n_queries)
        self.batches_run += 1
        self.fused_runs += 1
        return [values.astype(np.float32), indices.astype(np.int64)]

    # -------------------------------------------------------------- report
    def _counters(self):
        machine = self.machine
        return (
            dict(machine.energy.as_dict()),
            machine.total_searches,
            [machine.subarray(sub).searches for sub in self._sub_ids],
        )

    def _standby_energy(self, latency_ns: float) -> float:
        """Standby energy over this session's *own* hierarchy slice.

        Mirrors :meth:`CamMachine.standby_energy` but with tenant-scoped
        instance counts, so a colocated session is charged standby for
        exactly the banks it occupies — identical to the machine-wide
        figure when the session owns the whole machine.
        """
        if self.spec.optimization_target in ("power", "power+density"):
            powered = self.arrays_used
        else:
            powered = self.subarrays_used
        standby_mw = self.tech.standby_power(
            self.spec,
            subarrays=powered,
            arrays=self.arrays_used,
            mats=self.mats_used,
            banks=self.banks_used,
        )
        duty = self.machine.standby_duty(self.array_base, self.arrays_used)
        return standby_mw * latency_ns * duty

    def _report(self, before, n_queries: int) -> ExecutionReport:
        """Batch report: this batch's query work + one-time setup cost.

        Counter *deltas* attribute the work: on a shared machine only
        this session touched the machine between the snapshots (batches
        are serialized per machine), so the report charges exactly this
        tenant's searches/energy, and the allocation fields cover its
        own banks rather than the whole fabric.
        """
        machine = self.machine
        energy_before, searches_before, sub_before = before
        energy_now = machine.energy.as_dict()
        energy = EnergyBreakdown(**{
            key: energy_now[key] - energy_before[key] for key in energy_now
        })
        energy.write = self.setup_energy_pj
        latency = n_queries * self.per_query_latency_ns
        energy.standby += self._standby_energy(latency)
        cycles = max(
            (machine.subarray(self._sub_ids[i]).searches - sub_before[i]
             for i in range(len(sub_before))),
            default=0,
        )
        return ExecutionReport(
            query_latency_ns=latency,
            setup_latency_ns=self.setup_latency_ns,
            energy=energy,
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            searches=machine.total_searches - searches_before,
            search_cycles=cycles,
            rows_written=self.rows_written,
            queries=n_queries,
            spec=self.spec,
        )
