"""Technology model: per-operation latency and energy (Eva-CAM style).

The paper extracts TCAM/MCAM operation costs from Eva-CAM [29] for the
2FeFET CAM design of [20] at the 45 nm node.  We reproduce the same role
with an analytic component model whose coefficients are calibrated against
the paper's published anchor points:

* search (match-line) latency ranges from **0.86 ns for 16×16** subarrays
  to **7.5 ns for 256×256** (paper §IV-A1) — an affine fit in the column
  count, since the ML discharges more slowly for larger columns (§IV-B);
* per-query energies in the hundreds of pJ for the HDC workload
  (paper Fig. 7b);
* multi-bit (MCAM) cells cost more energy and slightly more latency due to
  higher ML and data-line voltages (§IV-B).

All latencies are nanoseconds, all energies picojoules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .spec import ArchSpec

#: CAM-type multipliers on match-line latency and cell search energy.
TYPE_LATENCY_FACTOR = {"bcam": 0.95, "tcam": 1.0, "mcam": 1.12, "acam": 1.25}
TYPE_ENERGY_FACTOR = {"bcam": 0.9, "tcam": 1.0, "mcam": 1.35, "acam": 1.6}


@dataclass(frozen=True)
class TechnologyModel:
    """Latency/energy coefficients of one CAM technology.

    The defaults model the 2FeFET 45 nm design.  Fields group as:

    * ``t_*`` — latency components (ns);
    * ``e_*`` — dynamic energy components (pJ);
    * ``p_*`` — standby/peripheral power components (mW) charged per
      powered hierarchy instance for the duration of an execution.
    """

    # --- match-line search latency: t = t_ml_base + t_ml_per_col * cols
    # Affine fit through (16 cols, 0.86 ns) and (256 cols, 7.5 ns).
    t_ml_base: float = 0.4173
    t_ml_per_col: float = 0.027667

    # --- query staging / search-line drive per search phase
    t_bcast_base: float = 0.30
    t_bcast_per_col: float = 0.010

    # --- selective row search: per-batch row-decode/precharge setup,
    # proportional to the physical rows the decoder spans [27]
    t_selective_per_row: float = 0.012

    # --- sensing, priority-encoding and result readout
    t_sense: float = 1.2
    t_encode_per_log_row: float = 0.35
    t_read_fixed: float = 0.5

    # --- per-query front-end (DAC, drivers, control) and merges
    t_frontend: float = 2.0
    t_merge_hop: float = 0.4
    t_host_topk_base: float = 1.0
    t_host_topk_per_row: float = 0.01

    # --- FeFET write (program pulse per row)
    t_write_row: float = 10.0

    # --- best-match sensing circuit: 0 models an ideal ADC-assisted
    # chain; a positive value models a winner-take-all circuit that only
    # distinguishes matches within that many mismatching cells of the
    # winner (paper §II-B, [19]).
    wta_window: int = 0

    # --- dynamic energy (pJ)
    e_cell_search: float = 0.0015   # per active cell per search
    e_sl_drive_per_col: float = 0.0032  # search-line drivers, per column
    e_sa_per_row: float = 0.004     # sense amplifier per active row
    e_search_fixed: float = 0.05    # subarray-local control per search
    e_acc_per_row: float = 0.002    # local accumulator add (selective search)
    e_read_per_row: float = 0.16    # readout+encode per valid row
    e_read_fixed: float = 0.4       # per-subarray readout path activation
    e_merge_per_row: float = 0.01   # interconnect hop per merged row
    e_host_topk_per_row: float = 0.02
    e_write_cell: float = 0.01      # FeFET program energy per cell
    e_bcast_per_col: float = 0.001  # query distribution per column delivered

    # --- standby/peripheral power (mW) per powered instance
    p_subarray: float = 0.018
    p_array: float = 0.015
    p_mat: float = 0.2
    p_bank: float = 3.0

    # --- area (µm²), 45 nm estimates for the iso-area discussion of
    # §IV-C2 ("these systems are not iso-area since each subarray has its
    # own set of peripherals").
    a_cell_um2: float = 0.35        # 2FeFET CAM cell
    a_sa_um2: float = 18.0          # sense amplifier per row
    a_enc_per_row_um2: float = 2.5  # priority encoder share per row
    a_drv_per_col_um2: float = 4.0  # SL driver per column
    a_sub_ctrl_um2: float = 400.0   # subarray-local control
    a_array_ctrl_um2: float = 1500.0
    a_mat_ctrl_um2: float = 6000.0
    a_bank_ctrl_um2: float = 50000.0

    # --- host/system per-query overhead for end-to-end comparisons.
    # The paper's CIM system includes host interfacing and HDC encoding
    # peripherals that dominate CAM energy ("CAMs contribute minimally to
    # the overall energy consumption in their CIM system", §IV-B); these
    # constants model that system-level share for the GPU comparison.
    e_system_per_query: float = 1.3e6  # pJ (≈1.3 µJ host/CIM-system share)
    t_system_per_query: float = 2.0    # ns (pipelined host overhead)

    def _type_lat(self, spec: ArchSpec) -> float:
        f = TYPE_LATENCY_FACTOR[spec.cam_type]
        return f * (1.0 + 0.10 * (spec.bits_per_cell - 1))

    def _type_en(self, spec: ArchSpec) -> float:
        f = TYPE_ENERGY_FACTOR[spec.cam_type]
        return f * (1.0 + 0.80 * (spec.bits_per_cell - 1))

    # ------------------------------------------------------------- latency
    def search_latency(self, spec: ArchSpec) -> float:
        """Match-line search latency of one subarray search phase (ns)."""
        t_ml = self.t_ml_base + self.t_ml_per_col * spec.cols
        return t_ml * self._type_lat(spec)

    def broadcast_latency(self, spec: ArchSpec) -> float:
        """Query staging (search-line reload) latency per phase (ns)."""
        return self.t_bcast_base + self.t_bcast_per_col * spec.cols

    def search_phase_latency(self, spec: ArchSpec, selective: bool = False) -> float:
        """Latency one ``cam.search`` op contributes (reload + ML).

        Selective-search phases pay an extra row-decode/precharge setup
        spanning the physical rows [27].
        """
        latency = self.broadcast_latency(spec) + self.search_latency(spec)
        if selective:
            latency += self.t_selective_per_row * spec.rows
        return latency

    def read_latency(self, spec: ArchSpec, rows: int) -> float:
        """Sense + encode + readout of one subarray's results (ns)."""
        encode = self.t_encode_per_log_row * math.log2(max(spec.rows, 2))
        return self.t_sense + encode + self.t_read_fixed

    def merge_latency(self, level: str) -> float:
        """One partial-result merge hop at ``level`` (ns)."""
        return self.t_merge_hop

    def frontend_latency(self, spec: ArchSpec) -> float:
        """Per-query front-end setup (ns)."""
        return self.t_frontend

    def host_topk_latency(self, n_rows: int) -> float:
        """Final top-k selection over ``n_rows`` merged scores (ns)."""
        return self.t_host_topk_base + self.t_host_topk_per_row * n_rows

    def write_latency(self, spec: ArchSpec, rows: int) -> float:
        """Programming ``rows`` rows of a subarray (ns)."""
        return self.t_write_row * rows

    # -------------------------------------------------------------- energy
    def search_energy(
        self, spec: ArchSpec, active_rows: int, accumulate: bool = False
    ) -> float:
        """Dynamic energy of one subarray search phase (pJ)."""
        cells = active_rows * spec.cols * self.e_cell_search * self._type_en(spec)
        sl = spec.cols * self.e_sl_drive_per_col
        sa = active_rows * self.e_sa_per_row
        bcast = spec.cols * self.e_bcast_per_col
        acc = active_rows * self.e_acc_per_row if accumulate else 0.0
        return cells + sl + sa + bcast + acc + self.e_search_fixed

    def read_energy(self, spec: ArchSpec, rows: int) -> float:
        """Readout + priority-encode energy for ``rows`` results (pJ)."""
        return self.e_read_fixed + rows * self.e_read_per_row

    def merge_energy(self, level: str, rows: int) -> float:
        """Interconnect energy of merging ``rows`` partial scores (pJ)."""
        return rows * self.e_merge_per_row

    def host_topk_energy(self, n_rows: int) -> float:
        """Energy of the final top-k selection (pJ)."""
        return n_rows * self.e_host_topk_per_row

    def write_energy(self, spec: ArchSpec, rows: int) -> float:
        """Programming energy for ``rows`` rows (pJ)."""
        return rows * spec.cols * self.e_write_cell * self._type_en(spec)

    # ---------------------------------------------------------------- area
    def subarray_area_um2(self, spec: ArchSpec) -> float:
        """Area of one subarray including its private peripherals (µm²)."""
        cells = spec.rows * spec.cols * self.a_cell_um2
        periphery = (
            spec.rows * (self.a_sa_um2 + self.a_enc_per_row_um2)
            + spec.cols * self.a_drv_per_col_um2
            + self.a_sub_ctrl_um2
        )
        return cells + periphery

    def chip_area_mm2(
        self, spec: ArchSpec, subarrays: int, arrays: int, mats: int,
        banks: int,
    ) -> float:
        """Total area of the allocated hierarchy (mm²)."""
        total = (
            subarrays * self.subarray_area_um2(spec)
            + arrays * self.a_array_ctrl_um2
            + mats * self.a_mat_ctrl_um2
            + banks * self.a_bank_ctrl_um2
        )
        return total * 1e-6

    # ------------------------------------------------------------- standby
    def standby_power(
        self,
        spec: ArchSpec,
        subarrays: int,
        arrays: int,
        mats: int,
        banks: int,
    ) -> float:
        """Peripheral standby power of the powered instances (mW)."""
        return (
            self.p_subarray * subarrays
            + self.p_array * arrays
            + self.p_mat * mats
            + self.p_bank * banks
        )


#: Default model used throughout the evaluation (2FeFET @ 45 nm).
FEFET_45NM = TechnologyModel()
