"""Traffic-driven autotuner: trace construction, search ranking, and
the plan round-trip guarantee.

The load-bearing contract: :func:`repro.runtime.autotune.autotune`
ranks candidates feasible-first then by predicted cost, and the plan it
emits rebuilds through :meth:`Cluster.from_plan` into a cluster whose
placement and query results are bitwise identical to direct
construction.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime import Cluster
from repro.runtime.autotune import TrafficTrace, autotune
from repro.runtime.costmodel import TrafficHint

SPEC = replace(paper_spec(32, 32), banks=2)
DIMS = 64


def bipolar(rng, rows):
    return rng.choice([-1.0, 1.0], (rows, DIMS)).astype(np.float32)


@pytest.fixture
def tenants(dot_kernel, rng):
    """Three dot-product tenants with distinct stores, autotune-shaped."""
    stores = {
        "t0": bipolar(rng, 8),
        "t1": bipolar(rng, 12),
        "t2": bipolar(rng, 10),
    }
    models = {tid: dot_kernel(stored, k=1) for tid, stored in stores.items()}
    inputs = {tid: [placeholder((1, DIMS))] for tid in stores}
    return models, inputs, stores


# --------------------------------------------------------------------------
# TrafficTrace
# --------------------------------------------------------------------------
class TestTrafficTrace:
    def test_zipf_rates(self):
        trace = TrafficTrace.zipf(["a", "b", "c"], total_qps=700.0, skew=1.0)
        rates = [hint.rate_qps for hint in trace.hints]
        assert sum(rates) == pytest.approx(700.0)
        # Hottest first, harmonic 1 : 1/2 : 1/3 at skew=1.
        assert rates[0] == pytest.approx(2 * rates[1])
        assert rates[0] == pytest.approx(3 * rates[2])
        assert trace.tenant_ids == ["a", "b", "c"]

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            TrafficTrace(hints=(TrafficHint("a"), TrafficHint("a")))
        with pytest.raises(ValueError, match="at least one"):
            TrafficTrace(hints=())

    def test_arrivals_deterministic_and_sorted(self):
        trace = TrafficTrace.zipf(["a", "b"], total_qps=100.0)
        first = trace.arrivals(0.5)
        second = trace.arrivals(0.5)
        assert first == second
        assert first == sorted(first)
        assert all(0.0 <= t < 0.5 for t, _tid in first)
        # Per-tenant counts track the hinted rates.
        hot = sum(1 for _t, tid in first if tid == "a")
        cold = sum(1 for _t, tid in first if tid == "b")
        assert hot > cold > 0

    def test_arrivals_respects_batch_rows(self):
        trace = TrafficTrace(hints=(
            TrafficHint("a", rate_qps=100.0, batch_rows=10),
        ))
        # 100 q/s in 10-row requests -> 10 requests/s.
        assert len(trace.arrivals(1.0)) == 10


# --------------------------------------------------------------------------
# Search
# --------------------------------------------------------------------------
class TestAutotune:
    def test_ranking_and_winner(self, tenants):
        models, inputs, _stores = tenants
        trace = TrafficTrace.zipf(list(models), total_qps=5000.0)
        result = autotune(
            models, inputs, trace,
            presets={"32x32": SPEC, "64x32": replace(SPEC, rows=64)},
            emit_plan=False,
        )
        # Both policies on both presets scored.
        assert len(result.candidates) == 4
        keys = [c.sort_key for c in result.candidates]
        assert keys == sorted(keys)
        assert result.winner is result.candidates[0]
        assert result.winner.predicted.total <= min(
            c.predicted.total for c in result.candidates if c.feasible
        )
        assert set(result.kernels) == set(models)
        assert set(result.profiles) == set(models)
        # Profiles are calibrated from measured probes, not guesses.
        assert all(
            p.queries_observed > 0 for p in result.profiles.values()
        )

    def test_infeasible_preset_skipped(self, tenants):
        models, inputs, _stores = tenants
        trace = TrafficTrace.zipf(list(models), total_qps=100.0)
        tiny = replace(
            paper_spec(4, 4), banks=1,
            subarrays_per_array=1, arrays_per_mat=1, mats_per_bank=1,
        )
        result = autotune(
            models, inputs, trace,
            presets={"good": SPEC, "tiny": tiny},
            emit_plan=False,
        )
        assert any(name.startswith("tiny") for name, _why in result.skipped)
        assert all(c.preset == "good" for c in result.candidates)

    def test_missing_model_rejected(self, tenants):
        models, inputs, _stores = tenants
        trace = TrafficTrace.zipf(["t0", "ghost"])
        with pytest.raises(ValueError, match="ghost"):
            autotune(models, inputs, trace, presets={"s": SPEC})

    def test_plan_round_trips_bitwise(self, tenants, rng):
        """The emitted plan rebuilds into a cluster that is placement-
        and result-identical to the one the autotuner realized."""
        models, inputs, stores = tenants
        trace = TrafficTrace.zipf(list(models), total_qps=5000.0)
        result = autotune(
            models, inputs, trace, presets={"32x32": SPEC},
            policies=("cost", "ffd"),
        )
        assert result.plan is not None
        queries = {tid: bipolar(rng, 3) for tid in models}

        rebuilt = Cluster.from_plan(result.plan, result.kernels)
        try:
            # Same placement the plan pinned, byte for byte.
            assert rebuilt.plan() == result.plan
            spans = rebuilt.bank_spans()
            for entry in result.plan["placement"]:
                assert spans[entry["tenant_id"]] == (
                    entry["machine_index"],
                    entry["bank_offset"],
                    entry["banks"],
                )
            rebuilt_out = {
                tid: rebuilt.run_batch(tid, queries[tid]) for tid in models
            }
        finally:
            rebuilt.shutdown()

        # Direct construction: fresh compiles, same config and layout.
        compiler = C4CAMCompiler(SPEC)
        direct = Cluster(
            SPEC,
            placement_policy=result.plan["cluster"]["placement_policy"],
            traffic_hints=trace.as_dict(),
        )
        try:
            for tid in trace.tenant_ids:
                direct.admit(
                    compiler.compile(models[tid], inputs[tid]),
                    tenant_id=tid,
                    lanes=result.winner.lanes,
                )
            direct.apply_placement(result.plan["placement"])
            assert direct.bank_spans() == spans
            for tid in models:
                value, index = direct.run_batch(tid, queries[tid])
                np.testing.assert_array_equal(value, rebuilt_out[tid][0])
                np.testing.assert_array_equal(index, rebuilt_out[tid][1])
        finally:
            direct.shutdown()

    def test_compiler_entry_point(self, tenants):
        models, inputs, _stores = tenants
        order = list(models)
        trace = TrafficTrace.zipf(order, total_qps=1000.0)
        result = C4CAMCompiler(SPEC).autotune_cluster(
            [models[tid] for tid in order],
            [inputs[tid] for tid in order],
            trace,
            emit_plan=False,
        )
        assert result.winner.preset == "compiler-spec"
        assert set(result.kernels) == set(order)
