"""Host-side functional semantics shared by the executor.

These implement the numpy reference behaviour of torch/cim compute ops —
the "host path" of the compiler and the golden model the CAM path is
validated against.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def transpose(x: np.ndarray, dim0: int, dim1: int) -> np.ndarray:
    axes = list(range(x.ndim))
    d0, d1 = dim0 % x.ndim, dim1 % x.ndim
    axes[d0], axes[d1] = axes[d1], axes[d0]
    return np.transpose(x, axes)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b


def norm(x: np.ndarray, p: int, dim: int, keepdim: bool) -> np.ndarray:
    d = dim % x.ndim
    if p == 2:
        out = np.sqrt((x.astype(np.float64) ** 2).sum(axis=d))
    elif p == 1:
        out = np.abs(x).sum(axis=d)
    else:
        out = (np.abs(x) ** p).sum(axis=d) ** (1.0 / p)
    if keepdim:
        out = np.expand_dims(out, d)
    return out.astype(np.float32)


def topk(
    x: np.ndarray, k: int, dim: int, largest: bool
) -> Tuple[np.ndarray, np.ndarray]:
    d = dim % x.ndim
    order = np.argsort(-x if largest else x, axis=d, kind="stable")
    idx = np.take(order, np.arange(k), axis=d)
    values = np.take_along_axis(x, idx, axis=d)
    return values, idx.astype(np.int64)


def similarity_scores(
    metric: str, stored: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Q×P score matrix for a similarity metric (host reference)."""
    stored64 = stored.astype(np.float64)
    query64 = np.atleast_2d(query.astype(np.float64))
    if metric == "dot":
        return query64 @ stored64.T
    if metric == "euclidean":
        diff = query64[:, None, :] - stored64[None, :, :]
        return np.sqrt((diff * diff).sum(axis=-1))
    if metric == "cosine":
        dots = query64 @ stored64.T
        qn = np.linalg.norm(query64, axis=1, keepdims=True)
        sn = np.linalg.norm(stored64, axis=1, keepdims=True)
        denom = qn @ sn.T
        denom[denom == 0] = 1.0
        return dots / denom
    raise ValueError(f"unknown similarity metric: {metric!r}")


def similarity(
    metric: str,
    stored: np.ndarray,
    query: np.ndarray,
    k: int,
    largest: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference ``cim.similarity``: top-k over the score matrix."""
    scores = similarity_scores(metric, stored, query).astype(np.float32)
    values, indices = topk(scores, k, dim=-1, largest=largest)
    if query.ndim == 1:
        return values[0], indices[0]
    return values, indices
