"""Architecture specification (paper §III-B).

C4CAM takes, besides the input program, an architectural configuration
describing the CAM hierarchy (paper Fig. 2): ``B`` banks of ``T`` mats of
``A`` arrays of ``S`` subarrays of ``rows × cols`` cells, the access mode
of each level (sequential or parallel), whether the device supports
selective row search, and the optimization target (latency, power, or
utilization/density).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Union

#: Hierarchy levels, outermost first.
LEVELS = ("bank", "mat", "array", "subarray")

ACCESS_MODES = ("parallel", "sequential")
CAM_TYPES = ("bcam", "tcam", "mcam", "acam")
OPT_TARGETS = ("latency", "power", "density", "power+density")


@dataclass(frozen=True)
class ArchSpec:
    """A CAM accelerator configuration.

    Attributes
    ----------
    rows, cols:
        Subarray geometry in cells (e.g. 32×64).
    subarrays_per_array, arrays_per_mat, mats_per_bank:
        Capacity of each hierarchy level.  The paper's evaluation fixes
        4 mats/bank, 4 arrays/mat, 8 subarrays/array.
    banks:
        ``None`` means "allocate as many banks as the workload needs"
        (the paper's default); an integer caps the machine size.
    cam_type:
        ``tcam`` (binary/ternary, Hamming), ``mcam`` (multi-bit) or
        ``acam`` (analog ranges).  ``bcam`` behaves as tcam without
        wildcard support.
    bits_per_cell:
        1 for binary/ternary CAMs, 2+ for multi-bit CAM cells.
    access_modes:
        Per-level access mode.  ``parallel`` levels issue child operations
        concurrently; ``sequential`` levels serialize them (the knob behind
        the cam-power configuration).
    selective_search:
        Whether the device supports selective row pre-charging [27],
        enabling the cam-density placement.
    optimization_target:
        Which built-in optimization the compiler applies: ``latency``
        (cam-base), ``power``, ``density`` or ``power+density``.
    process_node_nm, word_width_bits:
        Recorded for documentation/reporting; the technology model keys
        off its own parameters.
    """

    rows: int = 32
    cols: int = 32
    subarrays_per_array: int = 8
    arrays_per_mat: int = 4
    mats_per_bank: int = 4
    banks: Optional[int] = None
    cam_type: str = "tcam"
    bits_per_cell: int = 1
    access_modes: Dict[str, str] = field(
        default_factory=lambda: {level: "parallel" for level in LEVELS}
    )
    selective_search: bool = True
    optimization_target: str = "latency"
    process_node_nm: int = 45
    word_width_bits: int = 64

    def __post_init__(self):
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("subarray geometry must be positive")
        if self.cam_type not in CAM_TYPES:
            raise ValueError(f"unknown cam_type: {self.cam_type!r}")
        if self.bits_per_cell < 1:
            raise ValueError("bits_per_cell must be >= 1")
        if self.cam_type in ("bcam", "tcam") and self.bits_per_cell != 1:
            raise ValueError(f"{self.cam_type} cells store exactly 1 bit")
        if self.optimization_target not in OPT_TARGETS:
            raise ValueError(
                f"unknown optimization_target: {self.optimization_target!r}"
            )
        for level in LEVELS:
            mode = self.access_modes.get(level)
            if mode not in ACCESS_MODES:
                raise ValueError(f"bad access mode for {level}: {mode!r}")

    # ------------------------------------------------------------ capacity
    @property
    def subarrays_per_mat(self) -> int:
        return self.subarrays_per_array * self.arrays_per_mat

    @property
    def subarrays_per_bank(self) -> int:
        return self.subarrays_per_mat * self.mats_per_bank

    @property
    def cells_per_subarray(self) -> int:
        return self.rows * self.cols

    @property
    def cells_per_array(self) -> int:
        return self.cells_per_subarray * self.subarrays_per_array

    def banks_needed(self, n_subarrays: int) -> int:
        """Banks required to host ``n_subarrays`` subarrays."""
        if n_subarrays <= 0:
            return 0
        return -(-n_subarrays // self.subarrays_per_bank)

    def mode(self, level: str) -> str:
        """Access mode of ``level``."""
        return self.access_modes[level]

    # ----------------------------------------------------------- variation
    def with_subarray(self, rows: int, cols: int) -> "ArchSpec":
        """A copy with a different subarray geometry (for DSE sweeps)."""
        return replace(self, rows=rows, cols=cols)

    def with_target(self, target: str) -> "ArchSpec":
        """A copy with a different optimization target."""
        return replace(self, optimization_target=target)

    def with_modes(self, **modes: str) -> "ArchSpec":
        """A copy overriding access modes, e.g. ``with_modes(subarray="sequential")``."""
        merged = dict(self.access_modes)
        merged.update(modes)
        return replace(self, access_modes=merged)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-friendly)."""
        return {
            "rows": self.rows,
            "cols": self.cols,
            "subarrays_per_array": self.subarrays_per_array,
            "arrays_per_mat": self.arrays_per_mat,
            "mats_per_bank": self.mats_per_bank,
            "banks": self.banks,
            "cam_type": self.cam_type,
            "bits_per_cell": self.bits_per_cell,
            "access_modes": dict(self.access_modes),
            "selective_search": self.selective_search,
            "optimization_target": self.optimization_target,
            "process_node_nm": self.process_node_nm,
            "word_width_bits": self.word_width_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchSpec":
        """Build a spec from :meth:`to_dict` output (unknown keys rejected)."""
        valid = set(cls.__dataclass_fields__)
        unknown = set(data) - valid
        if unknown:
            raise ValueError(f"unknown ArchSpec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "ArchSpec":
        """Load a specification from a JSON file."""
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def to_json(self, path: Union[str, Path]) -> None:
        """Write the specification to a JSON file."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2)
            f.write("\n")
