"""Runtime: the IR interpreter and host reference semantics."""

from .executor import ExecutionError, Interpreter
from . import values

__all__ = ["ExecutionError", "Interpreter", "values"]
