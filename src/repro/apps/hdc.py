"""Hyperdimensional computing (HDC) on CAM (paper §IV-A3, Kazemi et al.).

HDC encodes inputs as high-dimensional hypervectors (the paper uses 8k
dimensions on MNIST); class prototypes are bundled from training encodings
and inference is a similarity search between the query hypervector and the
prototypes — exactly the kernel of paper Fig. 4a.

Two variants, as in the validation study (Fig. 7):

* **1-bit (binary)** — bipolar ±1 hypervectors on a TCAM; dot-product
  ranking is realised as Hamming distance;
* **2-bit (multi-bit)** — prototypes quantized to 4 levels on an MCAM
  with native multi-bit dot similarity.

Prototype sets beyond one machine's row capacity (many-class HDC on a
bank-capped spec) compile with ``num_shards``/auto-shard and classify
through a :class:`~repro.runtime.sharding.ShardedSession` with no
change to :meth:`HDCModel.classify_cam`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.frontend.torch_api as torch
from repro.frontend import placeholder
from repro.simulator.cells import quantize

from .datasets import Dataset


class HDCEncoder:
    """Random-projection HDC encoder: sign(x · Φ) with bipolar Φ."""

    def __init__(self, in_features: int, dimensions: int = 8192, seed: int = 3):
        rng = np.random.default_rng(seed)
        self.dimensions = dimensions
        self.projection = rng.choice(
            [-1.0, 1.0], size=(in_features, dimensions)
        ).astype(np.float32)

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Encode a batch (``N×F``) into bipolar hypervectors (``N×D``)."""
        hv = np.sign(np.atleast_2d(x) @ self.projection)
        hv[hv == 0] = 1.0
        return hv.astype(np.float32)


@dataclass
class HDCModel:
    """Trained HDC prototypes plus the similarity kernel definition."""

    prototypes: np.ndarray        # n_classes × D (bipolar or quantized)
    queries_encoder: HDCEncoder
    bits: int                     # 1 (binary) or 2 (multi-bit)

    @property
    def n_classes(self) -> int:
        return self.prototypes.shape[0]

    @property
    def dimensions(self) -> int:
        return self.prototypes.shape[1]

    def encode_queries(self, x: np.ndarray) -> np.ndarray:
        """Encode raw inputs into query hypervectors matching the bits."""
        hv = self.queries_encoder.encode(x)
        if self.bits == 1:
            return hv
        return quantize(hv, self.bits).astype(np.float32)

    def kernel(self, n_queries: int):
        """The TorchScript similarity kernel (paper Fig. 4a) and its
        example inputs for tracing."""
        prototypes = self.prototypes

        class DotSimilarity(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(prototypes)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
                return values, indices

        example = [placeholder((n_queries, self.dimensions))]
        return DotSimilarity(), example

    def classify_cam(self, kernel, x: np.ndarray) -> np.ndarray:
        """Classify raw inputs on the CAM via a compiled kernel.

        Encodes ``x`` (``B×F``) into query hypervectors and streams the
        whole matrix through the kernel's cached
        :class:`~repro.runtime.session.QuerySession` in one batched run —
        the prototypes are programmed once, any ``B`` is accepted
        regardless of the traced batch size.
        """
        hv = self.encode_queries(np.atleast_2d(x))
        _values, indices = kernel.run_batch(hv)
        return indices.reshape(len(hv)).astype(np.int64)

    def classify_reference(self, queries_hv: np.ndarray) -> np.ndarray:
        """Golden-model classification (numpy dot similarity)."""
        scores = queries_hv.astype(np.float64) @ self.prototypes.T.astype(np.float64)
        return scores.argmax(axis=1).astype(np.int64)


def train_hdc(
    dataset: Dataset,
    dimensions: int = 8192,
    bits: int = 1,
    seed: int = 3,
) -> HDCModel:
    """Bundle class prototypes from the training split."""
    if bits not in (1, 2):
        raise ValueError("HDC variants are 1-bit (binary) or 2-bit")
    encoder = HDCEncoder(dataset.n_features, dimensions, seed)
    encoded = encoder.encode(dataset.train_x)
    prototypes = np.zeros((dataset.n_classes, dimensions), dtype=np.float64)
    for c in range(dataset.n_classes):
        members = encoded[dataset.train_y == c]
        if len(members):
            prototypes[c] = members.sum(axis=0)
    if bits == 1:
        protos = np.sign(prototypes)
        protos[protos == 0] = 1.0
    else:
        protos = quantize(prototypes, bits).astype(np.float64)
    return HDCModel(
        prototypes=protos.astype(np.float32),
        queries_encoder=encoder,
        bits=bits,
    )
