"""The hierarchical CAM machine (paper Fig. 2 + §IV-A2).

``CamMachine`` is the simulator the lowered ``cam`` dialect calls into:
it owns the bank/mat/array/subarray hierarchy, performs functional
searches, and accounts latency/energy per operation using a
:class:`~repro.arch.technology.TechnologyModel`.

The machine is *passive* with respect to time: every operation returns
its duration and the executor threads start times through the IR's loop
structure (``scf.parallel`` joins at the max end time, ``scf.for``
serializes) — so mapping decisions, not hard-coded formulas, produce the
latency differences the paper studies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.arch.spec import ArchSpec
from repro.arch.technology import FEFET_45NM, TechnologyModel

from .metrics import EnergyBreakdown, ExecutionReport
from .peripherals import best_match_batch
from .subarray import SubarrayState
from .trace import Trace


class AllocationError(RuntimeError):
    """The requested allocation exceeds the machine capacity."""


class CamMachine:
    """A CAM accelerator instance built from an :class:`ArchSpec`."""

    def __init__(
        self,
        spec: ArchSpec,
        tech: TechnologyModel = FEFET_45NM,
        trace: bool = False,
        noise_sigma: float = 0.0,
        noise_seed: int = 0,
    ):
        """``noise_sigma`` adds Gaussian sensing noise to every search's
        match-line scores (in score units per root-column), modeling
        device variation — the accuracy-assessment capability of the
        paper's functional simulation (§IV-A2)."""
        self.spec = spec
        self.tech = tech
        self.trace = Trace(enabled=trace)
        self.noise_sigma = float(noise_sigma)
        self._noise_rng = np.random.default_rng(noise_seed)
        # Hierarchy bookkeeping: children counts per instance id.
        self._banks: List[int] = []          # bank id -> #mats
        self._mats: List[Tuple[int, int]] = []    # mat id -> (bank, #arrays)
        self._arrays: List[Tuple[int, int]] = []  # array id -> (mat, #subarrays)
        self._subarrays: Dict[int, SubarrayState] = {}
        self._sub_parent: Dict[int, int] = {}
        self.energy = EnergyBreakdown()
        self.total_searches = 0
        self.rows_written = 0

    # ------------------------------------------------------------ allocation
    def alloc_bank(self) -> int:
        """Allocate a new bank; raises when the spec caps banks."""
        if self.spec.banks is not None and len(self._banks) >= self.spec.banks:
            raise AllocationError(
                f"machine is capped at {self.spec.banks} banks"
            )
        self._banks.append(0)
        return len(self._banks) - 1

    def alloc_mat(self, bank: int) -> int:
        """Allocate a mat inside ``bank``."""
        if not 0 <= bank < len(self._banks):
            raise AllocationError(f"no such bank: {bank}")
        if self._banks[bank] >= self.spec.mats_per_bank:
            raise AllocationError(
                f"bank {bank} already has {self.spec.mats_per_bank} mats"
            )
        self._banks[bank] += 1
        self._mats.append((bank, 0))
        return len(self._mats) - 1

    def alloc_array(self, mat: int) -> int:
        """Allocate a CAM array inside ``mat``."""
        if not 0 <= mat < len(self._mats):
            raise AllocationError(f"no such mat: {mat}")
        bank, arrays = self._mats[mat]
        if arrays >= self.spec.arrays_per_mat:
            raise AllocationError(
                f"mat {mat} already has {self.spec.arrays_per_mat} arrays"
            )
        self._mats[mat] = (bank, arrays + 1)
        self._arrays.append((mat, 0))
        return len(self._arrays) - 1

    def alloc_subarray(self, array: int) -> int:
        """Allocate a subarray inside ``array``."""
        if not 0 <= array < len(self._arrays):
            raise AllocationError(f"no such array: {array}")
        mat, subs = self._arrays[array]
        if subs >= self.spec.subarrays_per_array:
            raise AllocationError(
                f"array {array} already has "
                f"{self.spec.subarrays_per_array} subarrays"
            )
        self._arrays[array] = (mat, subs + 1)
        sub_id = len(self._subarrays)
        self._subarrays[sub_id] = SubarrayState(
            self.spec.rows, self.spec.cols, sub_id
        )
        self._sub_parent[sub_id] = array
        return sub_id

    def subarray(self, sub_id: int) -> SubarrayState:
        """The functional state of subarray ``sub_id``."""
        return self._subarrays[sub_id]

    # ------------------------------------------------------------ operations
    def write_value(
        self, sub_id: int, data: np.ndarray, row_offset: int = 0, at: float = 0.0
    ) -> float:
        """Program patterns; returns the write duration (ns)."""
        sub = self._subarrays[sub_id]
        rows = sub.write(data, row_offset)
        duration = self.tech.write_latency(self.spec, rows)
        energy = self.tech.write_energy(self.spec, rows)
        self.energy.write += energy
        self.rows_written += rows
        self.trace.record(
            "write", f"subarray:{sub_id}", at, duration, energy,
            f"rows={rows} offset={row_offset}",
        )
        return duration

    def erase(
        self, sub_id: int, row_offset: int = 0, row_count: int = 1,
        at: float = 0.0,
    ) -> float:
        """Tombstone rows (clear their valid bits); returns the duration.

        Erasing drives the same write port as programming, so latency and
        energy are charged per touched row like :meth:`write_value`.
        """
        sub = self._subarrays[sub_id]
        sub.invalidate(row_offset, row_count)
        duration = self.tech.write_latency(self.spec, row_count)
        energy = self.tech.write_energy(self.spec, row_count)
        self.energy.write += energy
        self.rows_written += row_count
        self.trace.record(
            "erase", f"subarray:{sub_id}", at, duration, energy,
            f"rows={row_count} offset={row_offset}",
        )
        return duration

    def search(
        self,
        sub_id: int,
        query: np.ndarray,
        search_type: str = "best",
        metric: str = "hamming",
        row_begin: int = 0,
        row_count: int = -1,
        accumulate: bool = False,
        at: float = 0.0,
    ) -> float:
        """Search one subarray; returns the phase duration (ns).

        ``query`` is one query (``C``) or a batch (``B×C``).  A batch
        streams serially through the match lines — duration and energy
        scale by ``B`` — but the functional scores for the whole batch
        are computed in one vectorized step and latched per query.
        """
        sub = self._subarrays[sub_id]
        query = np.asarray(query)
        n_queries = query.shape[0] if query.ndim > 1 else 1
        noise = None
        if self.noise_sigma > 0.0:
            # ML sensing noise grows with the discharge path length (~√C).
            scale = self.noise_sigma * np.sqrt(query.shape[-1])
            noise = lambda shape: self._noise_rng.normal(
                0.0, scale, size=shape
            )
        _scores, active_rows = sub.search(
            query, metric, row_begin, row_count, accumulate, noise=noise
        )
        selective = accumulate or row_begin > 0
        duration = n_queries * self.tech.search_phase_latency(
            self.spec, selective
        )
        energy = n_queries * self.tech.search_energy(
            self.spec, active_rows, accumulate
        )
        self.energy.search += energy
        self.total_searches += n_queries
        self.trace.record(
            "search", f"subarray:{sub_id}", at, duration, energy,
            f"type={search_type} metric={metric} rows={active_rows} "
            f"queries={n_queries}",
        )
        return duration

    def read(
        self, sub_id: int, rows: int, at: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Read results of the last search: (values, indices, duration)."""
        values, indices, duration = self.read_batch(sub_id, rows, at=at)
        return values[0], indices, duration

    def read_batch(
        self, sub_id: int, rows: int, at: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Read the whole latch bank of the last (batched) search.

        Returns ``(B×rows values, local indices, duration)``; duration
        and energy are charged once per latched query.
        """
        sub = self._subarrays[sub_id]
        values, indices = sub.read_batch(rows)
        n_queries = values.shape[0]
        duration = n_queries * self.tech.read_latency(self.spec, rows)
        energy = n_queries * self.tech.read_energy(self.spec, rows)
        self.energy.read += energy
        self.trace.record(
            "read", f"subarray:{sub_id}", at, duration, energy,
            f"rows={rows} queries={n_queries}",
        )
        return values, indices, duration

    def merge(
        self, level: str, rows: int, at: float = 0.0, n_queries: int = 1
    ) -> float:
        """Merge partial scores across one hierarchy hop; returns duration.

        ``n_queries`` repeats the hop for a streamed query batch (energy
        and duration scale linearly).
        """
        duration = n_queries * self.tech.merge_latency(level)
        energy = n_queries * self.tech.merge_energy(level, rows)
        self.energy.merge += energy
        self.trace.record("merge", level, at, duration, energy, f"rows={rows}")
        return duration

    def select_topk(
        self, scores: np.ndarray, k: int, largest: bool, at: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Final top-k selection over merged scores (host peripheral).

        The single-query row of :meth:`select_topk_batch`."""
        values, indices, duration = self.select_topk_batch(
            np.asarray(scores, dtype=np.float64).reshape(1, -1),
            k, largest, at=at,
        )
        return values[0], indices[0], duration

    def select_topk_batch(
        self, scores: np.ndarray, k: int, largest: bool, at: float = 0.0
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Per-query top-k over a ``B×P`` merged-score matrix.

        Row-for-row identical to :meth:`select_topk`; duration and energy
        are charged once per query of the batch.
        """
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        indices, values = best_match_batch(
            scores, k, prefers_larger=largest,
            wta_window=self.tech.wta_window,
        )
        n_queries, per_query = scores.shape
        duration = n_queries * self.tech.host_topk_latency(per_query)
        energy = n_queries * self.tech.host_topk_energy(per_query)
        self.energy.host += energy
        self.trace.record(
            "select_topk", "host", at, duration, energy,
            f"k={k} queries={n_queries}",
        )
        return values, indices, duration

    def frontend_latency(self) -> float:
        """Per-query front-end setup latency (ns)."""
        return self.tech.frontend_latency(self.spec)

    def begin_query(self) -> None:
        """Reset per-query accumulators/latches in every subarray."""
        for sub in self._subarrays.values():
            sub.clear_scores()

    def reset_query_state(self) -> None:
        """Forget all query-side activity, keeping the programmed patterns.

        Zeroes the non-write energy, the search counters and every
        subarray's latches; write energy (pattern programming) survives.
        A :class:`~repro.runtime.session.QuerySession` calls this after
        its setup walk so per-batch reports account only their own
        queries.
        """
        write = self.energy.write
        self.energy = EnergyBreakdown(write=write)
        self.total_searches = 0
        for sub in self._subarrays.values():
            sub.clear_scores()
            sub.searches = 0

    def reseed_noise(self, seed) -> None:
        """Re-seed the sensing-noise RNG (per-call decorrelation)."""
        self._noise_rng = np.random.default_rng(seed)

    # --------------------------------------------------------------- report
    @property
    def banks_used(self) -> int:
        return len(self._banks)

    @property
    def mats_used(self) -> int:
        return len(self._mats)

    @property
    def arrays_used(self) -> int:
        return len(self._arrays)

    @property
    def subarrays_used(self) -> int:
        return len(self._subarrays)

    def powered_subarrays(self) -> int:
        """Subarrays drawing standby power.

        The cam-power configurations gate all but one subarray per array
        (that is their power-saving mechanism), so only one subarray per
        allocated array is powered at any time.
        """
        if self.spec.optimization_target in ("power", "power+density"):
            return self.arrays_used
        return self.subarrays_used

    def standby_duty(self, array_begin: int = 0, array_count: int = -1) -> float:
        """Fraction of the time peripherals draw standby power.

        The power configurations aggressively clock-gate the periphery
        while a serialized phase is waiting (that is the mechanism behind
        their power savings), so standby is drawn for roughly one phase
        out of the serialized schedule.

        ``array_begin``/``array_count`` scope the occupancy to a slice
        of the allocated arrays — a colocated tenant's duty depends on
        *its own* subarray occupancy, not its co-tenants' (the default
        covers the whole machine).
        """
        if self.spec.optimization_target not in ("power", "power+density"):
            return 1.0
        arrays = self._arrays[array_begin:]
        if array_count >= 0:
            arrays = arrays[:array_count]
        occupancy = max((subs for _mat, subs in arrays), default=1)
        return 1.0 / max(occupancy, 1)

    def chip_area_mm2(self) -> float:
        """Silicon area of the allocated hierarchy (mm²).

        Iso-capacity systems are *not* iso-area: smaller subarrays need
        more private peripheral sets (paper §IV-C2).
        """
        return self.tech.chip_area_mm2(
            self.spec,
            subarrays=self.subarrays_used,
            arrays=self.arrays_used,
            mats=self.mats_used,
            banks=self.banks_used,
        )

    def standby_energy(self, query_latency_ns: float) -> float:
        """Standby energy (pJ) drawn over ``query_latency_ns`` by the
        powered hierarchy — shared by :meth:`finish` and the per-batch
        reports of :class:`~repro.runtime.session.QuerySession`."""
        standby_mw = self.tech.standby_power(
            self.spec,
            subarrays=self.powered_subarrays(),
            arrays=self.arrays_used,
            mats=self.mats_used,
            banks=self.banks_used,
        )
        return standby_mw * query_latency_ns * self.standby_duty()

    def finish(
        self, query_latency_ns: float, setup_latency_ns: float = 0.0
    ) -> ExecutionReport:
        """Close the execution: add standby energy, emit the report."""
        standby = self.standby_energy(query_latency_ns)
        energy = EnergyBreakdown(**self.energy.as_dict())
        energy.standby += standby
        max_cycles = max(
            (s.searches for s in self._subarrays.values()), default=0
        )
        return ExecutionReport(
            query_latency_ns=query_latency_ns,
            setup_latency_ns=setup_latency_ns,
            energy=energy,
            banks_used=self.banks_used,
            mats_used=self.mats_used,
            arrays_used=self.arrays_used,
            subarrays_used=self.subarrays_used,
            searches=self.total_searches,
            search_cycles=max_cycles,
            rows_written=self.rows_written,
            spec=self.spec,
        )
