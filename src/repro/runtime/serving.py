"""Replicated sessions and the async micro-batching serving engine.

PR 1 made the CAM a program-once / query-many device
(:class:`~repro.runtime.session.QuerySession`) and PR 2 scaled stored
*capacity* past one machine
(:class:`~repro.runtime.sharding.ShardedSession`) — but the runtime
still served one synchronous batch at a time from a single copy of the
store.  This module adds the *throughput* axis, the way asynchronous
memory-access designs (AMU) decouple request issue from completion on
fixed-latency hardware and hybrid data planes route each request to the
best path:

* :class:`ReplicatedSession` — R independently programmed **replicas**
  of one (possibly sharded) store.  Replicas are cloned from the
  compiled session (``clone()``: same lowered modules, plans and query
  programs — nothing recompiles; only the per-copy machine programming
  that real replicated hardware genuinely pays).  Each batch routes to
  the least-loaded replica; per-replica "lane" accounting merges into an
  honest concurrent report
  (:func:`~repro.simulator.metrics.merge_concurrent_reports`): energy
  and silicon scale with R, wall time is the longest lane, and
  ``throughput_qps`` reflects the concurrency replication buys.
* :class:`ServingEngine` — an asynchronous front door.  Clients
  ``submit()`` single queries or small batches and get a
  :class:`~concurrent.futures.Future` back immediately; a dispatcher
  thread coalesces queued requests into micro-batches (up to
  ``max_batch`` rows, waiting at most ``max_wait`` seconds to fill one)
  and hands each micro-batch to the least-loaded lane's worker.

The engine is built from two replaceable parts so higher control planes
(:class:`~repro.runtime.cluster.Cluster`) can reuse its worker/future
plumbing wholesale:

* a **request intake** forms micro-batches.  :class:`FifoIntake` (the
  default) coalesces in arrival order; :class:`PriorityIntake` orders
  by ``priority`` (higher first) then earliest ``deadline``
  (EDF-within-priority) then submission order.  Either way a
  micro-batch only ever holds requests of **one** tenant.
* **serving lanes** (one backend copy + one worker thread each) can be
  added and retired at runtime (``add_lane`` / ``remove_lane``) — the
  mechanism a queue-depth autoscaler grows and shrinks per-tenant
  capacity with.  A lane may carry a tenant affinity (it serves only
  that tenant's batches) and a machine lock (colocated backends of one
  physical machine serialize, like the hardware).

**Identity guarantee** — with device noise disabled, the values/indices
a future resolves to are *bitwise identical* to calling the underlying
session's ``run_batch`` directly on that request's rows, regardless of
how requests were coalesced, prioritised or which lane served them:
every lane of a store is programmed with the same patterns, and
match-line scores are row-local, so grouping cannot change any
per-query result.  (With ``noise_sigma > 0`` replicas draw decorrelated
noise streams and the guarantee intentionally does not hold.)

Scheduling is wall-clock-real but device time is simulated; the optional
``time_scale`` knob (wall seconds per simulated nanosecond) makes each
worker *hold* its lane for the micro-batch's simulated latency, so
wall-clock experiments (e.g. ``benchmarks/test_serving_throughput.py``)
see the fixed-latency-device behaviour the paper's hardware would have.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.simulator.metrics import (
    ExecutionReport,
    merge_concurrent_reports,
)

from .backend import ClusterShutdown, ExecutionBackend, LaneStats, SessionError
from .machineview import MachineGroupView

__all__ = [
    "FifoIntake",
    "LaneStats",
    "PriorityIntake",
    "ReplicatedSession",
    "ServingEngine",
]


# ----------------------------------------------------------- replication
class ReplicatedSession(ExecutionBackend, MachineGroupView):
    """R independently programmed copies of one store, for throughput.

    Wraps a compiled :class:`~repro.runtime.session.QuerySession` or
    :class:`~repro.runtime.sharding.ShardedSession` and clones it
    ``num_replicas - 1`` times — sharing every compiled artifact,
    programming a fresh machine (or machine group) per copy.  Unlike
    sharding, every replica holds the *whole* store: replication buys
    concurrent serving capacity, not rows.

    :meth:`run_batch` keeps the synchronous session contract (identical
    results, per-batch ``last_report``) while routing each batch to the
    replica with the least accumulated simulated busy time;
    :meth:`run_on` pins a batch to an explicit replica (the
    :class:`ServingEngine` routes by queue depth and calls this).
    :meth:`report` merges the per-replica lanes into one concurrent
    deployment report — energy/area scale with R, latency is the longest
    lane, ``throughput_qps`` reflects the added concurrency.

    The object is also the aggregate machine view over every replica
    machine (for :func:`repro.simulator.analysis.utilization` /
    ``format_report``), mirroring ``ShardedSession``.
    """

    def __init__(self, base, num_replicas: int):
        if num_replicas < 1:
            raise SessionError("a replicated session needs >= 1 replica")
        if not hasattr(base, "clone"):
            raise SessionError(
                "the base session cannot be replicated: it does not "
                "support clone() (need a QuerySession or ShardedSession)"
            )
        self.replicas = [base]
        for _ in range(num_replicas - 1):
            self.replicas.append(base.clone())
        self.spec = base.spec
        self.tech = base.tech
        self._lock = threading.Lock()
        self._lanes = [LaneStats(replica) for replica in self.replicas]
        self.last_report: Optional[ExecutionReport] = None
        self.batches_run = 0

    # ------------------------------------------------------------ topology
    #: Aggregate machine view (:class:`MachineGroupView`): counters and
    #: silicon span every replica — R copies really occupy R machines.
    _group_noun = "replica set"

    @property
    def num_replicas(self) -> int:
        return len(self.replicas)

    @property
    def machines(self) -> List:
        """Every physical machine across all replicas (shards included)."""
        out = []
        for replica in self.replicas:
            group = getattr(replica, "machines", None)
            if group is not None:
                out.extend(group)
            else:
                out.append(replica.machine)
        return out

    # ------------------------------------------------------- protocol bits
    def query_width(self, tenant: Optional[str] = None) -> Optional[int]:
        """Delegates to the base replica (every copy serves the same
        store, so they all share one width map)."""
        return self.replicas[0].query_width(tenant)

    def tenant_widths(self) -> Optional[Dict[str, int]]:
        return self.replicas[0].tenant_widths()

    def setup_report(self) -> ExecutionReport:
        """Zero-query baseline: replicas program in parallel, every
        copy's write energy and silicon is paid."""
        return merge_concurrent_reports(
            [replica.setup_report() for replica in self.replicas]
        )

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Clear query-side state on every replica; patterns survive."""
        for replica in self.replicas:
            replica.reset()
        with self._lock:
            self._lanes = [LaneStats(r) for r in self.replicas]
            self.last_report = None
            self.batches_run = 0

    # ------------------------------------------------------------- queries
    def run_on(
        self, index: int, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Serve one batch on replica ``index``; records its lane.

        Concurrent calls are safe for *distinct* indices (the engine
        runs one worker per replica); a single replica must serve its
        batches serially, like the hardware it models.  ``tenant``
        routes the batch to that tenant's store when the replicas are
        multi-tenant fleets
        (:class:`~repro.runtime.placement.MultiTenantSession`).
        """
        replica = self.replicas[index]
        outputs = replica.run_batch(queries, tenant=tenant)
        report = replica.last_report
        with self._lock:
            self._lanes[index].add(report)
            self.last_report = report
            self.batches_run += 1
        return outputs

    def run_batch(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[np.ndarray]:
        """Serve one batch on the least-loaded replica (synchronous).

        Load is the lane's accumulated simulated busy time, so a stream
        of equal batches round-robins and unequal batches rebalance;
        ties break to the lowest replica index.  Results and the
        per-batch ``last_report`` are exactly what the base session
        would produce.
        """
        with self._lock:
            index = min(
                range(len(self.replicas)),
                key=lambda i: (self._lanes[i].latency_ns, i),
            )
        return self.run_on(index, queries, tenant=tenant)

    # ------------------------------------------------------------ mutations
    # Store mutations apply to *every* replica: clones share the initial
    # store and id assignment is deterministic (ids are handed out in
    # call order), so the same mutation sequence keeps all copies — and
    # their id spaces — identical.
    @property
    def pattern_count(self) -> int:
        return self.replicas[0].pattern_count

    def row_ids(self) -> List[int]:
        return self.replicas[0].row_ids()

    def insert(self, patterns) -> List[int]:
        """Append patterns on every replica; one id list (identical
        across copies) comes back."""
        ids = [replica.insert(patterns) for replica in self.replicas]
        return ids[0]

    def delete(self, ids) -> None:
        for replica in self.replicas:
            replica.delete(ids)

    def update(self, pattern_id: int, pattern) -> None:
        for replica in self.replicas:
            replica.update(pattern_id, pattern)

    def compact(self) -> int:
        return max(replica.compact() for replica in self.replicas)

    def store_state(self):
        return self.replicas[0].store_state()

    def restore(self, state) -> None:
        for replica in self.replicas:
            replica.restore(state)

    # -------------------------------------------------------------- report
    def lane_reports(self) -> List[ExecutionReport]:
        """One serialized report per replica lane (setup charged once)."""
        with self._lock:
            return [lane.report() for lane in self._lanes]

    def report(self) -> ExecutionReport:
        """The concurrent deployment report across all replica lanes."""
        return merge_concurrent_reports(self.lane_reports())

    def tenant_report(self, tenant_id: str) -> ExecutionReport:
        """One tenant's view across every replica of a multi-tenant
        deployment: the tenant's traffic split over R fleets serves
        concurrently, so its lanes merge like replica lanes."""
        if not hasattr(self.replicas[0], "tenant_report"):
            raise SessionError(
                "the replicas are not multi-tenant sessions; use report()"
            )
        return merge_concurrent_reports(
            [replica.tenant_report(tenant_id) for replica in self.replicas]
        )


# --------------------------------------------------------------- requests
class _Request:
    """One queued client request: rows, tenant, urgency and its future.

    The ``t_*`` fields are wall-clock tracing stamps
    (``time.perf_counter``) the serving path fills in as the request
    flows through it: submitted -> pulled into a forming micro-batch
    (``t_coalesce``) -> batch closed and dispatched to a lane
    (``t_dispatch``) -> served by the backend (``t_serve_end``) ->
    result slice resolved into the future (``t_done``).  They feed
    :meth:`ServingEngine.trace_summary`'s per-phase percentiles — the
    queue-vs-service split the placement cost model calibrates against.
    """

    __slots__ = (
        "queries", "rows", "future", "tenant", "priority", "deadline", "seq",
        "t_submit", "t_coalesce", "t_dispatch", "t_serve_start",
        "t_serve_end", "t_done",
    )
    _seq = itertools.count()

    def __init__(
        self,
        queries: np.ndarray,
        tenant: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ):
        self.queries = queries
        self.rows = queries.shape[0]
        self.future: Future = Future()
        self.tenant = tenant
        self.priority = int(priority)
        #: Absolute monotonic-clock deadline (None = none).
        self.deadline = (
            None if deadline is None else time.monotonic() + float(deadline)
        )
        self.seq = next(self._seq)
        self.t_submit = time.perf_counter()
        self.t_coalesce: Optional[float] = None
        self.t_dispatch: Optional[float] = None
        self.t_serve_start: Optional[float] = None
        self.t_serve_end: Optional[float] = None
        self.t_done: Optional[float] = None

    @property
    def sort_key(self) -> Tuple[float, float, int]:
        """Higher priority first, then EDF, then submission order."""
        return (
            -self.priority,
            float("inf") if self.deadline is None else self.deadline,
            self.seq,
        )

    def spans(self) -> Dict[str, float]:
        """Per-phase durations in seconds (only the stamped ones):
        ``queue`` (waiting in the intake), ``coalesce`` (riding a
        forming micro-batch), ``run`` (lane inbox + backend service),
        ``merge`` (splitting the batch result and resolving)."""
        out: Dict[str, float] = {}
        if self.t_coalesce is not None:
            out["queue"] = self.t_coalesce - self.t_submit
            if self.t_dispatch is not None:
                out["coalesce"] = self.t_dispatch - self.t_coalesce
                if self.t_serve_end is not None:
                    out["run"] = self.t_serve_end - self.t_dispatch
                    if self.t_done is not None:
                        out["merge"] = self.t_done - self.t_serve_end
                        out["total"] = self.t_done - self.t_submit
        return out


_SHUTDOWN = object()


# ---------------------------------------------------------------- intakes
class FifoIntake:
    """The default request source: arrival order, tenant-pure batches.

    A micro-batch closes when it holds ``max_batch`` query rows or
    ``max_wait`` seconds passed since its first request; a request that
    would overflow the cap — or that belongs to a different tenant than
    the batch — is held over and seeds the next micro-batch instead.
    ``priority``/``deadline`` on requests are carried but not honoured
    (use :class:`PriorityIntake` for that).
    """

    def __init__(self):
        self._queue: queue.Queue = queue.Queue()
        self._holdover: Optional[_Request] = None
        self._stopped = False

    def put(self, request: _Request) -> None:
        self._queue.put(request)

    def close(self) -> None:
        self._queue.put(_SHUTDOWN)

    def drain(self) -> List[_Request]:
        """Remove and return every still-queued request (shutdown)."""
        drained = []
        if self._holdover is not None:
            drained.append(self._holdover)
            self._holdover = None
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not _SHUTDOWN:
                drained.append(item)

    def next_batch(self, max_batch: int, max_wait: float):
        """The next micro-batch ``(requests, rows)``; None at shutdown."""
        if self._stopped:
            return None
        first = (
            self._holdover if self._holdover is not None
            else self._queue.get()
        )
        self._holdover = None
        if first is _SHUTDOWN:
            self._stopped = True
            return None
        first.t_coalesce = time.perf_counter()
        batch = [first]
        rows = first.rows
        deadline = time.monotonic() + max_wait
        while rows < max_batch:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                break
            try:
                nxt = self._queue.get(timeout=timeout)
            except queue.Empty:
                break
            if nxt is _SHUTDOWN:
                self._stopped = True
                break
            if nxt.tenant != first.tenant:
                # Never mix tenants in one micro-batch: the next
                # request seeds its own batch instead.
                self._holdover = nxt
                break
            if rows + nxt.rows > max_batch:
                self._holdover = nxt  # seeds the next micro-batch
                break
            nxt.t_coalesce = time.perf_counter()
            batch.append(nxt)
            rows += nxt.rows
        return batch, rows


class PriorityIntake:
    """Priority/deadline-ordered request source (cluster dispatch).

    The most urgent pending request — highest ``priority``, then
    earliest ``deadline`` (EDF within a priority class), then earliest
    submission — seeds each micro-batch; coalescing then pulls further
    pending requests of the *same tenant* in the same urgency order
    (skipping any that would overflow ``max_batch``; they stay queued),
    waiting up to ``max_wait`` seconds for the batch to fill.  Batches
    never mix tenants, so one control plane multiplexes every colocated
    kernel without a query of one store ever riding another's search.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._entries: List[Tuple[tuple, _Request]] = []
        # Per-tenant queued-row totals, kept in lockstep with the heap:
        # pending_rows() runs on every submit (the autoscaler's signal)
        # and must not rescan a deep backlog each time.
        self._rows: Dict[Optional[str], int] = {}
        self._closed = False

    def _account(self, request: _Request, delta: int) -> None:
        total = self._rows.get(request.tenant, 0) + delta * request.rows
        if total > 0:
            self._rows[request.tenant] = total
        else:
            self._rows.pop(request.tenant, None)

    def put(self, request: _Request) -> None:
        with self._cond:
            if self._closed:
                raise SessionError("the request intake is closed")
            heapq.heappush(self._entries, (request.sort_key, request))
            self._account(request, +1)
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pending_rows(self, tenant: Optional[str] = None) -> int:
        """Queued (not yet dispatched) rows, optionally one tenant's —
        the queue-depth signal the cluster autoscaler watches."""
        with self._cond:
            if tenant is None:
                return sum(self._rows.values())
            return self._rows.get(tenant, 0)

    def drain(self) -> List[_Request]:
        """Remove and return every still-queued request (shutdown)."""
        with self._cond:
            drained = [request for _key, request in self._entries]
            self._entries = []
            self._rows = {}
            return drained

    def drain_tenant(self, tenant: str) -> List[_Request]:
        """Remove and return one tenant's queued requests (eviction)."""
        with self._cond:
            keep, gone = [], []
            for entry in self._entries:
                (gone if entry[1].tenant == tenant else keep).append(entry)
            self._entries = keep
            heapq.heapify(self._entries)
            self._rows.pop(tenant, None)
            return [request for _key, request in gone]

    def next_batch(self, max_batch: int, max_wait: float):
        """The next micro-batch ``(requests, rows)``; None at shutdown."""
        with self._cond:
            while not self._entries:
                if self._closed:
                    return None
                self._cond.wait()
            _key, first = heapq.heappop(self._entries)
            self._account(first, -1)
            first.t_coalesce = time.perf_counter()
            batch = [first]
            rows = first.rows
            deadline = time.monotonic() + max_wait
            while rows < max_batch:
                rows = self._take_same_tenant(batch, rows, max_batch)
                if rows >= max_batch or self._closed:
                    break
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                self._cond.wait(timeout=timeout)
            return batch, rows

    def _take_same_tenant(
        self, batch: List[_Request], rows: int, max_batch: int
    ) -> int:
        """Move fitting same-tenant entries into ``batch``, most urgent
        first.  Caller holds the condition lock."""
        tenant = batch[0].tenant
        chosen = []
        for entry in sorted(
            (e for e in self._entries if e[1].tenant == tenant),
            key=lambda e: e[0],
        ):
            if rows + entry[1].rows <= max_batch:
                chosen.append(entry)
                entry[1].t_coalesce = time.perf_counter()
                batch.append(entry[1])
                rows += entry[1].rows
                if rows >= max_batch:
                    break
        if chosen:
            taken = {id(entry) for entry in chosen}
            self._entries = [
                entry for entry in self._entries if id(entry) not in taken
            ]
            heapq.heapify(self._entries)
            for entry in chosen:
                self._account(entry[1], -1)
        return rows


# ------------------------------------------------------------------ lanes
class _Lane:
    """One serving lane: a backend copy, its worker thread and queue."""

    __slots__ = (
        "backend", "serve", "tenant", "lock", "inbox", "thread",
        "outstanding", "busy_until", "rows_dispatched", "alive",
        "retire_error",
    )

    def __init__(self, backend, serve, tenant, lock):
        self.backend = backend
        self.serve = serve            # (queries, tenant) -> result
        self.tenant = tenant          # affinity: None serves any tenant
        # Machine lock for colocated backends; a private lock otherwise.
        # Every lane serves under its lock so store mutations
        # (ServingEngine.mutate) serialize against in-flight batches.
        self.lock = lock if lock is not None else threading.Lock()
        self.inbox: queue.Queue = queue.Queue()
        self.thread: Optional[threading.Thread] = None
        self.outstanding = 0          # dispatched, unfinished rows
        self.busy_until = 0.0         # wall-clock pacing book
        self.rows_dispatched = 0
        self.alive = True
        self.retire_error: Optional[BaseException] = None


def _percentile(ordered: List[float], pct: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _array_root(array: np.ndarray) -> np.ndarray:
    """The owning array at the bottom of a view's ``base`` chain."""
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def _rowaligned_view(arrays: List[np.ndarray]) -> Optional[np.ndarray]:
    """One view spanning ``arrays`` when they are adjacent row slices.

    Requests produced by slicing one buffer (``engine.map`` submitting
    consecutive rows) arrive as views whose row data sits back-to-back
    in a single owning array.  When every piece is a C-contiguous 2-D
    view of the *same* root buffer, same dtype and width, and their
    data pointers tile without gaps, the coalesced batch is just a
    longer view starting at the first piece — no copy.  Anything else
    returns ``None`` (the caller concatenates).  The returned view's
    ``base`` chain keeps the root alive, and staying inside one root
    buffer is what makes the strided extension memory-safe.
    """
    first = arrays[0]
    if first.ndim != 2 or not first.flags["C_CONTIGUOUS"]:
        return None
    root = _array_root(first)
    rows, cols = first.shape
    end = first.__array_interface__["data"][0] + first.nbytes
    for array in arrays[1:]:
        if (
            array.ndim != 2
            or array.shape[1] != cols
            or array.dtype != first.dtype
            or not array.flags["C_CONTIGUOUS"]
            or _array_root(array) is not root
            or array.__array_interface__["data"][0] != end
        ):
            return None
        end += array.nbytes
        rows += array.shape[0]
    # Explicit dense strides: a single-row view can carry a 0 stride on
    # its leading axis (np.atleast_2d's new axis) while still being
    # flagged C-contiguous, and extending that stride would repeat one
    # row instead of walking the buffer.
    itemsize = first.itemsize
    return np.lib.stride_tricks.as_strided(
        first, shape=(rows, cols), strides=(cols * itemsize, itemsize)
    )


def _default_split(result, lo: int, hi: int):
    """Slice a ``run_batch``-shaped result (arrays over the batch dim)."""
    if isinstance(result, np.ndarray):
        return result[lo:hi]
    if isinstance(result, (list, tuple)):
        return type(result)(part[lo:hi] for part in result)
    raise TypeError(
        f"cannot split a {type(result).__name__} result across requests; "
        "pass an explicit split= function to the ServingEngine"
    )


def _probe_widths(backend):
    """(tenant-width map, single width) via the protocol, duck-typed.

    Raw list backends (e.g. the pattern-matcher adapters) predate the
    protocol; they fall back to a ``features`` attribute or simply let
    the first request pin the width.
    """
    tenant_widths = getattr(backend, "tenant_widths", None)
    if callable(tenant_widths):
        tenants = tenant_widths()
        if tenants is not None:
            return dict(tenants), None
    else:
        tenants = getattr(backend, "tenant_features", None)
        if isinstance(tenants, dict):
            return dict(tenants), None
    query_width = getattr(backend, "query_width", None)
    if callable(query_width):
        return None, query_width()
    features = getattr(backend, "features", None)
    return None, features if isinstance(features, int) else None


# -------------------------------------------------------------- the engine
class ServingEngine:
    """Async front door: queue in, micro-batches out, futures back.

    ``session`` is what to serve on: a :class:`ReplicatedSession` (the
    usual case), a bare ``QuerySession``/``ShardedSession`` (wrapped
    into a single-replica deployment), or an explicit list of replica
    backends — any objects with ``run_batch(queries)`` (used by
    :meth:`repro.apps.matching.PatternMatcher.serve`, whose results are
    per-query lists rather than stacked arrays; such backends pass a
    matching ``split``).

    Three kinds of thread cooperate:

    * **clients** call :meth:`submit` (thread-safe, non-blocking) and
      hold the returned future;
    * one **dispatcher** pulls micro-batches from the intake
      (:class:`FifoIntake` by default; pass ``intake=PriorityIntake()``
      for priority/deadline dispatch) and assigns each batch to the
      eligible lane with the fewest outstanding rows;
    * one **worker per lane** serves its queue in order, optionally
      holds the lane for the batch's simulated latency (``time_scale``
      wall-seconds per simulated ns), then resolves each request's
      future with its slice of the batch result.

    :meth:`shutdown` drains in-flight work (``wait=True``, the default —
    every already-submitted future resolves), aborts it (``wait=False``
    — unserved futures are cancelled), or aborts with an explicit error
    (``abort=True`` — unserved futures raise
    :class:`~repro.runtime.backend.ClusterShutdown`, so clients can
    tell a control-plane decision from a cancellation); either way the
    engine refuses new submissions afterwards.  The engine is a context
    manager: a clean ``with`` exit drains, an exceptional one aborts.
    """

    def __init__(
        self,
        session,
        max_batch: int = 32,
        max_wait: float = 0.002,
        time_scale: float = 0.0,
        split: Optional[Callable] = None,
        intake=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be a positive row count")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0 seconds")
        self.session = None
        backends: List = []
        if session is None:
            # A control plane (the cluster) attaches lanes itself via
            # add_lane() and registers tenant widths explicitly.
            self._tenants: Optional[Dict[str, int]] = {}
            self._features: Optional[int] = None
        elif isinstance(session, (list, tuple)):
            if not session:
                raise SessionError("the engine needs at least one replica")
            backends = list(session)
        else:
            if not hasattr(session, "run_on"):
                session = ReplicatedSession(session, 1)
            self.session = session
            backends = list(session.replicas)
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.time_scale = time_scale
        self._split = split or _default_split

        if backends:
            # Feature width every request must share (requests coalesce).
            # Seeded from the backend when it knows; otherwise the first
            # request pins it.  Multi-tenant backends instead carry one
            # width per tenant, and every submit must name its tenant.
            self._tenants, self._features = _probe_widths(backends[0])

        self._intake = intake if intake is not None else FifoIntake()
        self._lock = threading.Lock()
        self._closed = False
        self._abort = False
        self._abort_error: Optional[BaseException] = None
        self._lanes: List[_Lane] = []
        self.requests_submitted = 0
        self.batches_dispatched = 0
        #: Micro-batches handed to a lane as an array view (single
        #: request, or row-aligned requests) instead of a copy.
        self.zero_copy_batches = 0
        #: Completed requests' tracing spans, newest last (bounded).
        self._trace: deque = deque(maxlen=4096)
        #: Called (with the batch's tenant) after every served batch —
        #: the completion signal a cluster autoscaler shrinks on.
        self.on_batch_done: Optional[Callable[[Optional[str]], None]] = None

        if self.session is not None:
            for index, replica in enumerate(backends):
                self._start_lane(self._session_lane(index, replica))
        else:
            for replica in backends:
                self._start_lane(self._backend_lane(replica))
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="serving-dispatch"
        )
        self._dispatcher.start()

    # -------------------------------------------------------- lane plumbing
    def _session_lane(self, index: int, replica) -> _Lane:
        """A lane pinned to ``session.run_on(index, ...)`` so the
        replicated session keeps its own lane accounting."""
        def serve(queries, tenant, _index=index):
            return self.session.run_on(_index, queries, tenant=tenant)

        return _Lane(replica, serve, tenant=None, lock=None)

    def _backend_lane(self, backend, tenant=None, lock=None) -> _Lane:
        """A lane serving ``backend.run_batch`` directly."""
        def serve(queries, request_tenant):
            if request_tenant is not None and tenant is None:
                # a tenant-routed request on a shared backend
                return backend.run_batch(queries, tenant=request_tenant)
            return backend.run_batch(queries)

        return _Lane(backend, serve, tenant=tenant, lock=lock)

    def _start_lane(self, lane: _Lane) -> _Lane:
        with self._lock:
            if self._closed:
                raise SessionError(
                    "the serving engine is shut down; no new lanes"
                )
            self._lanes.append(lane)
            index = len(self._lanes) - 1
        lane.thread = threading.Thread(
            target=self._worker_loop, args=(lane,), daemon=True,
            name=f"serving-lane-{index}",
        )
        lane.thread.start()
        return lane

    def add_lane(self, backend, tenant: Optional[str] = None,
                 lock: Optional[threading.Lock] = None,
                 serve: Optional[Callable] = None) -> _Lane:
        """Attach a new serving lane at runtime (autoscale-up).

        ``tenant`` pins the lane to one tenant's batches; ``lock``
        serializes the lane with other lanes colocated on the same
        physical machine; ``serve`` overrides the ``(queries, tenant)``
        callable (defaults to the backend's protocol ``run_batch``).
        """
        lane = (
            self._backend_lane(backend, tenant=tenant, lock=lock)
            if serve is None
            else _Lane(backend, serve, tenant=tenant, lock=lock)
        )
        return self._start_lane(lane)

    def remove_lane(
        self, lane: _Lane, error: Optional[BaseException] = None
    ) -> None:
        """Retire a lane at runtime (autoscale-down / tenant eviction).

        Already-queued batches on the lane fail with ``error`` (default
        :class:`~repro.runtime.backend.ClusterShutdown`) rather than
        being served by a backend the control plane has retired.  The
        worker thread winds down asynchronously (it may be the caller).
        """
        with self._lock:
            if not lane.alive:
                return
            lane.alive = False
            lane.retire_error = error or ClusterShutdown(
                "the serving lane was retired before this request ran"
            )
        lane.inbox.put(_SHUTDOWN)

    def lanes(self, tenant: Optional[str] = None) -> List[_Lane]:
        """The live lanes, optionally only those serving ``tenant``."""
        with self._lock:
            return [
                lane for lane in self._lanes
                if lane.alive and (tenant is None or lane.tenant == tenant)
            ]

    # ------------------------------------------------------------- clients
    @property
    def num_replicas(self) -> int:
        return len(self.lanes())

    def register_tenant(self, tenant: str, width: int) -> None:
        """Declare a tenant's query width (cluster admit)."""
        with self._lock:
            if self._tenants is None:
                self._tenants = {}
            self._tenants[tenant] = int(width)

    def drop_tenant(self, tenant: str) -> None:
        """Forget a tenant's width (cluster evict); later submits for
        it are refused at the caller."""
        with self._lock:
            if self._tenants is not None:
                self._tenants.pop(tenant, None)

    def drain_tenant(self, tenant: str, error: BaseException) -> int:
        """Fail a tenant's queued (undispatched) requests with ``error``
        (eviction); returns how many were failed.  Requires an intake
        that supports per-tenant draining (:class:`PriorityIntake`)."""
        drain = getattr(self._intake, "drain_tenant", None)
        if drain is None:
            return 0
        requests = drain(tenant)
        for request in requests:
            self._resolve(request.future.set_exception, error)
        return len(requests)

    def pending_rows(self, tenant: Optional[str] = None) -> int:
        """Queued (undispatched) rows, optionally one tenant's; 0 when
        the intake cannot tell (plain FIFO)."""
        pending = getattr(self._intake, "pending_rows", None)
        return 0 if pending is None else pending(tenant)

    def mutate(self, fn: Callable, tenant: Optional[str] = None) -> List:
        """Apply a store mutation to every serving lane, safely
        interleaved with in-flight query batches.

        ``fn(backend)`` runs once per distinct lane backend (replica),
        under that lane's lock — a batch being served on the lane
        finishes first, and the lane's next batch sees the mutated
        store.  ``tenant`` restricts the mutation to lanes serving that
        tenant (its pinned lanes plus shared lanes); ``fn`` must then
        route to the tenant's store itself.  The call returning is the
        completion barrier: every lane has applied the mutation, so no
        later-submitted request can observe the old store.  Returns the
        per-backend results of ``fn``.
        """
        with self._lock:
            if self._closed:
                raise SessionError(
                    "the serving engine is shut down; no mutations"
                )
            lanes = [
                lane for lane in self._lanes
                if lane.alive
                and (tenant is None or lane.tenant in (None, tenant))
            ]
        results, seen = [], set()
        for lane in lanes:
            if id(lane.backend) in seen:
                continue
            seen.add(id(lane.backend))
            with lane.lock:
                results.append(fn(lane.backend))
        if not results:
            raise SessionError(
                f"no serving lane accepts tenant {tenant!r}; "
                "nothing to mutate"
            )
        return results

    def submit(
        self,
        queries: np.ndarray,
        tenant: Optional[str] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> Future:
        """Enqueue one request (a single ``D`` query or a small ``B×D``
        batch); returns its future immediately.

        The future resolves to the request's own rows of the batch
        result — for session backends, ``[values, indices]`` arrays with
        leading dimension ``B`` (1 for a single query) — bitwise what
        ``run_batch`` on exactly these rows returns.  It raises the
        serving error if the backend failed, and is cancelled if the
        engine shuts down with ``wait=False`` before serving it.

        ``priority`` (higher = more urgent, default 0) and ``deadline``
        (seconds from now; requests with earlier deadlines dispatch
        first within a priority class) order dispatch when the engine
        runs a :class:`PriorityIntake`; the default FIFO intake carries
        them but serves in arrival order.

        Over a multi-tenant fleet every request names its ``tenant``;
        the dispatcher only coalesces requests of the same tenant into a
        micro-batch, so one serving fleet multiplexes all the colocated
        kernels without ever mixing their queries.
        """
        batch = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if batch.ndim != 2 or batch.shape[0] == 0:
            raise ValueError(
                "submit() takes one 1-D query or a non-empty 2-D batch"
            )
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be >= 0 seconds from now")
        request = _Request(
            batch, tenant=tenant, priority=priority, deadline=deadline
        )
        with self._lock:
            if self._closed:
                raise SessionError(
                    "the serving engine is shut down; no new requests"
                )
            if self._tenants is not None:
                # Multi-tenant backend: the tenant picks the store (and
                # its feature width).
                if tenant is None:
                    raise SessionError(
                        "this engine serves a multi-tenant fleet; pass "
                        "submit(queries, tenant=...) with one of "
                        f"{sorted(self._tenants)}"
                    )
                if tenant not in self._tenants:
                    raise SessionError(
                        f"no tenant {tenant!r} on this fleet; tenants: "
                        f"{sorted(self._tenants)}"
                    )
                if batch.shape[1] != self._tenants[tenant]:
                    raise ValueError(
                        f"query width {batch.shape[1]} does not match "
                        f"tenant {tenant!r}'s feature dimension "
                        f"{self._tenants[tenant]}"
                    )
            elif tenant is not None:
                raise SessionError(
                    "this engine's backend is single-tenant; submit "
                    "without a tenant id"
                )
            # All coalescable requests must share one feature width —
            # reject misfits here, at the caller, instead of poisoning a
            # whole micro-batch later.
            elif self._features is None:
                self._features = batch.shape[1]
            elif batch.shape[1] != self._features:
                raise ValueError(
                    f"query width {batch.shape[1]} does not match this "
                    f"engine's feature dimension {self._features}"
                )
            self.requests_submitted += 1
            self._intake.put(request)
        return request.future

    def map(
        self, queries: np.ndarray, tenant: Optional[str] = None
    ) -> List[Future]:
        """Submit every row of ``queries`` as its own request."""
        batch = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        return [self.submit(row, tenant=tenant) for row in batch]

    # ---------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            item = self._intake.next_batch(self.max_batch, self.max_wait)
            if item is None:
                break
            self._dispatch(*item)

    def _dispatch(self, batch: List[_Request], rows: int) -> None:
        tenant = batch[0].tenant
        # Zero-copy handoff: a single-request batch passes its array
        # straight through, and row-aligned requests (consecutive
        # slices of one buffer) coalesce into a view; only genuinely
        # scattered requests pay the concatenation copy.
        zero_copy = True
        if len(batch) == 1:
            queries = batch[0].queries
        else:
            queries = _rowaligned_view([r.queries for r in batch])
            if queries is None:
                zero_copy = False
                queries = np.concatenate(
                    [r.queries for r in batch], axis=0
                )
        dispatched = time.perf_counter()
        for request in batch:
            request.t_dispatch = dispatched
        # The alive-check and the inbox put are atomic under the engine
        # lock: remove_lane flips `alive` under the same lock before it
        # enqueues the shutdown sentinel, so a dispatched batch always
        # precedes the sentinel (the worker fails it with the lane's
        # retire error) and can never be stranded behind it.
        with self._lock:
            eligible = [
                lane for lane in self._lanes
                if lane.alive and lane.tenant in (None, tenant)
            ]
            if eligible:
                lane = min(eligible, key=lambda x: x.outstanding)
                lane.outstanding += rows
                lane.rows_dispatched += rows
                self.batches_dispatched += 1
                if zero_copy:
                    self.zero_copy_batches += 1
                lane.inbox.put((batch, queries, tenant, dispatched))
                return
            # A control-plane decision (eviction, teardown) removed the
            # last lane between queueing and dispatch.
            error = self._abort_error or ClusterShutdown(
                f"no serving lane accepts tenant {tenant!r} (it was "
                "evicted while the request was queued)"
            )
        for request in batch:
            self._resolve(request.future.set_exception, error)

    # ------------------------------------------------------------- workers
    def _pace(self, lane: _Lane, dispatched: float) -> None:
        """Book the lane's simulated batch latency on the wall clock.

        Occupancy is booked back-to-back from the *dispatch* time: a
        micro-batch that arrives while the device is still busy starts
        when it frees, so a queued lane drains at exactly its service
        rate (absolute deadlines — host scheduling jitter does not
        accumulate), while an idle lane charges the full service time
        from arrival.  This is the fixed-latency-device behaviour the
        async-serving benchmarks measure.
        """
        if self.time_scale <= 0.0:
            return
        report = getattr(lane.backend, "last_report", None)
        if report is None:
            return
        busy_s = report.query_latency_ns * self.time_scale
        target = max(dispatched, lane.busy_until) + busy_s
        lane.busy_until = target
        remaining = target - time.perf_counter()
        if remaining > 0:
            time.sleep(remaining)

    def _fail_batch(self, batch: List[_Request],
                    error: Optional[BaseException]) -> None:
        for request in batch:
            if error is None:
                request.future.cancel()
            else:
                self._resolve(request.future.set_exception, error)

    def _worker_loop(self, lane: _Lane) -> None:
        while True:
            item = lane.inbox.get()
            if item is _SHUTDOWN:
                break
            batch, queries, tenant, dispatched = item
            try:
                if self._abort:
                    self._fail_batch(batch, self._abort_error)
                    continue
                if not lane.alive:
                    # The control plane retired this lane with work
                    # still queued (eviction): fail, don't serve.
                    self._fail_batch(batch, lane.retire_error)
                    continue
                # Any failure — the backend, the pacing, or splitting
                # the result — is delivered to the batch's futures; the
                # lane itself must survive to serve later batches.
                try:
                    with lane.lock:
                        started = time.perf_counter()
                        result = lane.serve(queries, tenant)
                    self._pace(lane, dispatched)
                    served = time.perf_counter()
                    offset = 0
                    for request in batch:
                        request.t_serve_start = started
                        request.t_serve_end = served
                        piece = self._split(
                            result, offset, offset + request.rows
                        )
                        offset += request.rows
                        self._resolve(request.future.set_result, piece)
                        request.t_done = time.perf_counter()
                    self._record_trace(batch)
                except BaseException as exc:
                    for request in batch:
                        self._resolve(request.future.set_exception, exc)
            finally:
                with self._lock:
                    lane.outstanding -= sum(r.rows for r in batch)
                callback = self.on_batch_done
                if callback is not None:
                    try:
                        callback(tenant)
                    except Exception:
                        pass  # a scaling hiccup must not kill the lane

    @staticmethod
    def _resolve(setter, payload) -> None:
        try:
            setter(payload)
        except InvalidStateError:
            pass  # the client cancelled this future; nothing to deliver

    # ------------------------------------------------------------ lifecycle
    def shutdown(self, wait: bool = True, abort: bool = False) -> None:
        """Stop the engine.  Idempotent.

        ``wait=True`` (default) drains: every request submitted before
        the call is served and its future resolved before this returns.
        ``wait=False`` aborts: queued and not-yet-served requests get
        their futures cancelled; only the batches already inside a
        backend finish.  ``abort=True`` aborts like ``wait=False`` but
        delivers a :class:`~repro.runtime.backend.ClusterShutdown` to
        every still-pending future instead of a bare cancellation —
        the control-plane teardown signal (cluster shutdown, tenant
        eviction) clients can distinguish and retry elsewhere.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        if abort:
            self._abort_error = ClusterShutdown(
                "the serving engine shut down before this request ran"
            )
            wait = False
        if not wait:
            self._abort = True
        if already:
            # A later, stricter shutdown still propagates the abort;
            # the threads are already winding down.
            self._join_workers()
            return
        self._intake.close()
        self._dispatcher.join()
        if not wait:
            # Requests still sitting in the intake never reached a
            # lane: fail them the same way the workers fail theirs.
            drain = getattr(self._intake, "drain", None)
            if drain is not None:
                self._fail_batch(drain(), self._abort_error)
        with self._lock:
            lanes = list(self._lanes)
        for lane in lanes:
            lane.inbox.put(_SHUTDOWN)
        self._join_workers()

    def _join_workers(self) -> None:
        with self._lock:
            lanes = list(self._lanes)
        me = threading.current_thread()
        for lane in lanes:
            if lane.thread is not None and lane.thread is not me:
                lane.thread.join()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -------------------------------------------------------------- report
    def report(self) -> ExecutionReport:
        """The concurrent deployment report over every serving lane."""
        if self.session is not None:
            return self.session.report()
        seen, reports = set(), []
        with self._lock:
            backends = [lane.backend for lane in self._lanes]
        for backend in backends:
            if id(backend) in seen or not hasattr(backend, "report"):
                continue
            seen.add(id(backend))
            reports.append(backend.report())
        if not reports:
            raise SessionError(
                "these replica backends expose no report(); read their "
                "own accounting directly"
            )
        return merge_concurrent_reports(reports)

    def stats(self) -> dict:
        """Scheduler counters: what was submitted and how it was routed."""
        with self._lock:
            return {
                "requests_submitted": self.requests_submitted,
                "batches_dispatched": self.batches_dispatched,
                "zero_copy_batches": self.zero_copy_batches,
                "rows_dispatched": [
                    lane.rows_dispatched for lane in self._lanes
                ],
                "outstanding_rows": sum(
                    lane.outstanding for lane in self._lanes
                ),
            }

    # ------------------------------------------------------------- tracing
    def _record_trace(self, batch: List[_Request]) -> None:
        with self._lock:
            for request in batch:
                self._trace.append((request.tenant, request.spans()))

    def trace_summary(self, tenant: Optional[str] = None) -> dict:
        """Per-phase latency percentiles over recently served requests.

        Phases follow one request through the serving path:
        ``queue`` (submit -> pulled into a forming micro-batch),
        ``coalesce`` (riding the batch until it closes and dispatches),
        ``run`` (lane inbox wait + backend service + pacing),
        ``merge`` (splitting the batch result and resolving the
        future), plus ``total`` (submit -> resolved).  Values are
        wall-clock seconds; ``tenant`` restricts the summary to one
        tenant's requests.  Returns ``{"requests": N, "phases":
        {phase: {"p50": ..., "p99": ..., "mean": ...}}}`` over the most
        recent completed requests (bounded history) — the measured
        queue-vs-service split the placement cost model's congestion
        estimate is sanity-checked against.
        """
        with self._lock:
            spans = [
                span for tid, span in self._trace
                if tenant is None or tid == tenant
            ]
        phases: Dict[str, dict] = {}
        for phase in ("queue", "coalesce", "run", "merge", "total"):
            values = [span[phase] for span in spans if phase in span]
            if not values:
                continue
            ordered = sorted(values)
            phases[phase] = {
                "p50": _percentile(ordered, 50.0),
                "p99": _percentile(ordered, 99.0),
                "mean": sum(ordered) / len(ordered),
            }
        return {"requests": len(spans), "phases": phases}
