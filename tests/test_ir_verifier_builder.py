"""Verifier invariants and builder insertion-point behaviour."""

import pytest

from repro.dialects import arith as arith_d
from repro.dialects import func as func_d
from repro.dialects import scf as scf_d
from repro.ir.builder import InsertionPoint, OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.types import FunctionType
from repro.ir.verifier import VerificationError, verify


def make_func():
    m = ModuleOp()
    f = func_d.FuncOp("v", FunctionType([], []))
    m.append(f)
    return m, f


class TestVerifier:
    def test_valid_module_passes(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c = b.create(arith_d.ConstantOp, 1)
        b.create(arith_d.AddIOp, c.result, c.result)
        verify(m)

    def test_use_before_def_detected(self):
        m, f = make_func()
        c = arith_d.ConstantOp(1)
        add = arith_d.AddIOp(c.result, c.result)
        # Insert the add *before* the constant.
        f.body.append(add)
        f.body.append(c)
        with pytest.raises(VerificationError):
            verify(m)

    def test_dangling_value_detected(self):
        m, f = make_func()
        orphan = arith_d.ConstantOp(1)  # never inserted anywhere
        f.body.append(arith_d.AddIOp(orphan.result, orphan.result))
        with pytest.raises(VerificationError):
            verify(m)

    def test_terminator_must_be_last(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        b.create(func_d.ReturnOp, [])
        b.create(arith_d.ConstantOp, 1)
        with pytest.raises(VerificationError):
            verify(m)

    def test_op_verify_hook_called(self):
        m, f = make_func()
        f.attributes.pop("function_type")
        with pytest.raises(VerificationError):
            verify(m)

    def test_loop_body_sees_outer_values(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c0 = b.create(arith_d.ConstantOp, 0)
        c4 = b.create(arith_d.ConstantOp, 4)
        c1 = b.create(arith_d.ConstantOp, 1)
        loop = b.create(scf_d.ForOp, c0.result, c4.result, c1.result)
        inner = OpBuilder.at_end(loop.body)
        inner.create(arith_d.AddIOp, loop.induction_var, c1.result)
        inner.create(scf_d.YieldOp, [])
        verify(m)

    def test_values_do_not_leak_across_sibling_functions(self):
        m = ModuleOp()
        f1 = func_d.FuncOp("a", FunctionType([], []))
        f2 = func_d.FuncOp("b", FunctionType([], []))
        m.append(f1)
        m.append(f2)
        c = OpBuilder.at_end(f1.body).create(arith_d.ConstantOp, 1)
        f2.body.append(arith_d.AddIOp(c.result, c.result))
        with pytest.raises(VerificationError):
            verify(m)


class TestBuilder:
    def test_at_end_appends(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = b.create(arith_d.ConstantOp, 2)
        assert f.body.operations == [c1, c2]

    def test_before_inserts(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c0 = OpBuilder.before(c1).create(arith_d.ConstantOp, 0)
        assert f.body.operations == [c0, c1]

    def test_after_inserts(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c3 = b.create(arith_d.ConstantOp, 3)
        c2 = OpBuilder.after(c1).create(arith_d.ConstantOp, 2)
        assert f.body.operations == [c1, c2, c3]

    def test_after_last_op(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        c2 = OpBuilder.after(c1).create(arith_d.ConstantOp, 2)
        assert f.body.operations == [c1, c2]

    def test_no_insertion_point_raises(self):
        with pytest.raises(RuntimeError):
            OpBuilder().insert(arith_d.ConstantOp(1))

    def test_temporary_insertion_point(self):
        m, f = make_func()
        b = OpBuilder.at_end(f.body)
        c1 = b.create(arith_d.ConstantOp, 1)
        with b.at(InsertionPoint.before(c1)):
            b.create(arith_d.ConstantOp, 0)
        b.create(arith_d.ConstantOp, 2)
        values = [op.attributes["value"].value for op in f.body.operations]
        assert values == [0, 1, 2]
