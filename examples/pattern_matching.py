#!/usr/bin/env python
"""Exact and approximate pattern matching — the intro's motivating kernels.

Paper §I: "Domains such as network security, bioinformatics, data mining
and data analytics heavily rely on exact matching of the query pattern
with pre-stored patterns", while genome analysis uses threshold matching.
This example builds a TCAM rule store with wildcard (don't-care) fields —
a packet-classifier shape — and a DNA k-mer store searched with a
mismatch budget, plus a device-noise accuracy study.

Run:  python examples/pattern_matching.py

Expected output: the packet rules each query matches (wildcards
honoured), k-mer hits within the mismatch threshold, and an accuracy
table degrading from 1.000 toward chance as sensing noise grows.
"""

import numpy as np

from repro.apps.matching import PatternMatcher
from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.simulator.cells import DONT_CARE


def packet_classifier():
    """Wildcard rules: [src/8, dst/8, port/16] bit fields."""
    rng = np.random.default_rng(0)
    rules = rng.choice([0.0, 1.0], (16, 32))
    # Rule 4 wildcards the port field (bits 16..31): matches any port.
    rules[4, 16:] = DONT_CARE
    matcher = PatternMatcher(rules, paper_spec(rows=32, cols=32))

    packet = rules[4].copy()
    packet[16:] = rng.choice([0.0, 1.0], 16)  # arbitrary port value
    result = matcher.lookup(packet)
    print("--- packet classification (exact match with wildcards) ---")
    print(f"matching rules: {result.indices.tolist()} "
          f"(priority-encoded first: {result.first})")
    assert 4 in result.indices
    print(matcher.report().summary())


def genome_kmers():
    """Threshold search: find stored k-mers within 2 mismatches."""
    rng = np.random.default_rng(1)
    # 2-bit base encoding of 32-mers -> 64 binary cells per k-mer.
    kmers = rng.choice([0.0, 1.0], (48, 64))
    matcher = PatternMatcher(kmers, paper_spec(rows=32, cols=32))

    query = kmers[17].copy()
    flip = rng.choice(64, size=2, replace=False)
    query[flip] = 1 - query[flip]  # 2 mismatching cells

    exact = matcher.lookup(query, threshold=0.0)
    approx = matcher.lookup(query, threshold=2.0)
    print("\n--- genome k-mer search (threshold match) ---")
    print(f"exact matches:      {exact.indices.tolist()}")
    print(f"within 2 mismatch:  {approx.indices.tolist()}")
    assert not exact.matched and 17 in approx.indices


def noise_study():
    """Classification accuracy under match-line sensing noise (§IV-A2)."""
    import repro.frontend.torch_api as torch

    rng = np.random.default_rng(2)
    p, d, q = 10, 512, 64
    stored = rng.choice([-1.0, 1.0], (p, d)).astype(np.float32)
    queries = (
        stored[rng.integers(0, p, q)]
        * rng.choice([1.0, -1.0], (q, d), p=[0.7, 0.3])
    ).astype(np.float32)
    truth = (queries @ stored.T).argmax(axis=1)

    class M(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, x):
            o = self.weight.transpose(-2, -1)
            return torch.ops.aten.topk(torch.matmul(x, o), 1, largest=True)

    print("\n--- accuracy vs. sensing noise ---")
    compiler = C4CAMCompiler(paper_spec(rows=32, cols=64))
    for sigma in (0.0, 1.0, 3.0, 8.0):
        kernel = compiler.compile(
            M(), [placeholder((q, d))], noise_sigma=sigma, noise_seed=7
        )
        _v, idx = kernel(queries)
        acc = (idx.ravel() == truth).mean()
        print(f"sigma={sigma:<4} accuracy={acc:.3f}")


def main():
    packet_classifier()
    genome_kmers()
    noise_study()


if __name__ == "__main__":
    main()
