"""Noise modeling, traversal helpers and miscellaneous coverage."""

import numpy as np
import pytest

from repro.arch import paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.ir import count, first, parent_of_type, walk
from repro.simulator import CamMachine


class TestSensingNoise:
    def _machine(self, sigma, seed=0):
        m = CamMachine(paper_spec(), noise_sigma=sigma, noise_seed=seed)
        s = m.alloc_subarray(m.alloc_array(m.alloc_mat(m.alloc_bank())))
        m.write_value(s, np.zeros((4, 32)))
        return m, s

    def test_zero_noise_exact(self):
        m, s = self._machine(0.0)
        m.search(s, np.ones(32), metric="hamming")
        vals, _i, _d = m.read(s, 4)
        assert vals.tolist() == [32.0] * 4

    def test_noise_perturbs_scores(self):
        m, s = self._machine(1.0)
        m.search(s, np.ones(32), metric="hamming")
        vals, _i, _d = m.read(s, 4)
        assert not np.allclose(vals, 32.0)

    def test_noise_reproducible_by_seed(self):
        readings = []
        for _ in range(2):
            m, s = self._machine(1.0, seed=42)
            m.search(s, np.ones(32), metric="hamming")
            readings.append(m.read(s, 4)[0])
        np.testing.assert_array_equal(readings[0], readings[1])

    def test_noise_scale_with_sigma(self):
        spreads = []
        for sigma in (0.5, 4.0):
            m, s = self._machine(sigma, seed=1)
            m.search(s, np.ones(32), metric="hamming")
            vals, _i, _d = m.read(s, 4)
            spreads.append(np.abs(vals - 32.0).mean())
        assert spreads[1] > spreads[0]

    def test_compiled_kernel_noise_degrades_accuracy(self, dot_kernel, rng):
        p, d, q = 8, 256, 32
        stored = rng.choice([-1.0, 1.0], (p, d)).astype(np.float32)
        queries = (
            stored[rng.integers(0, p, q)]
            * rng.choice([1.0, -1.0], (q, d), p=[0.7, 0.3])
        ).astype(np.float32)
        truth = (queries @ stored.T).argmax(axis=1)
        compiler = C4CAMCompiler(paper_spec())
        accs = []
        for sigma in (0.0, 12.0):
            kernel = compiler.compile(
                dot_kernel(stored, k=1, largest=True),
                [placeholder((q, d))],
                noise_sigma=sigma, noise_seed=3,
            )
            _v, idx = kernel(queries)
            accs.append((idx.ravel() == truth).mean())
        assert accs[0] == 1.0
        assert accs[1] < accs[0]


class TestTraversal:
    def _module(self, dot_kernel, rng):
        from repro.frontend import import_graph, trace

        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
        return import_graph(
            trace(dot_kernel(stored), [placeholder((1, 32))])
        ).module

    def test_walk_by_name(self, dot_kernel, rng):
        m = self._module(dot_kernel, rng)
        assert len(list(walk(m, name="torch.aten.mm"))) == 1

    def test_walk_by_class(self, dot_kernel, rng):
        from repro.dialects.func import FuncOp

        m = self._module(dot_kernel, rng)
        assert len(list(walk(m, op_class=FuncOp))) == 1

    def test_first_and_count(self, dot_kernel, rng):
        m = self._module(dot_kernel, rng)
        assert first(m, name="nothing.here") is None
        assert count(m, name="torch.aten.topk") == 1

    def test_parent_of_type(self, dot_kernel, rng):
        from repro.dialects.func import FuncOp
        from repro.ir.module import ModuleOp

        m = self._module(dot_kernel, rng)
        mm = first(m, name="torch.aten.mm")
        assert isinstance(parent_of_type(mm, FuncOp), FuncOp)
        assert isinstance(parent_of_type(mm, ModuleOp), ModuleOp)
        assert parent_of_type(m, ModuleOp) is None


class TestHostExecutionPaths:
    def test_fused_cim_ir_runs_on_host(self, dot_kernel, rng):
        """The partially lowered (cim-level) module is executable."""
        from repro.frontend import import_graph, trace
        from repro.passes.pass_manager import PassManager
        from repro.runtime.executor import Interpreter
        from repro.transforms import (
            CimFuseOpsPass,
            SimilarityMatchingPass,
            TorchToCimPass,
        )

        stored = rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (3, 64)).astype(np.float32)
        m = import_graph(
            trace(dot_kernel(stored, k=2, largest=True), [placeholder((3, 64))])
        ).module
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass()]
        ).run(m)
        out, _ = Interpreter(m).run_function("forward", [queries, stored])
        expected = np.argsort(-(queries @ stored.T), axis=1)[:, :2]
        np.testing.assert_array_equal(out[1], expected)

    def test_cosine_score_host_path(self, rng):
        import repro.frontend.torch_api as torch
        from repro.frontend import import_graph, trace
        from repro.passes.pass_manager import PassManager
        from repro.runtime.executor import Interpreter
        from repro.transforms import (
            CimFuseOpsPass,
            SimilarityMatchingPass,
            TorchToCimPass,
        )

        w = rng.standard_normal((5, 32)).astype(np.float32)

        class M(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(w)

            def forward(self, x):
                qn = torch.norm(x, p=2, dim=-1, keepdim=True)
                sn = torch.norm(self.weight, p=2, dim=-1)
                others = self.weight.transpose(-2, -1)
                dots = torch.matmul(x, others)
                return torch.div(dots, sn, qn)

        q = rng.standard_normal((2, 32)).astype(np.float32)
        m = import_graph(trace(M(), [placeholder((2, 32))])).module
        PassManager(
            [TorchToCimPass(), CimFuseOpsPass(), SimilarityMatchingPass()]
        ).run(m)
        out, _ = Interpreter(m).run_function("forward", [q, w])
        expected = (q @ w.T) / np.linalg.norm(w, axis=1) \
            / np.linalg.norm(q, axis=1, keepdims=True)
        np.testing.assert_allclose(out[0], expected, rtol=1e-4)


class TestReportScaling:
    def test_scaled_preserves_power(self, dot_kernel, rng):
        stored = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel = C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored), [placeholder((1, 64))]
        )
        kernel(stored[:1])
        rep = kernel.last_report
        big = rep.scaled(1000)
        assert big.power_mw == pytest.approx(rep.power_mw)
        assert big.edp == pytest.approx(rep.edp * 1000 * 1000)
