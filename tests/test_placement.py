"""Multi-tenant bank placement: allocator, shared sessions, accounting.

Covers the placement planner (first-fit-decreasing packing, overflow
diagnostics), the shared-machine session path (disjoint fabric, bitwise
isolation, eviction/re-placement on reset), per-tenant vs. fleet
accounting, replication/serving over a multi-tenant fleet, the
``TenantPool`` app and the CLI ``--tenants`` demo.  The randomized
bitwise-isolation guarantee itself lives in ``test_differential.py``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import dse_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder
from repro.runtime.placement import (
    PlacementError,
    TenantDemand,
    plan_placement,
    tenant_demand,
)
from repro.runtime.session import SessionError
from repro.transforms import CapacityError
from repro.transforms.partitioning import compute_partition_plan


def _demand(tenant_id, banks, spec):
    """A TenantDemand with an explicit bank count (plan is cosmetic)."""
    plan = compute_partition_plan(4, 16, 1, spec, use_density=False)
    return TenantDemand(tenant_id=tenant_id, plan=plan, banks=banks)


def _dot_model(stored, k=1):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _compile_tenants(compiler, stores, ks=None, **kwargs):
    ks = ks or [1] * len(stores)
    return compiler.compile_many(
        [_dot_model(s, k) for s, k in zip(stores, ks)],
        [[placeholder((1, s.shape[1]))] for s in stores],
        **kwargs,
    )


# ------------------------------------------------------------ the planner
class TestPlanPlacement:
    def test_first_fit_decreasing_packs_tightly(self):
        spec = replace(dse_spec(16), banks=4)
        demands = [
            _demand("small1", 1, spec),
            _demand("big", 3, spec),
            _demand("small2", 1, spec),
            _demand("medium", 2, spec),
        ]
        plan = plan_placement(demands, spec)
        # FFD: big(3)+small1(1) fill machine 0; medium(2)+small2(1) fit
        # machine 1 — two machines for 7 banks of demand.
        assert plan.num_machines == 2
        big = plan.for_tenant("big")
        assert (big.machine_index, big.bank_offset) == (0, 0)
        assert plan.for_tenant("small1").machine_index == 0
        assert plan.for_tenant("medium") == plan.machine_tenants(1)[0]
        # Programming order is ascending (machine, offset) and offsets
        # tile each machine without gaps.
        for index in range(plan.num_machines):
            cursor = 0
            for assignment in plan.machine_tenants(index):
                assert assignment.bank_offset == cursor
                cursor += assignment.banks
            assert cursor <= 4

    def test_equal_demands_keep_submission_order(self):
        spec = replace(dse_spec(16), banks=4)
        plan = plan_placement(
            [_demand(f"t{i}", 2, spec) for i in range(4)], spec
        )
        assert plan.tenant_ids == ["t0", "t1", "t2", "t3"]
        assert [a.machine_index for a in plan.assignments] == [0, 0, 1, 1]

    def test_unbounded_spec_is_one_machine(self):
        spec = dse_spec(16)  # banks=None
        plan = plan_placement(
            [_demand("a", 5, spec), _demand("b", 2, spec)], spec
        )
        assert plan.num_machines == 1
        assert plan.banks_per_machine is None
        assert plan.for_tenant("b").bank_offset == 5

    def test_fleet_grows_on_demand_without_cap(self):
        spec = replace(dse_spec(16), banks=2)
        plan = plan_placement(
            [_demand(f"t{i}", 2, spec) for i in range(5)], spec
        )
        assert plan.num_machines == 5

    def test_overpacking_capped_fleet_raises_with_breakdown(self):
        spec = replace(dse_spec(16), banks=2)
        demands = [_demand(f"t{i}", 2, spec) for i in range(3)]
        with pytest.raises(PlacementError) as err:
            plan_placement(demands, spec, max_machines=2)
        assert isinstance(err.value, CapacityError)
        assert err.value.tenant_id in {"t0", "t1", "t2"}
        message = str(err.value)
        assert "3 tenants demand 6 bank(s)" in message
        for demand in demands:
            assert repr(demand.tenant_id) in message

    def test_single_oversize_tenant_named(self):
        spec = replace(dse_spec(16), banks=2)
        with pytest.raises(PlacementError) as err:
            plan_placement(
                [_demand("ok", 1, spec), _demand("oversize", 3, spec)], spec
            )
        assert err.value.tenant_id == "oversize"
        assert "3 bank(s)" in str(err.value)

    def test_duplicate_ids_rejected(self):
        spec = replace(dse_spec(16), banks=2)
        with pytest.raises(ValueError, match="duplicate"):
            plan_placement(
                [_demand("x", 1, spec), _demand("x", 1, spec)], spec
            )

    def test_demand_matches_lowered_allocation(self):
        """The planner's bank math is the lowering's bank math."""
        spec = replace(dse_spec(16), banks=4)
        plan = compute_partition_plan(40, 128, 1, spec, use_density=False)
        demand = tenant_demand("t", plan, spec)
        assert demand.banks == spec.banks_needed(plan.subarrays)


# -------------------------------------------- cost-guided packing policy
def _hot_cold_cost_model(tenant_ids, hot):
    """A PlacementCost where ``hot`` tenants dominate the traffic."""
    from repro.runtime.costmodel import PlacementCost, TenantProfile, TrafficHint

    profiles = [
        TenantProfile(tenant_id=tid, per_query_latency_ns=100.0)
        for tid in tenant_ids
    ]
    hints = [
        TrafficHint(
            tid,
            rate_qps=50_000.0 if tid in hot else 10.0,
            batch_rows=4 if tid in hot else 1,
        )
        for tid in tenant_ids
    ]
    return PlacementCost(profiles, hints=hints)


class TestCostPolicy:
    """``policy="cost"`` packs for predicted latency, never for more
    machines than FFD, and falls back to FFD when it has nothing to
    optimize for — deterministically regardless of submission order."""

    SPEC = replace(dse_spec(16), banks=4)

    def _demands(self, order):
        return [_demand(tid, 2, self.SPEC) for tid in order]

    def test_cost_spreads_hot_tenants_at_equal_fleet(self):
        ids = ["hot1", "hot2", "cold1", "cold2"]
        model = _hot_cold_cost_model(ids, hot={"hot1", "hot2"})
        ffd = plan_placement(self._demands(ids), self.SPEC, policy="ffd")
        cost = plan_placement(
            self._demands(ids), self.SPEC, policy="cost", cost_model=model
        )
        # Equal demands: FFD co-packs hot1+hot2 in submission order.
        assert (
            ffd.for_tenant("hot1").machine_index
            == ffd.for_tenant("hot2").machine_index
        )
        # The cost packer pays the same fleet but splits the hot pair.
        assert cost.num_machines == ffd.num_machines
        assert (
            cost.for_tenant("hot1").machine_index
            != cost.for_tenant("hot2").machine_index
        )
        assert model.score(cost).total < model.score(ffd).total

    @pytest.mark.parametrize("policy", ["ffd", "cost"])
    def test_submission_order_does_not_change_layout(self, policy):
        """Regression: packing used to leak dict/submission order for
        equal-bank demands; the layout must be a pure function of the
        demand set."""
        ids = ["hot1", "hot2", "cold1", "cold2"]
        model = _hot_cold_cost_model(ids, hot={"hot1", "hot2"})
        kwargs = {"cost_model": model} if policy == "cost" else {}
        baseline = plan_placement(
            self._demands(ids), self.SPEC, policy=policy, **kwargs
        )
        layout = {
            a.tenant_id: (a.machine_index, a.bank_offset, a.banks)
            for a in baseline.assignments
        }
        for order in (
            ["cold2", "hot2", "cold1", "hot1"],
            ["hot2", "cold1", "hot1", "cold2"],
            ["cold1", "cold2", "hot1", "hot2"],
        ):
            shuffled = plan_placement(
                self._demands(order), self.SPEC, policy=policy, **kwargs
            )
            assert {
                a.tenant_id: (a.machine_index, a.bank_offset, a.banks)
                for a in shuffled.assignments
            } == layout

    def test_cost_without_traffic_matches_ffd(self):
        """No rates -> nothing to optimize -> byte-identical FFD plan."""
        from repro.runtime.costmodel import PlacementCost, TenantProfile

        ids = ["a", "b", "c"]
        silent = PlacementCost([
            TenantProfile(tenant_id=tid, per_query_latency_ns=10.0)
            for tid in ids
        ])
        assert not silent.has_traffic
        ffd = plan_placement(self._demands(ids), self.SPEC, policy="ffd")
        cost = plan_placement(
            self._demands(ids), self.SPEC, policy="cost", cost_model=silent
        )
        assert cost.assignments == ffd.assignments

    def test_cost_without_model_matches_ffd(self):
        ids = ["a", "b", "c"]
        ffd = plan_placement(self._demands(ids), self.SPEC, policy="ffd")
        cost = plan_placement(self._demands(ids), self.SPEC, policy="cost")
        assert cost.assignments == ffd.assignments

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            plan_placement(self._demands(["a"]), self.SPEC, policy="magic")

    def test_cost_never_exceeds_ffd_fleet(self):
        """The cost packer optimizes *within* the FFD machine budget so
        equal-fleet comparisons stay honest."""
        ids = [f"t{i}" for i in range(6)]
        model = _hot_cold_cost_model(ids, hot={"t0", "t1", "t2"})
        for cap in (None, 3):
            ffd = plan_placement(
                self._demands(ids), self.SPEC, max_machines=cap,
                policy="ffd",
            )
            cost = plan_placement(
                self._demands(ids), self.SPEC, max_machines=cap,
                policy="cost", cost_model=model,
            )
            assert cost.num_machines <= ffd.num_machines


# ------------------------------------------------- shared-machine sessions
class TestMultiTenantSession:
    @pytest.fixture()
    def fleet(self, rng):
        spec = replace(dse_spec(16), banks=2)
        compiler = C4CAMCompiler(spec)
        stores = [
            rng.choice([-1.0, 1.0], (12, 64)).astype(np.float32),
            rng.choice([-1.0, 1.0], (8, 32)).astype(np.float32),
            rng.choice([-1.0, 1.0], (16, 128)).astype(np.float32),
        ]
        kernel = _compile_tenants(
            compiler, stores, ks=[2, 1, 3], tenant_ids=["a", "b", "c"]
        )
        return compiler, stores, kernel

    def test_tenants_occupy_disjoint_banks(self, fleet):
        _compiler, _stores, kernel = fleet
        session = kernel.session()
        offsets = {}
        for tenant_session in session.sessions:
            base = tenant_session.subarray_base
            span = tenant_session.subarrays_used
            machine = tenant_session.machine
            key = id(machine)
            for lin in range(base, base + span):
                assert (key, lin) not in offsets
                offsets[(key, lin)] = True
        # Fleet-wide counts equal the sum over tenants.
        assert session.banks_used == sum(
            s.banks_used for s in session.sessions
        )

    def test_interleaved_batches_stay_isolated(self, fleet, rng):
        compiler, stores, kernel = fleet
        batches = {
            tid: rng.choice([-1.0, 1.0], (3, s.shape[1])).astype(np.float32)
            for tid, s in zip(["a", "b", "c"], stores)
        }
        solo = {}
        for tid, s, k in zip(["a", "b", "c"], stores, [2, 1, 3]):
            kernel_solo = compiler.compile(
                _dot_model(s, k), [placeholder((1, s.shape[1]))]
            )
            solo[tid] = tuple(kernel_solo.run_batch(batches[tid]))
        # Interleave tenants, twice around: later batches of one tenant
        # must be unaffected by the other tenants' traffic in between.
        for _round in range(2):
            for tid in ("a", "c", "b"):
                values, indices = kernel.run_batch(tid, batches[tid])
                np.testing.assert_array_equal(values, solo[tid][0])
                np.testing.assert_array_equal(indices, solo[tid][1])

    def test_per_tenant_report_matches_private_machine(self, fleet, rng):
        compiler, stores, kernel = fleet
        queries = rng.choice([-1.0, 1.0], (4, 64)).astype(np.float32)
        kernel.run_batch("a", queries)
        solo = compiler.compile(
            _dot_model(stores[0], 2), [placeholder((1, 64))]
        )
        solo.run_batch(queries)
        colocated, private = kernel.last_report, solo.last_report
        assert colocated.banks_used == private.banks_used
        assert colocated.subarrays_used == private.subarrays_used
        assert colocated.query_latency_ns == private.query_latency_ns
        np.testing.assert_allclose(
            colocated.energy.total, private.energy.total, rtol=1e-12
        )

    def test_power_target_standby_scoped_to_tenant_occupancy(self, rng):
        """On power targets the standby duty derives from per-array
        occupancy; a colocated tenant must be charged by *its own*
        occupancy, not a denser co-tenant's (regression: the duty used
        to be machine-global)."""
        spec = replace(
            dse_spec(16).with_target("power"), banks=4
        )
        compiler = C4CAMCompiler(spec)
        small = rng.choice([-1.0, 1.0], (8, 32)).astype(np.float32)
        large = rng.choice([-1.0, 1.0], (200, 32)).astype(np.float32)
        kernel = _compile_tenants(
            compiler, [small, large], tenant_ids=["small", "large"]
        )
        queries = rng.choice([-1.0, 1.0], (3, 32)).astype(np.float32)
        kernel.run_batch("small", queries)
        colocated = kernel.last_report
        solo = compiler.compile(_dot_model(small), [placeholder((1, 32))])
        solo.run_batch(queries)
        np.testing.assert_allclose(
            colocated.energy.standby,
            solo.last_report.energy.standby,
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            colocated.energy.total, solo.last_report.energy.total,
            rtol=1e-12,
        )

    def test_reset_evicts_and_reprograms(self, fleet, rng):
        _compiler, stores, kernel = fleet
        queries = rng.choice([-1.0, 1.0], (2, 32)).astype(np.float32)
        first = kernel.run_batch("b", queries)
        session = kernel.session()
        machines_before = [id(m) for m in session.machines]
        session.reset()
        assert [id(m) for m in session.machines] != machines_before
        assert session.batches_run == 0
        again = kernel.run_batch("b", queries)
        np.testing.assert_array_equal(first[0], again[0])
        np.testing.assert_array_equal(first[1], again[1])
        # Accounting restarted: exactly one batch on the lane.
        assert kernel.report("b").queries == 2

    def test_kernel_reset_restarts_placement(self, fleet, rng):
        _compiler, _stores, kernel = fleet
        queries = rng.choice([-1.0, 1.0], (2, 64)).astype(np.float32)
        kernel.run_batch("a", queries)
        old_session = kernel.session()
        kernel.reset()
        assert kernel.session() is not old_session
        assert kernel.report("a").queries == 0

    def test_unknown_tenant_rejected(self, fleet):
        _compiler, _stores, kernel = fleet
        with pytest.raises(SessionError, match="no tenant 'zz'"):
            kernel.run_batch("zz", np.zeros((1, 64)))

    def test_fleet_latency_is_busiest_machine(self, fleet, rng):
        _compiler, stores, kernel = fleet
        for tid, s in zip(["a", "b", "c"], stores):
            kernel.run_batch(
                tid,
                rng.choice([-1.0, 1.0], (2, s.shape[1])).astype(np.float32),
            )
        session = kernel.session()
        per_machine = [
            session.machine_report(i).query_latency_ns
            for i in range(session.num_machines)
        ]
        assert kernel.report().query_latency_ns == max(per_machine)
        # Same-machine tenants' latencies summed into that machine's view.
        tenants_of_0 = session.placement.machine_tenants(0)
        assert per_machine[0] == pytest.approx(
            sum(
                session.tenant_report(a.tenant_id).query_latency_ns
                for a in tenants_of_0
            )
        )


# ----------------------------------------------- replication over a fleet
class TestReplicatedMultiTenant:
    def test_replicated_fleet_results_and_accounting(self, rng):
        spec = replace(dse_spec(16), banks=4)
        compiler = C4CAMCompiler(spec)
        stores = [
            rng.choice([-1.0, 1.0], (10, 64)).astype(np.float32),
            rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32),
        ]
        kernel = _compile_tenants(
            compiler, stores, tenant_ids=["x", "y"], num_replicas=2
        )
        solo = compiler.compile(_dot_model(stores[0]), [placeholder((1, 64))])
        queries = rng.choice([-1.0, 1.0], (3, 64)).astype(np.float32)
        expected = solo.run_batch(queries)
        for _ in range(3):  # routed across replicas, same answers
            got = kernel.run_batch("x", queries)
            np.testing.assert_array_equal(got[0], expected[0])
            np.testing.assert_array_equal(got[1], expected[1])
        # Silicon doubles with the replica count (each replica holds
        # both tenants), and tenant reports span both replica lanes.
        assert kernel.report().banks_used == 2 * kernel.session().replicas[
            0
        ].banks_used
        assert kernel.report("x").queries == 9

    def test_engine_never_mixes_tenants_in_a_micro_batch(self, rng):
        spec = replace(dse_spec(16), banks=4)
        compiler = C4CAMCompiler(spec)
        stores = [
            rng.choice([-1.0, 1.0], (9, 64)).astype(np.float32),
            rng.choice([-1.0, 1.0], (5, 64)).astype(np.float32),
        ]
        kernel = _compile_tenants(compiler, stores, tenant_ids=["x", "y"])
        refs = {
            tid: compiler.compile(
                _dot_model(s), [placeholder((1, 64))]
            )
            for tid, s in zip(["x", "y"], stores)
        }
        with kernel.serve(max_batch=64, max_wait=0.02) as engine:
            futures = []
            for i in range(12):  # strictly alternating tenants
                tid = "x" if i % 2 == 0 else "y"
                q = rng.choice([-1.0, 1.0], 64).astype(np.float32)
                futures.append((tid, q, engine.submit(q, tenant=tid)))
            for tid, q, future in futures:
                values, indices = future.result(timeout=30)
                ev, ei = refs[tid].run_batch(q[None, :])
                np.testing.assert_array_equal(values, ev)
                np.testing.assert_array_equal(indices, ei)
        # A huge max_batch still cannot merge different tenants, so the
        # alternating stream needs more than one micro-batch.
        assert engine.stats()["batches_dispatched"] >= 2

    def test_engine_tenant_validation(self, rng):
        spec = replace(dse_spec(16), banks=4)
        compiler = C4CAMCompiler(spec)
        stores = [rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)]
        kernel = _compile_tenants(compiler, stores, tenant_ids=["only"])
        with kernel.serve() as engine:
            with pytest.raises(SessionError, match="multi-tenant"):
                engine.submit(np.zeros(64))
            with pytest.raises(SessionError, match="no tenant"):
                engine.submit(np.zeros(64), tenant="ghost")
            with pytest.raises(ValueError, match="width"):
                engine.submit(np.zeros(32), tenant="only")
        # Single-tenant backends reject tenant ids outright.
        plain = compiler.compile(_dot_model(stores[0]), [placeholder((1, 64))])
        with plain.serve() as engine:
            with pytest.raises(SessionError, match="single-tenant"):
                engine.submit(np.zeros(64), tenant="only")


# ------------------------------------------------------------ compile_many
class TestCompileMany:
    def test_structural_contract_enforced(self, rng):
        import repro.frontend.torch_api as torch

        stored = rng.choice([-1.0, 1.0], (6, 32)).astype(np.float32)

        class PostProcessed(torch.Module):
            def __init__(self):
                self.weight = torch.tensor(stored)

            def forward(self, input):
                others = self.weight.transpose(-2, -1)
                matmul = torch.matmul(input, others)
                values, indices = torch.ops.aten.topk(matmul, 1, largest=True)
                return torch.sub(values, values), indices

        compiler = C4CAMCompiler(dse_spec(16))
        with pytest.raises(SessionError, match="not placeable"):
            compiler.compile_many(
                [PostProcessed()], [[placeholder((1, 32))]],
                tenant_ids=["post"],
            )

    def test_argument_validation(self, rng):
        compiler = C4CAMCompiler(dse_spec(16))
        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
        with pytest.raises(ValueError, match="at least one"):
            compiler.compile_many([], [])
        with pytest.raises(ValueError, match="tenant ids"):
            compiler.compile_many(
                [_dot_model(stored)], [[placeholder((1, 32))]],
                tenant_ids=["a", "b"],
            )
        with pytest.raises(ValueError, match="example"):
            compiler.compile_many([_dot_model(stored)], [])

    def test_default_tenant_ids_and_placement_exposed(self, rng):
        compiler = C4CAMCompiler(replace(dse_spec(16), banks=2))
        stores = [
            rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
            for _ in range(2)
        ]
        kernel = _compile_tenants(compiler, stores)
        assert kernel.tenant_ids == ["tenant0", "tenant1"]
        assert kernel.placement.num_machines >= 1
        assert "tenant0" in kernel.placement.describe()


# ------------------------------------------------------------- TenantPool
class TestTenantPool:
    def test_pool_round_trip(self, rng):
        from repro.apps import TenantPool

        spec = replace(dse_spec(16), banks=2)
        pool = TenantPool(spec)
        faces = rng.choice([-1.0, 1.0], (10, 64)).astype(np.float32)
        spam = rng.choice([-1.0, 1.0], (6, 32)).astype(np.float32)
        pool.add("faces", faces, k=2).add("spam", spam)
        values, indices = pool.run("faces", faces[4])
        assert indices[0, 0] == 4
        _values, spam_idx = pool.run("spam", spam[[1, 5]])
        np.testing.assert_array_equal(spam_idx[:, 0], [1, 5])
        assert pool.report("faces").queries == 1
        assert pool.report().queries == 3
        assert pool.num_tenants == 2 and pool.is_open

    def test_pool_guards(self, rng):
        from repro.apps import TenantPool

        pool = TenantPool(dse_spec(16))
        with pytest.raises(RuntimeError, match="no tenants"):
            pool.open()
        stored = rng.choice([-1.0, 1.0], (4, 32)).astype(np.float32)
        pool.add("a", stored)
        with pytest.raises(ValueError, match="duplicate"):
            pool.add("a", stored)
        with pytest.raises(ValueError, match="k=9"):
            pool.add("b", stored, k=9)
        pool.open()
        with pytest.raises(RuntimeError, match="already open"):
            pool.add("c", stored)
        pool.reset()
        pool.add("c", stored)  # legal again after reset
        assert set(pool.open().tenant_ids) == {"a", "c"}


def test_cli_tenants_demo(capsys):
    from repro.cli import main

    assert main([
        "--tenants", "3", "--banks", "2", "--patterns", "6",
        "--dims", "128", "--queries", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "tenant0" in out and "tenant2" in out
    assert "machine 0" in out
    assert "fleet:" in out


def test_cli_tenants_overflow_is_friendly(capsys):
    from repro.cli import main

    assert main([
        "--tenants", "2", "--banks", "1", "--patterns", "400",
        "--dims", "1024", "--queries", "1",
    ]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "bank" in err
