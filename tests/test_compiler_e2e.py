"""End-to-end compiler tests: functional correctness vs the golden model
across CAM types, metrics, optimization configurations and shapes."""

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler, build_pipeline
from repro.frontend import placeholder


def reference_dot_topk(stored, queries, k, largest):
    scores = queries.astype(np.float64) @ stored.T.astype(np.float64)
    order = np.argsort(-scores if largest else scores, axis=1, kind="stable")
    return order[:, :k]


def reference_euclid_topk(stored, query, k):
    d = np.sqrt(((stored.astype(np.float64) - query) ** 2).sum(axis=1))
    return np.argsort(d, kind="stable")[:k]


@pytest.fixture()
def random_bipolar(rng):
    def make(p, d, q):
        stored = rng.choice([-1.0, 1.0], (p, d)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (q, d)).astype(np.float32)
        return stored, queries

    return make


class TestDotSimilarity:
    @pytest.mark.parametrize("cam_type,bits", [
        ("tcam", 1), ("bcam", 1), ("mcam", 2), ("acam", 1),
    ])
    def test_matches_reference_per_cam_type(
        self, dot_kernel, random_bipolar, cam_type, bits
    ):
        stored, queries = random_bipolar(10, 128, 5)
        spec = paper_spec(rows=32, cols=32, cam_type=cam_type,
                          bits_per_cell=bits)
        kernel = C4CAMCompiler(spec).compile(
            dot_kernel(stored, k=1, largest=True),
            [placeholder(queries.shape)],
        )
        _v, idx = kernel(queries)
        expected = reference_dot_topk(stored, queries, 1, True)
        np.testing.assert_array_equal(idx.reshape(-1), expected.reshape(-1))

    @pytest.mark.parametrize("target", [
        "latency", "power", "density", "power+density",
    ])
    def test_all_optimization_configs_functional(
        self, dot_kernel, random_bipolar, target
    ):
        stored, queries = random_bipolar(10, 512, 3)
        spec = dse_spec(32, target)
        kernel = C4CAMCompiler(spec).compile(
            dot_kernel(stored, k=2, largest=True),
            [placeholder(queries.shape)],
        )
        _v, idx = kernel(queries)
        expected = reference_dot_topk(stored, queries, 2, True)
        np.testing.assert_array_equal(idx, expected)

    def test_largest_false_preserved(self, dot_kernel, random_bipolar):
        """Paper Fig. 4a uses largest=False; order must be preserved."""
        stored, queries = random_bipolar(8, 64, 4)
        kernel = C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored, k=1, largest=False),
            [placeholder(queries.shape)],
        )
        _v, idx = kernel(queries)
        expected = reference_dot_topk(stored, queries, 1, False)
        np.testing.assert_array_equal(idx, expected)

    def test_multiple_row_tiles(self, dot_kernel, rng):
        """More patterns than subarray rows: vertical partitioning."""
        stored = rng.choice([-1.0, 1.0], (96, 64)).astype(np.float32)
        queries = rng.choice([-1.0, 1.0], (2, 64)).astype(np.float32)
        kernel = C4CAMCompiler(paper_spec(rows=32, cols=32)).compile(
            dot_kernel(stored, k=3, largest=True),
            [placeholder(queries.shape)],
        )
        _v, idx = kernel(queries)
        expected = reference_dot_topk(stored, queries, 3, True)
        np.testing.assert_array_equal(idx, expected)

    def test_multi_bank(self, dot_kernel, random_bipolar):
        """More subarrays than one bank: multiple banks allocated."""
        stored, queries = random_bipolar(10, 4096, 1)
        spec = paper_spec(rows=16, cols=16)  # 256 subarrays > 128/bank
        kernel = C4CAMCompiler(spec).compile(
            dot_kernel(stored, k=1, largest=True),
            [placeholder(queries.shape)],
        )
        _v, idx = kernel(queries)
        assert kernel.last_report.banks_used == 2
        expected = reference_dot_topk(stored, queries, 1, True)
        np.testing.assert_array_equal(idx, expected)

    def test_values_returned_for_native_metric(self, dot_kernel, rng):
        """MCAM executes dot natively: returned values are real dots."""
        stored = rng.integers(0, 4, (6, 64)).astype(np.float32)
        queries = rng.integers(0, 4, (2, 64)).astype(np.float32)
        spec = paper_spec(cam_type="mcam", bits_per_cell=2)
        kernel = C4CAMCompiler(spec).compile(
            dot_kernel(stored, k=1, largest=True),
            [placeholder(queries.shape)],
        )
        values, idx = kernel(queries)
        scores = queries @ stored.T
        np.testing.assert_allclose(
            values.reshape(-1), scores.max(axis=1), rtol=1e-6
        )


class TestEuclideanSimilarity:
    def test_single_query_knn(self, euclidean_kernel, rng):
        stored = rng.standard_normal((48, 64)).astype(np.float32)
        query = rng.standard_normal(64).astype(np.float32)
        spec = paper_spec(rows=16, cols=32, cam_type="acam")
        kernel = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=5), [placeholder((64,))]
        )
        _v, idx = kernel(query)
        np.testing.assert_array_equal(
            idx.reshape(-1), reference_euclid_topk(stored, query, 5)
        )

    def test_density_config(self, euclidean_kernel, rng):
        stored = rng.standard_normal((10, 256)).astype(np.float32)
        query = rng.standard_normal(256).astype(np.float32)
        spec = paper_spec(rows=64, cols=64, cam_type="acam",
                          optimization_target="density")
        kernel = C4CAMCompiler(spec).compile(
            euclidean_kernel(stored, k=2), [placeholder((256,))]
        )
        _v, idx = kernel(query)
        np.testing.assert_array_equal(
            idx.reshape(-1), reference_euclid_topk(stored, query, 2)
        )


class TestReports:
    def test_report_scales_with_queries(self, dot_kernel, random_bipolar):
        stored, queries = random_bipolar(10, 256, 4)
        compiler = C4CAMCompiler(paper_spec())
        kernel = compiler.compile(
            dot_kernel(stored), [placeholder(queries.shape)]
        )
        kernel(queries)
        rep4 = kernel.last_report
        assert rep4.queries == 4
        kernel1 = compiler.compile(
            dot_kernel(stored), [placeholder((1, 256))]
        )
        kernel1(queries[:1])
        rep1 = kernel1.last_report
        assert rep4.query_latency_ns == pytest.approx(
            4 * rep1.query_latency_ns, rel=1e-6
        )

    def test_density_uses_fewer_subarrays(self, dot_kernel, random_bipolar):
        stored, queries = random_bipolar(10, 2048, 1)
        base = C4CAMCompiler(dse_spec(64, "latency")).compile(
            dot_kernel(stored), [placeholder((1, 2048))]
        )
        dens = C4CAMCompiler(dse_spec(64, "density")).compile(
            dot_kernel(stored), [placeholder((1, 2048))]
        )
        base(queries)
        dens(queries)
        assert dens.last_report.subarrays_used < \
            base.last_report.subarrays_used

    def test_power_config_slower_same_energy(self, dot_kernel, random_bipolar):
        stored, queries = random_bipolar(10, 2048, 1)
        reports = {}
        for target in ("latency", "power"):
            k = C4CAMCompiler(dse_spec(32, target)).compile(
                dot_kernel(stored), [placeholder((1, 2048))]
            )
            k(queries)
            reports[target] = k.last_report
        assert reports["power"].query_latency_ns > \
            reports["latency"].query_latency_ns
        assert reports["power"].power_mw < reports["latency"].power_mw
        assert reports["power"].energy.query_total == pytest.approx(
            reports["latency"].energy.query_total, rel=0.2
        )

    def test_mlir_dump(self, dot_kernel, random_bipolar):
        stored, _q = random_bipolar(4, 64, 1)
        kernel = C4CAMCompiler(paper_spec()).compile(
            dot_kernel(stored), [placeholder((1, 64))]
        )
        text = kernel.mlir()
        assert "cam.search" in text and "scf.parallel" in text


class TestPipeline:
    def test_build_pipeline_names(self):
        pm = build_pipeline(paper_spec())
        assert pm.describe() == (
            "torch-to-cim -> cim-fuse-ops -> cim-similarity-match -> "
            "cim-partition -> cim-to-cam"
        )

    def test_host_only_pipeline(self, dot_kernel, random_bipolar):
        stored, queries = random_bipolar(6, 128, 2)
        compiler = C4CAMCompiler(paper_spec())
        kernel = compiler.compile(
            dot_kernel(stored, k=2, largest=True),
            [placeholder(queries.shape)], lower_to_cam=False,
        )
        _v, idx = kernel(queries)
        expected = reference_dot_topk(stored, queries, 2, True)
        np.testing.assert_array_equal(idx, expected)
        assert kernel.last_report is None

    def test_reference_kernel(self, dot_kernel, random_bipolar):
        stored, queries = random_bipolar(6, 128, 2)
        compiler = C4CAMCompiler(paper_spec())
        ref = compiler.reference(
            dot_kernel(stored, k=1, largest=True),
            [placeholder(queries.shape)],
        )
        _v, idx = ref(queries)
        expected = reference_dot_topk(stored, queries, 1, True)
        np.testing.assert_array_equal(idx, expected)
