"""Compulsory partitioning (paper §III-D1, Fig. 5d).

Kernels usually exceed one subarray, so the similarity operation is tiled
to the subarray granularity: the feature dimension splits into column
tiles of ``cols`` and the pattern set into row tiles of at most ``rows``.
Partial scores from column tiles are accumulated *horizontally*; disjoint
row tiles concatenate *vertically* (``cim.merge_partial`` directions).

With the **density** optimization (selective search [27]), several column
tiles stack at different row offsets of one subarray — ``batches`` per
subarray — reproducing the capacity gains of paper Table I.

The pass records the plan as attributes on each ``cim.similarity`` op;
the ``cim-to-cam`` mapping consumes the plan when it rebuilds the loop
nest against the concrete hierarchy (paper: "the original program
underwent partitioning at the CIM dialect without considering the
hierarchy... To map an application onto the CAM abstraction, the cam-map
pass ... transforms the application into a nested loop structure").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.arch.spec import ArchSpec
from repro.dialects import cim as cim_d
from repro.ir.operation import Operation
from repro.passes.pass_manager import FunctionPass


class CapacityError(RuntimeError):
    """The stored-pattern matrix does not fit one machine.

    Raised wherever a kernel would overflow a bank-capped machine —
    at lowering (``cim-to-cam``), at shard planning, and when building a
    :class:`~repro.apps.matching.PatternMatcher` — instead of failing
    deep inside allocation or silently truncating the store.  Carries
    ``required_rows`` and ``available_rows`` so callers can size a shard
    set; the hint in the message points at ``num_shards``
    (:meth:`repro.compiler.C4CAMCompiler.compile`) which splits the rows
    across machines via :class:`repro.runtime.sharding.ShardedSession`.
    """

    def __init__(
        self,
        plan: "PartitionPlan",
        spec: ArchSpec,
        use_density: bool = False,
    ):
        self.plan = plan
        self.spec = spec
        self.required_rows = plan.patterns
        self.available_rows = machine_row_capacity(
            spec, plan.features, use_density
        )
        banks = spec.banks_needed(plan.subarrays)
        prefix = (
            f"stored matrix of {plan.patterns} rows x {plan.features} "
            f"features needs {plan.subarrays} subarrays ({banks} banks) "
            f"but the machine caps at {spec.banks} banks "
            f"({self.available_rows} rows at this feature width); "
        )
        if self.available_rows:
            min_shards = math.ceil(self.required_rows / self.available_rows)
            hint = (
                f"shard the kernel across >= {min_shards} machines "
                f"(compile(num_shards=...) / --shards; requires a model "
                f"that is exactly one similarity kernel) or enlarge the "
                f"spec"
            )
        else:
            hint = (
                "not even a single stored row fits at this feature "
                "width, so sharding cannot help; enlarge the spec"
            )
        super().__init__(prefix + hint)


def machine_row_capacity(
    spec: ArchSpec, features: int, use_density: bool = False
) -> Optional[int]:
    """Stored-pattern rows one bank-capped machine holds at ``features``.

    ``None`` means unbounded (``spec.banks is None``): the machine grows
    banks on demand and every store fits.  The plain placement gives
    each row tile ``col_tiles`` subarrays; with the density optimization
    (and a device supporting selective search) up to ``rows`` patterns
    can additionally stack several column tiles per subarray, which can
    fit stores the plain placement cannot — the bound is the max over
    both regimes, consistent with
    :func:`compute_partition_plan`'s ``subarrays``.
    """
    if spec.banks is None:
        return None
    col_tile = min(spec.cols, features)
    col_tiles = math.ceil(features / col_tile)
    max_subarrays = spec.banks * spec.subarrays_per_bank
    plain = (max_subarrays // col_tiles) * spec.rows
    if not (use_density and spec.selective_search) or plain >= spec.rows:
        # Density stacking only applies to stores of <= `rows` patterns;
        # when the plain capacity already covers that range it dominates.
        return plain
    # Density regime: R <= rows patterns stack rows//R column tiles per
    # subarray, needing ceil(col_tiles / (rows // R)) subarrays — a
    # monotone function of R, so binary-search the largest fitting R.
    best, lo, hi = plain, 1, spec.rows
    while lo <= hi:
        mid = (lo + hi) // 2
        if math.ceil(col_tiles / (spec.rows // mid)) <= max_subarrays:
            best = max(best, mid)
            lo = mid + 1
        else:
            hi = mid - 1
    return best


def check_plan_capacity(
    plan: "PartitionPlan", spec: ArchSpec, use_density: bool = False
) -> None:
    """Raise :class:`CapacityError` when ``plan`` overflows ``spec``.

    ``use_density`` only shapes the error's available-row figure and
    sharding hint; the overflow test itself reads the plan's own
    subarray count.
    """
    if spec.banks is None:
        return
    if spec.banks_needed(plan.subarrays) > spec.banks:
        raise CapacityError(plan, spec, use_density)


@dataclass(frozen=True)
class PartitionPlan:
    """How one similarity kernel tiles onto subarrays.

    ``patterns``/``features`` describe the stored matrix (``P×D``);
    ``queries`` the number of query rows.  ``row_tile × col_tile`` is the
    per-subarray tile, ``batches`` the column tiles stacked per subarray
    (1 without the density optimization).
    """

    patterns: int
    features: int
    queries: int
    rows: int
    cols: int
    row_tile: int
    col_tile: int
    row_tiles: int
    col_tiles: int
    batches: int

    @property
    def total_tiles(self) -> int:
        """Number of ``row_tile × col_tile`` tiles to place."""
        return self.row_tiles * self.col_tiles

    @property
    def subarrays(self) -> int:
        """Subarrays needed once batches are stacked (Table I)."""
        per_sub = self.batches
        return self.row_tiles * math.ceil(self.col_tiles / per_sub)

    def tile_of(self, linear: int, batch: int) -> tuple:
        """Map (subarray linear index, batch) -> (row part, col part).

        Returns ``None`` when the slot is beyond the tile count.
        With batches, subarray ``i`` holds column tiles
        ``i*batches .. i*batches+batches-1`` (row_tiles == 1 then).
        """
        if self.batches > 1:
            cp = linear * self.batches + batch
            if cp >= self.col_tiles:
                return None
            return (0, cp)
        cols_per_row = self.col_tiles
        tile = linear
        if batch != 0 or tile >= self.total_tiles:
            return None
        return (tile // cols_per_row, tile % cols_per_row)


def compute_partition_plan(
    patterns: int,
    features: int,
    queries: int,
    spec: ArchSpec,
    use_density: bool = False,
) -> PartitionPlan:
    """Tile a ``patterns × features`` store onto ``spec``'s subarrays."""
    if patterns <= 0 or features <= 0:
        raise ValueError("similarity kernel must have patterns and features")
    col_tile = min(spec.cols, features)
    col_tiles = math.ceil(features / col_tile)
    row_tile = min(spec.rows, patterns)
    row_tiles = math.ceil(patterns / row_tile)
    batches = 1
    if (
        use_density
        and spec.selective_search
        and row_tiles == 1
        and patterns <= spec.rows
    ):
        batches = max(1, spec.rows // patterns)
    return PartitionPlan(
        patterns=patterns,
        features=features,
        queries=queries,
        rows=spec.rows,
        cols=spec.cols,
        row_tile=row_tile,
        col_tile=col_tile,
        row_tiles=row_tiles,
        col_tiles=col_tiles,
        batches=batches,
    )


#: Attribute names used to annotate similarity ops with their plan.
PLAN_ATTRS = (
    "patterns", "features", "queries", "rows", "cols",
    "row_tile", "col_tile", "row_tiles", "col_tiles", "batches",
)


def annotate(op: Operation, plan: PartitionPlan) -> None:
    """Attach ``plan`` to ``op`` as ``plan.*`` integer attributes."""
    from repro.ir.attributes import IntegerAttr

    for name in PLAN_ATTRS:
        op.attributes[f"plan.{name}"] = IntegerAttr(getattr(plan, name))


def plan_of(op: Operation) -> PartitionPlan:
    """Read a :class:`PartitionPlan` back from ``plan.*`` attributes."""
    values = {}
    for name in PLAN_ATTRS:
        attr = op.attributes.get(f"plan.{name}")
        if attr is None:
            raise ValueError(f"{op.name} has no partition plan annotation")
        values[name] = attr.value
    return PartitionPlan(**values)


class CimPartitionPass(FunctionPass):
    """Annotate every ``cim.similarity`` with its partition plan."""

    NAME = "cim-partition"

    def __init__(self, spec: ArchSpec, use_density: bool = False):
        self.spec = spec
        self.use_density = use_density

    def run_on_function(self, func: Operation) -> None:
        for op in func.walk():
            if isinstance(op, cim_d.SimilarityOp):
                stored_t = op.stored.type
                query_t = op.query.type
                patterns, features = stored_t.shape[0], stored_t.shape[-1]
                queries = query_t.shape[0] if query_t.rank == 2 else 1
                plan = compute_partition_plan(
                    patterns, features, queries, self.spec, self.use_density
                )
                annotate(op, plan)
