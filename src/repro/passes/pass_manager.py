"""Passes and the pass manager.

A :class:`Pass` transforms a module in place.  The :class:`PassManager`
runs a pipeline of passes, optionally verifying the IR between passes
(mirrors ``mlir-opt``'s behaviour) and recording per-pass statistics.
"""

from __future__ import annotations

import time
from typing import Callable, List, Sequence

from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.verifier import verify


class PassError(RuntimeError):
    """A pass failed; carries the pass name for diagnostics."""


class Pass:
    """Base class: override :meth:`run` (and optionally ``NAME``)."""

    NAME: str = ""

    @property
    def name(self) -> str:
        return self.NAME or type(self).__name__

    def run(self, module: ModuleOp) -> None:
        raise NotImplementedError


class ModulePass(Pass):
    """A pass operating on the whole module (alias of :class:`Pass`)."""


class FunctionPass(Pass):
    """A pass applied to each ``func.func`` independently."""

    def run(self, module: ModuleOp) -> None:
        for func in list(module.functions()):
            self.run_on_function(func)

    def run_on_function(self, func: Operation) -> None:
        raise NotImplementedError


class LambdaPass(Pass):
    """Wrap a plain callable as a pass (useful in tests and pipelines)."""

    def __init__(self, fn: Callable[[ModuleOp], None], name: str = ""):
        self._fn = fn
        self.NAME = name or getattr(fn, "__name__", "lambda")

    def run(self, module: ModuleOp) -> None:
        self._fn(module)


class PassManager:
    """Runs a sequence of passes over a module.

    Parameters
    ----------
    verify_each:
        Verify the IR after every pass (default on; catching a broken
        invariant right after the offending pass is worth the cost at the
        IR sizes this project handles).
    """

    def __init__(self, passes: Sequence[Pass] = (), verify_each: bool = True):
        self.passes: List[Pass] = list(passes)
        self.verify_each = verify_each
        self.statistics: List[dict] = []

    def add(self, pass_: Pass) -> "PassManager":
        """Append a pass; returns self for chaining."""
        self.passes.append(pass_)
        return self

    def run(self, module: ModuleOp) -> ModuleOp:
        """Run the pipeline; raises :class:`PassError` on failure."""
        self.statistics.clear()
        for pass_ in self.passes:
            start = time.perf_counter()
            try:
                pass_.run(module)
            except Exception as exc:
                raise PassError(f"pass {pass_.name!r} failed: {exc}") from exc
            if self.verify_each:
                try:
                    verify(module)
                except Exception as exc:
                    raise PassError(
                        f"IR verification failed after pass {pass_.name!r}: {exc}"
                    ) from exc
            self.statistics.append(
                {"pass": pass_.name, "seconds": time.perf_counter() - start}
            )
        return module

    def describe(self) -> str:
        """Human-readable pipeline description."""
        return " -> ".join(p.name for p in self.passes)
