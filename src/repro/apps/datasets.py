"""Synthetic datasets with the shapes of the paper's benchmarks.

The paper evaluates HDC on MNIST (28×28, 10 classes) and KNN on the
Pneumonia chest X-ray set (2 classes, larger images).  Neither dataset is
available offline, and the latency/energy experiments depend only on the
data *shapes*; classification-accuracy validation uses these synthetic
stand-ins consistently on every path (CAM, host reference, GPU model).

Each class has a smooth random template; samples are template + noise, so
nearest-neighbour structure is real and classifiers beat chance by a wide
margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A labelled split pair with flattened feature vectors."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    n_classes: int
    image_shape: Tuple[int, int]

    @property
    def n_features(self) -> int:
        return self.train_x.shape[1]


def _make_classes(
    n_classes: int,
    image_shape: Tuple[int, int],
    n_train: int,
    n_test: int,
    noise: float,
    seed: int,
) -> Dataset:
    rng = np.random.default_rng(seed)
    h, w = image_shape
    d = h * w
    # Smooth templates: low-frequency random fields per class.
    freq = rng.standard_normal((n_classes, 8, 8))
    templates = np.empty((n_classes, d), dtype=np.float64)
    for c in range(n_classes):
        up = np.kron(freq[c], np.ones((h // 8 + 1, w // 8 + 1)))[:h, :w]
        templates[c] = up.reshape(-1)
    templates /= np.abs(templates).max(axis=1, keepdims=True)

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        data = templates[labels] + noise * rng.standard_normal((n, d))
        return data.astype(np.float32), labels.astype(np.int64)

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    return Dataset(train_x, train_y, test_x, test_y, n_classes, image_shape)


def synthetic_mnist(
    n_train: int = 512, n_test: int = 128, noise: float = 0.35, seed: int = 7
) -> Dataset:
    """An MNIST-shaped dataset: 28×28 images, 10 classes."""
    return _make_classes(10, (28, 28), n_train, n_test, noise, seed)


def synthetic_pneumonia(
    n_train: int = 1024, n_test: int = 128, noise: float = 0.4, seed: int = 11
) -> Dataset:
    """A Pneumonia-shaped dataset: 32×32 X-ray crops, 2 classes."""
    return _make_classes(2, (32, 32), n_train, n_test, noise, seed)


def pad_features(x: np.ndarray, multiple: int) -> np.ndarray:
    """Zero-pad feature columns to a multiple of ``multiple``.

    CAM column tiles must evenly divide the feature dimension; zero
    padding never changes dot/Euclidean/Hamming rankings when applied to
    both stored patterns and queries.
    """
    n, d = x.shape
    rem = d % multiple
    if rem == 0:
        return x
    pad = multiple - rem
    return np.concatenate([x, np.zeros((n, pad), dtype=x.dtype)], axis=1)


def pad_rows(x: np.ndarray, y: np.ndarray, multiple: int):
    """Pad pattern rows (and labels) to a multiple of ``multiple``.

    Padding rows repeat the first pattern so the extra rows never alter
    top-1 results and labels stay aligned.  Returns (x, y, n_valid).
    """
    n = x.shape[0]
    rem = n % multiple
    if rem == 0:
        return x, y, n
    pad = multiple - rem
    x_pad = np.concatenate([x, np.repeat(x[:1], pad, axis=0)], axis=0)
    y_pad = np.concatenate([y, np.repeat(y[:1], pad, axis=0)], axis=0)
    return x_pad, y_pad, n
