"""C4CAM reproduction: a compiler for CAM-based in-memory accelerators.

Public entry points:

* :class:`repro.compiler.C4CAMCompiler` -- end-to-end TorchScript-to-CAM
  compilation and simulated execution.
* :mod:`repro.frontend` -- the mini-torch tracing frontend.
* :mod:`repro.arch` -- architecture specifications and technology models.
* :mod:`repro.simulator` -- the CAM functional/energy simulator substrate.
"""

__version__ = "1.0.0"
