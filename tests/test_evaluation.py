"""Tests for the sweep/evaluation utilities."""

import pytest

from repro.apps import synthetic_mnist, train_hdc
from repro.evaluation import (
    SweepPoint,
    SweepResult,
    dse_grid,
    format_table,
    run_sweep,
)
from repro.simulator.metrics import EnergyBreakdown, ExecutionReport


def _point(target, n, latency=10.0, energy=100.0):
    return SweepPoint(
        label=f"{target}/{n}",
        rows=n,
        cols=n,
        target=target,
        report=ExecutionReport(
            query_latency_ns=latency,
            energy=EnergyBreakdown(search=energy),
        ),
    )


class TestSweepResult:
    def test_get_and_series(self):
        r = SweepResult()
        r.add(_point("latency", 16, latency=10))
        r.add(_point("latency", 32, latency=20))
        r.add(_point("power", 16, latency=30))
        assert r.get("latency", 32, 32).latency_ns == 20
        assert r.series("latency", "latency_ns") == [10, 20]
        assert r.targets() == ["latency", "power"]

    def test_get_missing(self):
        with pytest.raises(KeyError):
            SweepResult().get("latency", 16, 16)

    def test_ratio(self):
        r = SweepResult()
        r.add(_point("latency", 16, latency=10))
        r.add(_point("power", 16, latency=25))
        assert r.ratio("power", "latency", "latency_ns") == [2.5]

    def test_ratio_length_mismatch(self):
        r = SweepResult()
        r.add(_point("latency", 16))
        r.add(_point("power", 16))
        r.add(_point("power", 32))
        with pytest.raises(ValueError):
            r.ratio("power", "latency", "latency_ns")

    def test_csv_export(self):
        r = SweepResult()
        r.add(_point("latency", 16))
        csv_text = r.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("label,rows,cols,target")
        assert len(lines) == 2
        assert "latency/16" in lines[1]

    def test_format_table(self):
        r = SweepResult()
        r.add(_point("latency", 16, energy=100))
        r.add(_point("latency", 32, energy=50))
        text = format_table(r, "energy_pj", [16, 32], title="E")
        assert "=== E ===" in text
        assert "latency" in text


class TestDseGrid:
    def test_grid_size(self):
        grid = dse_grid(sizes=(16, 32), targets=("latency", "power"))
        assert len(grid) == 4
        labels = [label for label, _spec in grid]
        assert "power/32x32" in labels

    def test_specs_configured(self):
        grid = dict(dse_grid(sizes=(64,), targets=("density",)))
        spec = grid["density/64x64"]
        assert spec.rows == 64 and spec.optimization_target == "density"


class TestRunSweep:
    def test_end_to_end_sweep(self):
        ds = synthetic_mnist(n_train=64, n_test=4)
        model = train_hdc(ds, dimensions=512, bits=1)
        queries = model.encode_queries(ds.test_x[:1])
        result = run_sweep(
            lambda: model.kernel(n_queries=1),
            [queries],
            dse_grid(sizes=(16, 32), targets=("latency", "power")),
        )
        assert len(result.points) == 4
        ratios = result.ratio("power", "latency", "latency_ns")
        assert all(r > 1 for r in ratios)
        csv_text = result.to_csv()
        assert csv_text.count("\n") == 5  # header + 4 rows
