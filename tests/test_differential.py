"""Randomized differential testing across all four execution paths.

The runtime now serves one similarity kernel four ways:

1. **per-call interpreter** — ``cache_session=False``, a fresh machine
   and a full IR walk per query (the legacy reference semantics);
2. **batched query session** — ``QuerySession.run_batch`` on one live
   machine (PR 1);
3. **sharded session** — the store split across machines and re-merged
   (PR 2);
4. **replicated + async serving** — R cloned copies behind the
   micro-batching :class:`~repro.runtime.serving.ServingEngine` (this
   PR), with requests chopped into arbitrary chunks.

Every path promises *bitwise identical* top-k output (noise disabled).
This suite generates random stores/queries/geometries — plus adversarial
tie-heavy and all-zero-score inputs, where only the stable lowest-index
tie-break keeps the paths aligned — and asserts the promise holds.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.arch import dse_spec, paper_spec
from repro.compiler import C4CAMCompiler
from repro.frontend import placeholder


def _dot_model(stored, k):
    import repro.frontend.torch_api as torch

    class DotSimilarity(torch.Module):
        def __init__(self):
            self.weight = torch.tensor(stored)

        def forward(self, input):
            others = self.weight.transpose(-2, -1)
            matmul = torch.matmul(input, others)
            return torch.ops.aten.topk(matmul, k, largest=True)

    return DotSimilarity()


def _random_case(rng):
    """One random workload: store, queries, k and a machine geometry."""
    patterns = int(rng.integers(6, 48))
    features = int(rng.choice([32, 64, 128]))
    batch = int(rng.integers(1, 10))
    k = int(rng.integers(1, min(patterns, 5) + 1))
    spec = dse_spec(int(rng.choice([16, 32])))
    kind = rng.choice(["gaussian", "bipolar", "ties", "zeros"])
    if kind == "gaussian":
        stored = rng.standard_normal((patterns, features))
        queries = rng.standard_normal((batch, features))
    elif kind == "bipolar":
        stored = rng.choice([-1.0, 1.0], (patterns, features))
        queries = rng.choice([-1.0, 1.0], (batch, features))
    elif kind == "ties":
        # A handful of unique rows duplicated many times: nearly every
        # score ties, so ranking is decided purely by the tie-break.
        uniques = rng.choice([-1.0, 1.0], (3, features))
        stored = uniques[rng.integers(0, 3, patterns)]
        queries = uniques[rng.integers(0, 3, batch)]
    else:  # zeros: every match-line score is 0 for every stored row
        stored = rng.choice([-1.0, 1.0], (patterns, features))
        queries = np.zeros((batch, features))
    return (
        stored.astype(np.float32),
        queries.astype(np.float32),
        k,
        spec,
        kind,
    )


def _four_paths(stored, queries, k, spec, rng):
    """Run the same workload through all four paths; return the results."""
    features = stored.shape[1]
    example = [placeholder((1, features))]
    compiler = C4CAMCompiler(spec)

    # 1. per-call interpreter (fresh machine + full IR walk per query).
    percall = compiler.compile(
        _dot_model(stored, k), example, cache_session=False
    )
    values, indices = zip(*(percall(q[None, :]) for q in queries))
    interpreter = (np.vstack(values), np.vstack(indices))

    # 2. one batched query session.
    session = compiler.compile(_dot_model(stored, k), example)
    batched = tuple(session.run_batch(queries))

    # 3. sharded across machines.
    num_shards = min(int(rng.integers(2, 4)), stored.shape[0])
    sharded_kernel = compiler.compile(
        _dot_model(stored, k), example, num_shards=num_shards
    )
    sharded = tuple(sharded_kernel.run_batch(queries))

    # 4. replicated + async: random request chunking through the engine.
    replicated = compiler.compile(
        _dot_model(stored, k), example, num_replicas=2
    )
    with replicated.serve(
        max_batch=int(rng.integers(1, len(queries) + 2)),
        max_wait=float(rng.choice([0.0, 0.001])),
    ) as engine:
        futures, cursor = [], 0
        while cursor < len(queries):
            take = min(int(rng.integers(1, 4)), len(queries) - cursor)
            futures.append(engine.submit(queries[cursor : cursor + take]))
            cursor += take
        parts = [future.result(timeout=30) for future in futures]
    served = (
        np.vstack([p[0] for p in parts]),
        np.vstack([p[1] for p in parts]),
    )
    return interpreter, batched, sharded, served


@pytest.mark.parametrize("seed", range(8))
def test_random_workloads_agree_bitwise(seed):
    rng = np.random.default_rng(987_000 + seed)
    stored, queries, k, spec, kind = _random_case(rng)
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, k, spec, rng
    )
    for name, (values, indices) in {
        "session": batched, "sharded": sharded, "served": served,
    }.items():
        np.testing.assert_array_equal(
            indices, interpreter[1],
            err_msg=f"{name} indices diverge on {kind!r} case (seed {seed})",
        )
        np.testing.assert_array_equal(
            values, interpreter[0],
            err_msg=f"{name} values diverge on {kind!r} case (seed {seed})",
        )
        assert values.dtype == np.float32 and indices.dtype == np.int64


def test_tie_heavy_store_resolves_identically():
    """Every stored row identical: all scores tie for every query, so
    agreement is purely the stable lowest-index tie-break on all paths."""
    rng = np.random.default_rng(5)
    row = rng.choice([-1.0, 1.0], 64)
    stored = np.tile(row, (18, 1)).astype(np.float32)
    queries = np.vstack([row, -row, rng.choice([-1.0, 1.0], 64)]).astype(
        np.float32
    )
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, 4, dse_spec(16), rng
    )
    expected = np.tile(np.arange(4, dtype=np.int64), (3, 1))
    np.testing.assert_array_equal(interpreter[1], expected)
    for path in (batched, sharded, served):
        np.testing.assert_array_equal(path[1], expected)
        np.testing.assert_array_equal(path[0], interpreter[0])


def _random_tenants(rng, count):
    """Independent random workloads (distinct shapes, k and kinds)."""
    tenants = []
    for _ in range(count):
        patterns = int(rng.integers(4, 28))
        features = int(rng.choice([32, 64, 128]))
        k = int(rng.integers(1, min(patterns, 4) + 1))
        kind = rng.choice(["gaussian", "bipolar", "ties"])
        if kind == "gaussian":
            stored = rng.standard_normal((patterns, features))
        elif kind == "bipolar":
            stored = rng.choice([-1.0, 1.0], (patterns, features))
        else:
            uniques = rng.choice([-1.0, 1.0], (2, features))
            stored = uniques[rng.integers(0, 2, patterns)]
        queries = rng.standard_normal((int(rng.integers(1, 7)), features))
        tenants.append(
            (stored.astype(np.float32), queries.astype(np.float32), k)
        )
    return tenants


@pytest.mark.parametrize("seed", range(4))
def test_tenant_isolation_differential(seed):
    """K colocated tenants vs. each compiled alone: bitwise-equal top-k
    per tenant, and per-tenant energy summing to the fleet report.

    The colocated paths exercised are the synchronous shared-fleet
    ``run_batch(tenant_id, Q)`` and the tenant-aware async engine with
    randomized request chunking — neither may leak any influence of the
    co-resident stores into a tenant's results.
    """
    rng = np.random.default_rng(441_000 + seed)
    spec = replace(dse_spec(int(rng.choice([16, 32]))), banks=2)
    compiler = C4CAMCompiler(spec)
    tenants = _random_tenants(rng, int(rng.integers(2, 5)))
    ids = [f"t{i}" for i in range(len(tenants))]

    # Each tenant compiled and served alone on a private machine.
    solo = {}
    for tid, (stored, queries, k) in zip(ids, tenants):
        kernel = compiler.compile(
            _dot_model(stored, k), [placeholder((1, stored.shape[1]))]
        )
        solo[tid] = tuple(kernel.run_batch(queries))

    # The same kernels colocated on one shared fleet.
    colocated = compiler.compile_many(
        [_dot_model(stored, k) for stored, _q, k in tenants],
        [[placeholder((1, stored.shape[1]))] for stored, _q, _k in tenants],
        tenant_ids=ids,
    )
    for tid, (_stored, queries, _k) in zip(ids, tenants):
        values, indices = colocated.run_batch(tid, queries)
        np.testing.assert_array_equal(
            indices, solo[tid][1],
            err_msg=f"colocated tenant {tid} indices diverge (seed {seed})",
        )
        np.testing.assert_array_equal(
            values, solo[tid][0],
            err_msg=f"colocated tenant {tid} values diverge (seed {seed})",
        )

    # Per-tenant accounting must sum exactly to the fleet report: the
    # fabric is partitioned bank-granularly, so there is no residual
    # shared term and every energy component adds up.
    fleet = colocated.report()
    for key, value in fleet.energy.as_dict().items():
        tenant_sum = sum(
            colocated.report(tid).energy.as_dict()[key] for tid in ids
        )
        np.testing.assert_allclose(
            tenant_sum, value, rtol=1e-12, err_msg=f"energy[{key}]"
        )
    assert fleet.queries == sum(
        colocated.report(tid).queries for tid in ids
    )
    assert fleet.banks_used == sum(
        colocated.report(tid).banks_used for tid in ids
    )

    # Tenant-aware async serving with random chunking: same results.
    served_kernel = compiler.compile_many(
        [_dot_model(stored, k) for stored, _q, k in tenants],
        [[placeholder((1, stored.shape[1]))] for stored, _q, _k in tenants],
        tenant_ids=ids,
        num_replicas=int(rng.integers(1, 3)),
    )
    with served_kernel.serve(
        max_batch=int(rng.integers(1, 6)),
        max_wait=float(rng.choice([0.0, 0.001])),
    ) as engine:
        futures = {}
        for tid, (_stored, queries, _k) in zip(ids, tenants):
            futures[tid], cursor = [], 0
            while cursor < len(queries):
                take = min(int(rng.integers(1, 3)), len(queries) - cursor)
                futures[tid].append(
                    engine.submit(queries[cursor : cursor + take], tenant=tid)
                )
                cursor += take
        for tid in ids:
            parts = [f.result(timeout=30) for f in futures[tid]]
            values = np.vstack([p[0] for p in parts])
            indices = np.vstack([p[1] for p in parts])
            np.testing.assert_array_equal(indices, solo[tid][1])
            np.testing.assert_array_equal(values, solo[tid][0])


def test_multi_tenant_overpack_names_tenant_and_demand():
    """Over-packing fails at compile time with the tenant named and its
    bank demand spelled out (plus the per-tenant breakdown)."""
    from repro.runtime.placement import PlacementError
    from repro.transforms import CapacityError

    rng = np.random.default_rng(7)
    spec = replace(dse_spec(16), banks=1)
    compiler = C4CAMCompiler(spec)
    small = rng.choice([-1.0, 1.0], (8, 64)).astype(np.float32)
    huge = rng.choice([-1.0, 1.0], (400, 256)).astype(np.float32)
    with pytest.raises(CapacityError) as err:
        compiler.compile_many(
            [_dot_model(small, 1), _dot_model(huge, 1)],
            [[placeholder((1, 64))], [placeholder((1, 256))]],
            tenant_ids=["small", "huge"],
            max_machines=1,
        )
    assert isinstance(err.value, PlacementError)
    assert err.value.tenant_id == "huge"
    message = str(err.value)
    assert "'huge'" in message and "bank" in message
    assert "'small'" in message  # the per-tenant breakdown lists everyone


@pytest.mark.parametrize("seed", range(4))
def test_cluster_lifecycle_differential(seed):
    """The cluster path against each tenant compiled alone — bitwise
    identical through the whole dynamic lifecycle:

    1. every admitted tenant matches its solo kernel;
    2. admitting an *unrelated* tenant changes nobody's results;
    3. evicting a tenant (defragmenting re-placement: banks reclaimed,
       survivors re-packed and re-programmed) changes nobody's results;
    4. property-style placement invariants hold at every step — no
       bank overlap between tenants and bank totals conserved.
    """
    from repro.runtime import Cluster

    rng = np.random.default_rng(771_000 + seed)
    spec = replace(dse_spec(int(rng.choice([16, 32]))), banks=2)
    compiler = C4CAMCompiler(spec)
    tenants = _random_tenants(rng, int(rng.integers(3, 6)))
    ids = [f"t{i}" for i in range(len(tenants))]

    solo = {}
    for tid, (stored, queries, k) in zip(ids, tenants):
        kernel = compiler.compile(
            _dot_model(stored, k), [placeholder((1, stored.shape[1]))]
        )
        solo[tid] = tuple(kernel.run_batch(queries))

    def check_all(cluster, live):
        _assert_placement_invariants(cluster)
        for tid in live:
            stored, queries, k = tenants[ids.index(tid)]
            values, indices = cluster.run_batch(queries, tenant=tid)
            np.testing.assert_array_equal(
                indices, solo[tid][1],
                err_msg=f"cluster tenant {tid} indices diverge "
                        f"(seed {seed})",
            )
            np.testing.assert_array_equal(
                values, solo[tid][0],
                err_msg=f"cluster tenant {tid} values diverge "
                        f"(seed {seed})",
            )

    cluster = Cluster(spec)
    live = []
    # 1+2: grow the tenant set one admit at a time; after every admit,
    # every already-resident tenant must still answer bitwise alike.
    for tid, (stored, _queries, k) in zip(ids, tenants):
        cluster.admit(
            compiler.compile(
                _dot_model(stored, k), [placeholder((1, stored.shape[1]))]
            ),
            tenant_id=tid,
        )
        live.append(tid)
        check_all(cluster, live)
    # 3: evict in a random order; every surviving tenant must answer
    # bitwise alike after each defragmenting re-placement.
    order = list(ids)
    rng.shuffle(order)
    for tid in order[:-1]:
        banks_before = sum(span[2] for span in cluster.bank_spans().values())
        evicted = cluster.bank_spans()[tid][2]
        cluster.evict(tid)
        live.remove(tid)
        banks_after = sum(span[2] for span in cluster.bank_spans().values())
        assert banks_after == banks_before - evicted  # banks conserved
        check_all(cluster, live)
    cluster.shutdown()


def _assert_placement_invariants(cluster):
    """No bank overlap between tenants; machine fill equals the sum of
    the tenant spans (total banks conserved)."""
    by_machine = {}
    for tid, (machine, offset, banks) in cluster.bank_spans().items():
        assert banks >= 1
        by_machine.setdefault(machine, []).append((offset, offset + banks))
    for machine, intervals in by_machine.items():
        intervals.sort()
        for (_, end), (start, _) in zip(intervals, intervals[1:]):
            assert end <= start, f"bank overlap on machine {machine}"
        assert cluster._shared_machines[machine].banks_used == sum(
            end - start for start, end in intervals
        )


def test_cluster_async_priority_differential():
    """Randomly chunked, mixed-priority async submission through the
    cluster dispatcher returns exactly the solo kernels' results."""
    from repro.runtime import Cluster

    rng = np.random.default_rng(88)
    spec = replace(dse_spec(16), banks=2)
    compiler = C4CAMCompiler(spec)
    tenants = _random_tenants(rng, 3)
    ids = [f"t{i}" for i in range(len(tenants))]
    solo = {}
    cluster = Cluster(spec, max_batch=4, max_wait=0.001)
    for tid, (stored, queries, k) in zip(ids, tenants):
        kernel = compiler.compile(
            _dot_model(stored, k), [placeholder((1, stored.shape[1]))]
        )
        solo[tid] = tuple(kernel.run_batch(queries))
        cluster.admit(
            compiler.compile(
                _dot_model(stored, k), [placeholder((1, stored.shape[1]))]
            ),
            tenant_id=tid,
        )
    futures = {}
    for tid, (_stored, queries, _k) in zip(ids, tenants):
        futures[tid], cursor = [], 0
        while cursor < len(queries):
            take = min(int(rng.integers(1, 3)), len(queries) - cursor)
            futures[tid].append(
                cluster.submit(
                    queries[cursor : cursor + take],
                    tenant=tid,
                    priority=int(rng.integers(0, 3)),
                    deadline=float(rng.choice([0.001, 1.0])),
                )
            )
            cursor += take
    for tid in ids:
        parts = [f.result(timeout=30) for f in futures[tid]]
        np.testing.assert_array_equal(
            np.vstack([p[1] for p in parts]), solo[tid][1]
        )
        np.testing.assert_array_equal(
            np.vstack([p[0] for p in parts]), solo[tid][0]
        )
    cluster.shutdown()


def test_all_zero_scores_resolve_identically():
    """A zero query gives every stored row the same score (whatever
    constant the CAM-level metric legalizes it to) — the top-k is then
    decided purely by the tie-break and must still agree on every path."""
    rng = np.random.default_rng(6)
    stored = rng.choice([-1.0, 1.0], (20, 64)).astype(np.float32)
    queries = np.zeros((4, 64), dtype=np.float32)
    interpreter, batched, sharded, served = _four_paths(
        stored, queries, 3, paper_spec(rows=16, cols=32), rng
    )
    # All-tie: the winners are the first k row indices and every
    # returned value is the same constant.
    np.testing.assert_array_equal(
        interpreter[1], np.tile(np.arange(3, dtype=np.int64), (4, 1))
    )
    assert np.unique(interpreter[0]).size == 1
    for path in (batched, sharded, served):
        np.testing.assert_array_equal(path[1], interpreter[1])
        np.testing.assert_array_equal(path[0], interpreter[0])


# ----------------------------------------------------- fused vs unfused
def _report_tuple(report):
    """The accounting surface a fused run must reproduce exactly."""
    e = report.energy
    return (
        report.query_latency_ns, report.setup_latency_ns,
        report.searches, report.search_cycles, report.rows_written,
        e.search, e.read, e.merge, e.host, e.write, e.standby,
    )


@pytest.mark.parametrize("seed", range(4))
def test_fused_matches_unfused_oracle_all_paths(seed):
    """`fused=True` (default) must be bitwise identical to the retained
    unfused session walk — results AND energy/latency accounting — on
    every execution backend: plain session, sharded, replicated+served,
    and the multi-tenant fleet."""
    rng = np.random.default_rng(321_000 + seed)
    stored, queries, k, spec, kind = _random_case(rng)
    features = stored.shape[1]
    example = [placeholder((1, features))]

    def pair(**kwargs):
        fused = C4CAMCompiler(spec).compile(
            _dot_model(stored, k), example, **kwargs
        )
        oracle = C4CAMCompiler(spec).compile(
            _dot_model(stored, k), example, fused=False, **kwargs
        )
        return fused, oracle

    # 1. plain session.
    kf, ko = pair()
    rf, ro = kf.run_batch(queries), ko.run_batch(queries)
    sf, so = kf.session(), ko.session()
    assert sf.fused_runs == 1 and so.fused_runs == 0
    np.testing.assert_array_equal(rf[0], ro[0])
    np.testing.assert_array_equal(rf[1], ro[1])
    np.testing.assert_array_equal(sf.last_values, so.last_values)
    assert _report_tuple(sf.last_report) == _report_tuple(so.last_report)

    # 2. sharded: per-shard fusion must keep the merged tie-break.
    num_shards = min(2, stored.shape[0])
    kf, ko = pair(num_shards=num_shards)
    rf, ro = kf.run_batch(queries), ko.run_batch(queries)
    np.testing.assert_array_equal(rf[0], ro[0])
    np.testing.assert_array_equal(rf[1], ro[1])
    assert _report_tuple(kf.session().last_report) == _report_tuple(
        ko.session().last_report
    )
    assert all(s.fused_runs == 1 for s in kf.session().sessions)

    # 3. replicated + async serving lanes run the fused kernels.
    kf, ko = pair(num_replicas=2)
    with kf.serve(max_batch=4) as engine:
        got_f = engine.submit(queries).result(timeout=30)
    with ko.serve(max_batch=4) as engine:
        got_o = engine.submit(queries).result(timeout=30)
    np.testing.assert_array_equal(got_f[0], got_o[0])
    np.testing.assert_array_equal(got_f[1], got_o[1])

    # 4. multi-tenant fleet: fused per tenant over shared machines.
    mf = C4CAMCompiler(spec).compile_many(
        [_dot_model(stored, k)], [example], tenant_ids=["t0"]
    )
    mo = C4CAMCompiler(spec).compile_many(
        [_dot_model(stored, k)], [example], tenant_ids=["t0"],
        fused=False,
    )
    rf = mf.run_batch("t0", queries)
    ro = mo.run_batch("t0", queries)
    np.testing.assert_array_equal(rf[0], ro[0])
    np.testing.assert_array_equal(rf[1], ro[1])
    assert mf.session().sessions[0].fused_runs == 1


def test_fused_cluster_matches_unfused_oracle():
    """A cluster admitted with fused=False is the oracle for the default
    fused control plane, across placed and sharded tenants."""
    rng = np.random.default_rng(77)
    stored = rng.choice([-1.0, 1.0], (24, 64)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (6, 64)).astype(np.float32)
    spec = paper_spec(rows=16, cols=32)
    example = [placeholder((1, 64))]

    results = {}
    for fused in (True, False):
        compiler = C4CAMCompiler(spec)
        cluster = compiler.compile_cluster(
            [_dot_model(stored, 3)], [example], tenant_ids=["t0"],
            fused=fused,
        )
        assert cluster.fused is fused
        results[fused] = cluster.run_batch("t0", queries)
        cluster.shutdown()
    np.testing.assert_array_equal(results[True][0], results[False][0])
    np.testing.assert_array_equal(results[True][1], results[False][1])


def test_noise_bypasses_fusion():
    """Device noise keeps the unfused walk (draws are per-machine-call):
    a noisy fused-flag session must produce the identical realization."""
    rng = np.random.default_rng(9)
    stored = rng.choice([-1.0, 1.0], (12, 64)).astype(np.float32)
    queries = rng.choice([-1.0, 1.0], (5, 64)).astype(np.float32)
    spec = paper_spec(rows=16, cols=32)
    example = [placeholder((1, 64))]
    kf = C4CAMCompiler(spec).compile(
        _dot_model(stored, 2), example, noise_sigma=0.3, noise_seed=11
    )
    ko = C4CAMCompiler(spec).compile(
        _dot_model(stored, 2), example, noise_sigma=0.3, noise_seed=11,
        fused=False,
    )
    rf, ro = kf.run_batch(queries), ko.run_batch(queries)
    assert kf.session().fused_runs == 0
    np.testing.assert_array_equal(rf[0], ro[0])
    np.testing.assert_array_equal(rf[1], ro[1])
