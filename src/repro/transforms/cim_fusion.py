"""``cim-fuse-ops``: merge adjacent cim.execute blocks (paper Fig. 5b).

The analysis identifies chains of acquire/execute/release triples linked
by dataflow and fuses their bodies into one execute block on a single
device, so the pattern matcher can recognise whole kernels.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dialects import cim as cim_d
from repro.ir.builder import OpBuilder
from repro.ir.operation import Operation
from repro.ir.value import Value
from repro.passes.pass_manager import FunctionPass


class CimFuseOpsPass(FunctionPass):
    """Fuse producer/consumer ``cim.execute`` pairs to a fixed point."""

    NAME = "cim-fuse-ops"

    def run_on_function(self, func: Operation) -> None:
        while self._fuse_one(func):
            pass

    def _fuse_one(self, func: Operation) -> bool:
        executes = [
            op for op in func.body.operations if isinstance(op, cim_d.ExecuteOp)
        ]
        for consumer in executes:
            producer = self._fusable_producer(consumer)
            if producer is not None:
                _fuse(producer, consumer)
                return True
        return False

    def _fusable_producer(
        self, consumer: cim_d.ExecuteOp
    ) -> Optional[cim_d.ExecuteOp]:
        """An execute op feeding ``consumer`` whose results it exclusively uses."""
        for value in consumer.inputs:
            op = getattr(value, "op", None)
            if not isinstance(op, cim_d.ExecuteOp) or op is consumer:
                continue
            if op.parent_block is not consumer.parent_block:
                continue
            # Every result of the producer must only feed the consumer —
            # otherwise fusion would duplicate work.
            exclusive = all(
                user is consumer for res in op.results for user in res.users()
            )
            if exclusive:
                return op
        return None


def _fuse(producer: cim_d.ExecuteOp, consumer: cim_d.ExecuteOp) -> None:
    """Merge ``producer``'s body into ``consumer``; erase the producer triple.

    The fused execute runs on the *consumer's* device handle (its acquire
    dominates the consumer) and is inserted at the consumer's position, so
    every forwarded operand still dominates its uses.
    """
    builder = OpBuilder.before(consumer)

    # Combined inputs: producer inputs ++ consumer inputs not produced by
    # the producer (order preserved, duplicates allowed to stay simple).
    new_inputs: List[Value] = list(producer.inputs)
    for v in consumer.inputs:
        if getattr(v, "op", None) is producer:
            continue
        if v not in new_inputs:
            new_inputs.append(v)

    fused = builder.create(
        cim_d.ExecuteOp,
        consumer.device,
        new_inputs,
        [r.type for r in consumer.results],
    )
    body = OpBuilder.at_end(fused.body)
    arg_of = {id(v): fused.body.arguments[i] for i, v in enumerate(new_inputs)}

    # Inline the producer body (minus terminator).
    prod_yield = producer.body.terminator
    value_map = {}
    for old_arg, v in zip(producer.body.arguments, producer.inputs):
        value_map[old_arg] = arg_of[id(v)]
    for op in producer.body.operations:
        if op is not prod_yield:
            body.insert(op.clone(value_map))
    producer_results = [value_map.get(v, v) for v in prod_yield.operands]

    # Inline the consumer body, wiring producer results into its arguments.
    cons_yield = consumer.body.terminator
    value_map2 = {}
    for old_arg, v in zip(consumer.body.arguments, consumer.inputs):
        if getattr(v, "op", None) is producer:
            value_map2[old_arg] = producer_results[v.index]
        else:
            value_map2[old_arg] = arg_of[id(v)]
    for op in consumer.body.operations:
        if op is not cons_yield:
            body.insert(op.clone(value_map2))
    body.create(
        cim_d.YieldOp, [value_map2.get(v, v) for v in cons_yield.operands]
    )

    consumer.replace_with(list(fused.results))
    _erase_triple(producer)


def _erase_triple(execute: cim_d.ExecuteOp) -> None:
    """Erase an execute op and, when they become unused, its device's
    acquire/release pair."""
    device = execute.device
    execute.erase()
    for user in list(device.users()):
        if isinstance(user, cim_d.ReleaseOp):
            user.erase()
    if not device.has_uses:
        acquire = getattr(device, "op", None)
        if acquire is not None:
            acquire.erase()
